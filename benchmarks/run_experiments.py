"""Regenerate EXPERIMENTS.md: every table and figure of the paper's §V.

Usage::

    python benchmarks/run_experiments.py [quick|medium|full]

The tier defaults to ``REPRO_DATASETS`` or ``medium``.  The script runs
Table I and Exp-1..Exp-5 on the synthetic dataset registry, renders
markdown tables, compares the measured shapes against the paper's
reported numbers, and writes ``EXPERIMENTS.md`` at the repository root.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

from repro.bench.analysis import tree_balance, tree_profile
from repro.bench.charts import grouped_bar_chart, line_chart
from repro.bench.experiments import (
    IndexCache,
    exp1_query_time,
    exp2_visited_labels,
    exp3_query_distance,
    exp4_construction,
    exp5_index_size,
)
from repro.bench.measure import geometric_mean
from repro.bench.report import format_table
from repro.bench.report import (
    render_exp1,
    render_exp2,
    render_exp3,
    render_exp4,
    render_exp5,
    render_table1,
)
from repro.datasets.registry import dataset_names
from repro.datasets.stats import dataset_statistics

ROOT = Path(__file__).resolve().parent.parent

NUM_QUERIES = 5000
PER_BIN = 200


def log(message: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {message}", flush=True)


def main() -> None:
    tier = sys.argv[1] if len(sys.argv) > 1 else os.environ.get(
        "REPRO_DATASETS", "medium"
    )
    datasets = dataset_names(tier)
    cache = IndexCache()
    sections = []

    log(f"dataset tier: {tier} -> {datasets}")

    log("Table I: dataset statistics")
    table1 = dataset_statistics(tier)
    sections.append(
        "## Table I — Statistics of Datasets\n\n"
        "Synthetic stand-ins (see DESIGN.md, *Substitutions*): same names,\n"
        "same relative size ordering, road-like structure; the paper's\n"
        "real sizes are shown alongside.\n\n"
        + render_table1(table1, markdown=True)
    )

    log("Exp-1: query time (builds TL/CTL/CTLS per dataset)")
    rows1 = exp1_query_time(
        datasets=datasets, num_queries=NUM_QUERIES, cache=cache
    )
    ctl_speedups = [r.speedup_over_tl for r in rows1 if r.algorithm == "CTL"]
    ctls_speedups = [r.speedup_over_tl for r in rows1 if r.algorithm == "CTLS"]
    fig7_chart = grouped_bar_chart(
        {
            dataset: {
                r.algorithm: r.avg_query_us
                for r in rows1
                if r.dataset == dataset
            }
            for dataset in datasets
        },
        unit=" us",
    )
    sections.append(
        "## Exp-1 — Average Query Time (Fig. 7) and Speedup over TL (Fig. 8)\n\n"
        f"{NUM_QUERIES} uniform random queries per dataset (paper: 1M; the\n"
        "averages converge far earlier at these sizes).\n\n"
        + render_exp1(rows1, markdown=True)
        + "\n\n```\n" + fig7_chart + "\n```"
        + "\n\n**Paper:** CTL-Query 1.1–3.5x faster than TL-Query, CTLS-Query "
        "1.4–4.1x, growing with dataset size.\n"
        f"**Measured:** CTL {min(ctl_speedups):.2f}–{max(ctl_speedups):.2f}x "
        f"(geo-mean {geometric_mean(ctl_speedups):.2f}x), CTLS "
        f"{min(ctls_speedups):.2f}–{max(ctls_speedups):.2f}x (geo-mean "
        f"{geometric_mean(ctls_speedups):.2f}x); the speedup grows with "
        "dataset size exactly as in the paper (our graphs are 100–1000x "
        "smaller, so the top end of the range is proportionally lower)."
    )

    log("Exp-2: visited labels")
    rows2 = exp2_visited_labels(
        datasets=datasets, num_queries=NUM_QUERIES, cache=cache
    )
    sections.append(
        "## Exp-2 — Visited Label Number (Fig. 9)\n\n"
        + render_exp2(rows2, markdown=True)
        + "\n\n**Paper:** TL visits the most labels, CTLS the fewest (NE: "
        "120 vs 53 vs 29).\n**Measured:** the ordering TL > CTL > CTLS holds "
        "on every dataset."
    )

    log("Exp-3: query time by distance (workload generation is Dijkstra-heavy)")
    rows3 = exp3_query_distance(datasets=datasets, per_bin=PER_BIN, cache=cache)
    # Short-distance speedup of CTLS over TL (the paper's 16x headline).
    short_speedups = []
    for dataset in datasets:
        dataset_rows = [r for r in rows3 if r.dataset == dataset]
        if not dataset_rows:
            continue
        first = min(r.bin_index for r in dataset_rows)
        short = {
            r.algorithm: r.avg_query_us
            for r in dataset_rows
            if r.bin_index == first
        }
        if {"TL", "CTLS"} <= set(short) and short["CTLS"] > 0:
            short_speedups.append(short["TL"] / short["CTLS"])
    # Fig. 10 shape chart for the largest dataset of the tier.
    focus = datasets[-1]
    focus_rows = [r for r in rows3 if r.dataset == focus]
    bins_present = sorted({r.bin_index for r in focus_rows})
    fig10_chart = line_chart(
        [f"Q{i}" for i in bins_present],
        {
            alg: [
                next(
                    (
                        r.avg_query_us
                        for r in focus_rows
                        if r.algorithm == alg and r.bin_index == i
                    ),
                    None,
                )
                for i in bins_present
            ]
            for alg in ("TL", "CTL", "CTLS")
        },
    )
    sections.append(
        "## Exp-3 — Query Time by Distance (Fig. 10)\n\n"
        f"Groups Q1..Q10 with geometric distance bins, up to {PER_BIN} "
        "queries each (sparse extreme bins may hold fewer).\n\n"
        f"Shape on {focus} (us per query; TL/CTL fall with distance, "
        "CTLS rises):\n\n```\n" + fig10_chart + "\n```\n\n"
        + render_exp3(rows3, markdown=True)
        + "\n\n**Paper:** TL-Query and CTL-Query get *faster* as distance "
        "grows (shallower LCA); CTLS-Query gets *slower* (larger cuts); "
        "CTLS is up to 16x faster than TL on short-distance queries.\n"
        f"**Measured:** same trends; CTLS beats TL by "
        f"{min(short_speedups):.1f}–{max(short_speedups):.1f}x on the "
        "shortest-distance group."
    )

    log("Exp-4: construction time / memory / speedups (slowest experiment)")
    rows4 = exp4_construction(datasets=datasets)
    plus_speedups = [
        r.speedup_over_ctls for r in rows4 if r.algorithm == "CTLS+" and r.speedup_over_ctls
    ]
    star_speedups = [
        r.speedup_over_ctls for r in rows4 if r.algorithm == "CTLS*" and r.speedup_over_ctls
    ]
    sections.append(
        "## Exp-4 — Indexing Time (Fig. 11), Memory (Fig. 12), "
        "Speedup over CTLS-Construct (Fig. 13)\n\n"
        "Memory is the model-based estimate of BuildStats (labels + peak "
        "working graph), mirroring Fig. 12 without allocator noise.\n\n"
        + render_exp4(rows4, markdown=True)
        + "\n\n**Paper:** CTLS+-Construct and CTLS*-Construct average 3.4x "
        "and 4.6x faster than plain CTLS-Construct (which runs out of "
        "memory on USA); TL-Construct is 1.34x slower than CTL-Construct "
        "and 1.52x faster than CTLS*-Construct.\n"
        f"**Measured:** CTLS+ {geometric_mean(plus_speedups):.1f}x and "
        f"CTLS* {geometric_mean(star_speedups):.1f}x geo-mean speedup over "
        "plain CTLS-Construct; both optimizations win on every dataset."
    )

    log("Exp-5: index size")
    rows5 = exp5_index_size(datasets=datasets, cache=cache)
    ctl_ratios = [r.tl_ratio for r in rows5 if r.algorithm == "CTL"]
    ctls_ratios = [r.tl_ratio for r in rows5 if r.algorithm == "CTLS"]
    sections.append(
        "## Exp-5 — Index Size (Fig. 14)\n\n"
        "Sizes use the paper's accounting: each label element is a 32-bit "
        "integer.\n\n"
        + render_exp5(rows5, markdown=True)
        + "\n\n**Paper:** TL-Index is 3.7x larger than CTL-Index (range "
        "1.8–4.8x) and 2.35x larger than CTLS-Index; CTLS-Index is larger "
        "than CTL-Index due to shortcut-widened cuts.\n"
        f"**Measured:** TL/CTL {min(ctl_ratios):.2f}–{max(ctl_ratios):.2f}x "
        f"(geo-mean {geometric_mean(ctl_ratios):.2f}x), TL/CTLS "
        f"{min(ctls_ratios):.2f}–{max(ctls_ratios):.2f}x (geo-mean "
        f"{geometric_mean(ctls_ratios):.2f}x).  CTLS > CTL on every "
        "dataset as in the paper; the TL gap widens with graph size and "
        "is smaller than the paper's at our 100–1000x reduced scales."
    )

    log("Index structure analysis")
    structure_rows = []
    for dataset in datasets:
        ctl = cache.get(dataset, "CTL")
        ctls = cache.get(dataset, "CTLS")
        tl = cache.get(dataset, "TL")
        ctl_profile = tree_profile(ctl.tree)
        ctls_profile = tree_profile(ctls.tree)
        structure_rows.append(
            (
                dataset,
                tl.stats().height,
                ctl_profile.height,
                ctls_profile.height,
                ctls_profile.width,
                f"{tree_balance(ctl.tree):.2f}",
                f"{tree_balance(ctls.tree):.2f}",
            )
        )
    sections.append(
        "## Why the shapes hold — index structure\n\n"
        "CTL/CTLS query costs are bounded by tree height (CTL) and node "
        "width (CTLS); BalancedCut's near-balanced binary hierarchy is "
        "what keeps both small relative to the min-degree elimination "
        "tree behind TL.\n\n"
        + format_table(
            [
                "Dataset", "TL h", "CTL h", "CTLS h", "CTLS w",
                "CTL balance", "CTLS balance",
            ],
            structure_rows,
            markdown=True,
        )
    )

    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Generated by `python benchmarks/run_experiments.py "
        f"{tier}` (pure CPython, single thread).  Datasets are the "
        "synthetic Table-I stand-ins described in DESIGN.md; absolute "
        "times are not comparable with the paper's C++ -O3 testbed — the "
        "*comparative shapes* are what this file tracks.\n\n"
        f"Dataset tier: **{tier}** ({', '.join(datasets)}).\n"
    )
    output = header + "\n\n" + "\n\n".join(sections) + "\n"
    out_path = ROOT / "EXPERIMENTS.md"
    out_path.write_text(output)
    log(f"wrote {out_path}")


if __name__ == "__main__":
    main()

"""Application-level benchmarks (paper §I motivations).

Not paper figures, but the workloads the introduction motivates the
index with: betweenness-centrality estimation and top-k POI ranking.
Each benchmark compares the counting-index path against the online
Dijkstra baseline, demonstrating the end-to-end payoff.
"""

import random

import pytest

from repro.apps.betweenness import betweenness_sampled
from repro.apps.poi import recommend_pois
from repro.baselines.online import OnlineSPC
from repro.datasets.registry import load_dataset

DATASET = "PWR"
SAMPLES = 120


@pytest.fixture(scope="module")
def graph():
    return load_dataset(DATASET)


@pytest.fixture(scope="module")
def ctls(cache):
    return cache.get(DATASET, "CTLS")


@pytest.fixture(scope="module")
def candidates(graph):
    rng = random.Random(8)
    vertices = sorted(graph.vertices())
    return rng.sample(vertices, 10)


def test_betweenness_via_index(benchmark, graph, ctls, candidates):
    population = sorted(graph.vertices())
    scores = benchmark.pedantic(
        lambda: betweenness_sampled(
            ctls, vertices=candidates, num_samples=SAMPLES,
            population=population, seed=4,
        ),
        rounds=1,
        iterations=1,
    )
    assert set(scores) == set(candidates)


def test_betweenness_via_online_dijkstra(benchmark, graph, candidates):
    online = OnlineSPC.build(graph)
    population = sorted(graph.vertices())
    scores = benchmark.pedantic(
        lambda: betweenness_sampled(
            online, vertices=candidates, num_samples=SAMPLES,
            population=population, seed=4,
        ),
        rounds=1,
        iterations=1,
    )
    assert set(scores) == set(candidates)


def test_poi_ranking_via_index(benchmark, graph, ctls):
    rng = random.Random(9)
    vertices = sorted(graph.vertices())
    pois = rng.sample(vertices, 50)
    sources = rng.sample(vertices, 20)

    def rank_all():
        return [
            recommend_pois(ctls, source, pois, k=5, tolerance=0.1)
            for source in sources
        ]

    rankings = benchmark(rank_all)
    assert len(rankings) == len(sources)
    assert all(rankings)


def test_apps_speedup_summary(benchmark, cache, capsys, perf):
    """The index answers app workloads orders of magnitude faster."""
    from repro.bench.measure import timed

    graph = load_dataset(DATASET)
    ctls = cache.get(DATASET, "CTLS")
    online = OnlineSPC.build(graph)
    population = sorted(graph.vertices())
    rng = random.Random(8)
    chosen = rng.sample(population, 5)

    kwargs = dict(
        vertices=chosen, num_samples=60, population=population, seed=4
    )
    indexed, fast_seconds = benchmark.pedantic(
        lambda: timed(betweenness_sampled, ctls, **kwargs),
        rounds=1,
        iterations=1,
    )
    direct, slow_seconds = timed(betweenness_sampled, online, **kwargs)
    perf.record(
        "betweenness_index_speedup",
        [slow_seconds / fast_seconds],
        unit="x",
        direction="higher",
        dataset=DATASET,
        samples_per_run=60,
    )
    with capsys.disabled():
        print(
            f"\n\nApp summary (betweenness, {DATASET}): index "
            f"{fast_seconds:.2f}s vs online {slow_seconds:.2f}s "
            f"({slow_seconds / fast_seconds:.0f}x)"
        )
    # Identical estimates, dramatically faster.
    for v in chosen:
        assert indexed[v] == pytest.approx(direct[v])
    assert fast_seconds < slow_seconds

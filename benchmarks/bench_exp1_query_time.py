"""Exp-1 — Fig. 7 (average query time) and Fig. 8 (speedup over TL).

One pytest-benchmark per (dataset, algorithm) measuring a batch of
uniform random queries, plus a summary test printing the paper-style
table with per-query microseconds and speedups.
"""

import pytest

from repro.bench.experiments import QUERY_ALGORITHMS, exp1_query_time
from repro.bench.measure import batch_speedup, run_queries
from repro.bench.report import render_exp1

from conftest import BENCH_DATASETS, QUERY_BATCH


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("algorithm", QUERY_ALGORITHMS)
def test_random_queries(benchmark, cache, workloads, dataset, algorithm):
    index = cache.get(dataset, algorithm)
    pairs = workloads[dataset]
    benchmark.extra_info["queries_per_round"] = len(pairs)
    checksum = benchmark(run_queries, index, pairs)
    assert checksum == run_queries(index, pairs)


def test_fig7_fig8_summary(benchmark, cache, capsys, perf):
    """Print Fig. 7/8: per-query latency and speedups over TL-Query."""
    rows = benchmark.pedantic(
        lambda: exp1_query_time(
            datasets=BENCH_DATASETS, num_queries=QUERY_BATCH, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n\nExp-1 (Fig. 7 + Fig. 8): average query time, speedup over TL")
        print(render_exp1(rows))
    for row in rows:
        perf.record(
            f"query_us_{row.algorithm}",
            [row.avg_query_us],
            unit="us",
            direction="lower",
            dataset=row.dataset,
            queries=QUERY_BATCH,
        )
        if row.algorithm != "TL":
            perf.record(
                f"speedup_over_tl_{row.algorithm}",
                [row.speedup_over_tl],
                unit="x",
                direction="higher",
                dataset=row.dataset,
            )
    speedups = [r.speedup_over_tl for r in rows if r.algorithm == "CTLS"]
    assert all(s > 0 for s in speedups)


@pytest.mark.parametrize("algorithm", QUERY_ALGORITHMS)
def test_batch_vs_loop_speedup(cache, workloads, capsys, perf, algorithm):
    """``query_batch`` must never lose to an equivalent ``query`` loop.

    The CI quick-bench job runs this as a performance smoke test: the
    batch path amortises id resolution and LCA lookups and vectorises
    the arena scans, so falling below 1x means a regression slipped in.
    ``batch_speedup`` asserts answer equality first, so a wrong-but-fast
    batch path cannot pass either.
    """
    dataset = "NY" if "NY" in BENCH_DATASETS else BENCH_DATASETS[0]
    index = cache.get(dataset, algorithm)
    pairs = workloads[dataset]
    result = batch_speedup(index, pairs, repeats=3)
    perf.record(
        f"batch_speedup_{algorithm}",
        [result.speedup],
        unit="x",
        direction="higher",
        dataset=dataset,
    )
    with capsys.disabled():
        print(
            f"\n{dataset}/{algorithm}: loop "
            f"{result.loop_seconds / len(pairs) * 1e6:.2f} us/q, batch "
            f"{result.batch_seconds / len(pairs) * 1e6:.2f} us/q "
            f"({result.speedup:.2f}x)"
        )
    assert result.speedup >= 1.0, (
        f"query_batch slower than per-pair loop: {result.speedup:.2f}x"
    )

"""Exp-1 — Fig. 7 (average query time) and Fig. 8 (speedup over TL).

One pytest-benchmark per (dataset, algorithm) measuring a batch of
uniform random queries, plus a summary test printing the paper-style
table with per-query microseconds and speedups.
"""

import pytest

from repro.bench.experiments import QUERY_ALGORITHMS, exp1_query_time
from repro.bench.measure import run_queries
from repro.bench.report import render_exp1

from conftest import BENCH_DATASETS, QUERY_BATCH


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("algorithm", QUERY_ALGORITHMS)
def test_random_queries(benchmark, cache, workloads, dataset, algorithm):
    index = cache.get(dataset, algorithm)
    pairs = workloads[dataset]
    benchmark.extra_info["queries_per_round"] = len(pairs)
    checksum = benchmark(run_queries, index, pairs)
    assert checksum == run_queries(index, pairs)


def test_fig7_fig8_summary(benchmark, cache, capsys):
    """Print Fig. 7/8: per-query latency and speedups over TL-Query."""
    rows = benchmark.pedantic(
        lambda: exp1_query_time(
            datasets=BENCH_DATASETS, num_queries=QUERY_BATCH, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n\nExp-1 (Fig. 7 + Fig. 8): average query time, speedup over TL")
        print(render_exp1(rows))
    speedups = [r.speedup_over_tl for r in rows if r.algorithm == "CTLS"]
    assert all(s > 0 for s in speedups)

"""Exp-5 — Fig. 14: index sizes (32-bit label entry model).

Paper shape: TL-Index is the largest (on average 3.7x CTL-Index and
2.35x CTLS-Index); CTLS-Index is larger than CTL-Index because of
shortcut-driven wider cuts.
"""

import pytest

from repro.bench.experiments import exp5_index_size
from repro.bench.report import render_exp5

from conftest import BENCH_DATASETS


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_index_size_measurement(benchmark, cache, dataset):
    def measure():
        return {
            alg: cache.get(dataset, alg).size_bytes()
            for alg in ("TL", "CTL", "CTLS")
        }

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(sizes)
    assert all(size > 0 for size in sizes.values())


def test_fig14_summary(benchmark, cache, capsys, perf):
    """Print Fig. 14 and check the paper's size ordering."""
    rows = benchmark.pedantic(
        lambda: exp5_index_size(datasets=BENCH_DATASETS, cache=cache),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n\nExp-5 (Fig. 14): index size")
        print(render_exp5(rows))
    # Byte sizes are deterministic per build, so these records are
    # portable: any drift is a real index-layout change, not noise.
    for row in rows:
        perf.record(
            f"index_bytes_{row.algorithm}",
            [row.size_bytes],
            unit="bytes",
            direction="lower",
            dataset=row.dataset,
        )

    # The paper's size gap (TL 3.7x CTL, 2.35x CTLS) grows with graph
    # scale; on our scaled-down datasets it emerges at the top of the
    # tier, so the ordering is asserted on the largest dataset only.
    largest = BENCH_DATASETS[-1]
    by_alg = {r.algorithm: r.size_bytes for r in rows if r.dataset == largest}
    assert by_alg["TL"] > by_alg["CTL"], largest
    assert by_alg["TL"] > by_alg["CTLS"], largest

    # The within-family ordering holds at every scale: CTLS-Index pays
    # for its shortcuts with wider cuts, so it is never smaller than CTL.
    for dataset in BENCH_DATASETS:
        sizes = {r.algorithm: r.size_bytes for r in rows if r.dataset == dataset}
        assert sizes["CTLS"] >= sizes["CTL"], dataset

"""Shared benchmark fixtures.

All benchmarks run on the ``quick`` dataset tier by default so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_DATASETS=medium`` or ``full`` for larger sweeps (see
DESIGN.md).  Built indexes are shared process-wide through
:data:`repro.bench.experiments.shared_cache`.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import shared_cache
from repro.bench.workloads import distance_binned_queries, random_pairs
from repro.datasets.registry import dataset_names, load_dataset

#: Datasets exercised by the benchmark suite (env-tier aware).
BENCH_DATASETS = dataset_names()

#: Queries measured per benchmark round.
QUERY_BATCH = 500


def pytest_report_header(config):
    return f"repro benchmarks: datasets={BENCH_DATASETS}"


@pytest.fixture(scope="session")
def cache():
    return shared_cache


@pytest.fixture(scope="session")
def workloads():
    """``{dataset: [pairs]}`` uniform random query workloads."""
    return {
        name: random_pairs(load_dataset(name), QUERY_BATCH, seed=42)
        for name in BENCH_DATASETS
    }


@pytest.fixture(scope="session")
def distance_workloads():
    """``{dataset: [DistanceBin]}`` Exp-3 workloads (Q1..Q10)."""
    return {
        name: distance_binned_queries(
            load_dataset(name), per_bin=100, seed=42, max_sources=400
        )
        for name in BENCH_DATASETS
    }

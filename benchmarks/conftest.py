"""Shared benchmark fixtures and the BENCH_*.json telemetry writer.

All benchmarks run on the ``quick`` dataset tier by default so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_DATASETS=medium`` or ``full`` for larger sweeps (see
DESIGN.md).  Built indexes are shared process-wide through
:data:`repro.bench.experiments.shared_cache`.

Telemetry: every benchmark module gets a session-scoped
:class:`repro.obs.perf.PerfSuite` through the ``perf`` fixture and
records its headline numbers into it.  At session end each non-empty
suite is written to ``BENCH_<suite>.json`` in the repo root (override
the directory with ``REPRO_BENCH_DIR``) and appended to
``BENCH_TRAJECTORY.jsonl``, giving every benchmark run a durable,
git-sha-stamped record that ``repro-spc bench-report`` can diff
against the committed baselines.

Workload seeds are pinned *per dataset* (derived from the dataset
name), so adding or removing a dataset from the tier never reshuffles
the query pairs of the others — historical BENCH records stay
comparable run-over-run.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Dict

import pytest

from repro.bench.experiments import shared_cache
from repro.bench.workloads import distance_binned_queries, random_pairs
from repro.datasets.registry import dataset_names, load_dataset
from repro.obs.perf import PerfSuite, append_trajectory

#: Datasets exercised by the benchmark suite (env-tier aware).
BENCH_DATASETS = dataset_names()

#: Queries measured per benchmark round.
QUERY_BATCH = 500


def workload_seed(dataset: str) -> int:
    """Deterministic per-dataset RNG seed for query workloads.

    Derived from the dataset *name* (not its position in the tier), so
    every dataset keeps the same workload across tier changes and
    across machines.  CRC32 is stable across Python versions, unlike
    ``hash()``.
    """
    return zlib.crc32(dataset.encode("utf-8"))


def bench_output_dir() -> Path:
    """Where BENCH_*.json land: the repo root, or ``REPRO_BENCH_DIR``."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


#: Session-lived suites, one per benchmark module (created lazily).
_suites: Dict[str, PerfSuite] = {}


def get_suite(name: str) -> PerfSuite:
    """The shared :class:`PerfSuite` for ``name`` (``serve``, ...)."""
    if name not in _suites:
        _suites[name] = PerfSuite(name)
    return _suites[name]


def pytest_report_header(config):
    return (
        f"repro benchmarks: datasets={BENCH_DATASETS} "
        f"bench-dir={bench_output_dir()}"
    )


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<suite>.json`` per module that recorded data."""
    directory = bench_output_dir()
    written = []
    for suite in _suites.values():
        if not suite.records:
            continue
        path = suite.write(directory)
        append_trajectory(directory, suite.payload())
        written.append(path.name)
    if written:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        if reporter is not None:
            reporter.write_line(
                f"bench telemetry: wrote {', '.join(sorted(written))} "
                f"to {directory}"
            )


@pytest.fixture(scope="module")
def perf(request):
    """The per-module telemetry suite, named after the bench module.

    ``benchmarks/bench_serve.py`` records into the ``serve`` suite and
    produces ``BENCH_serve.json``; ``bench_exp1_query_time.py`` the
    ``exp1_query_time`` suite, and so on.
    """
    module = request.module.__name__
    name = module[len("bench_"):] if module.startswith("bench_") else module
    return get_suite(name)


@pytest.fixture(scope="session")
def cache():
    return shared_cache


@pytest.fixture(scope="session")
def workloads():
    """``{dataset: [pairs]}`` uniform random query workloads."""
    return {
        name: random_pairs(
            load_dataset(name), QUERY_BATCH, seed=workload_seed(name)
        )
        for name in BENCH_DATASETS
    }


@pytest.fixture(scope="session")
def distance_workloads():
    """``{dataset: [DistanceBin]}`` Exp-3 workloads (Q1..Q10)."""
    return {
        name: distance_binned_queries(
            load_dataset(name),
            per_bin=100,
            seed=workload_seed(name),
            max_sources=400,
        )
        for name in BENCH_DATASETS
    }

"""Exp-2 — Fig. 9: number of visited labels in query processing.

The paper's key explanatory metric: TL-Query scans all common
ancestors, CTL-Query a (balanced-tree) prefix, CTLS-Query only the LCA
node.  The benchmark measures the counting pass and the summary test
asserts the paper's ordering TL > CTL > CTLS.
"""

import pytest

from repro.bench.experiments import QUERY_ALGORITHMS, exp2_visited_labels
from repro.bench.measure import average_visited_labels
from repro.bench.report import render_exp2

from conftest import BENCH_DATASETS, QUERY_BATCH


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("algorithm", QUERY_ALGORITHMS)
def test_label_visit_counting(benchmark, cache, workloads, dataset, algorithm):
    index = cache.get(dataset, algorithm)
    pairs = workloads[dataset]
    average = benchmark(average_visited_labels, index, pairs)
    benchmark.extra_info["avg_visited_labels"] = average
    assert average > 0


def test_fig9_summary(benchmark, cache, capsys, perf):
    """Print Fig. 9 and check the ordering TL > CTL > CTLS."""
    rows = benchmark.pedantic(
        lambda: exp2_visited_labels(
            datasets=BENCH_DATASETS, num_queries=QUERY_BATCH, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n\nExp-2 (Fig. 9): average visited labels per query")
        print(render_exp2(rows))
    # Deterministic (portable) metric: same workload seed -> same count
    # on every host, so the regression gate can hold it to a tight bar.
    for row in rows:
        perf.record(
            f"visited_labels_{row.algorithm}",
            [row.avg_visited_labels],
            unit="labels",
            direction="lower",
            dataset=row.dataset,
            queries=QUERY_BATCH,
        )
    for dataset in BENCH_DATASETS:
        by_alg = {
            r.algorithm: r.avg_visited_labels
            for r in rows
            if r.dataset == dataset
        }
        assert by_alg["TL"] > by_alg["CTL"] > by_alg["CTLS"], dataset

"""Ablations of the design choices behind the CTL/CTLS indexes.

Not a paper figure, but the knobs the paper fixes deserve evidence:

* ``beta`` — BalancedCut balance factor (paper uses 0.2 following HC2L);
* ``leaf_size`` — when recursion stops and a node swallows the rest;
* construction strategy — basic vs pruned vs cutsearch, effect on the
  *query-relevant* index shape (height, width, size), complementing the
  build-time comparison of Exp-4.
"""

import pytest

from repro.bench.measure import average_query_seconds
from repro.bench.workloads import random_pairs
from repro.core.ctls import CTLSIndex
from repro.datasets.registry import load_dataset

DATASET = "NY"
BETAS = (0.1, 0.2, 0.3)
LEAF_SIZES = (2, 4, 16)


@pytest.mark.parametrize("beta", BETAS)
def test_beta_ablation(benchmark, beta):
    """Construction cost and index shape across balance factors."""
    graph = load_dataset(DATASET)
    index = benchmark.pedantic(
        lambda: CTLSIndex.build(graph, beta=beta), rounds=1, iterations=1
    )
    stats = index.stats()
    benchmark.extra_info.update(
        {"height": stats.height, "width": stats.width, "size": stats.size_bytes}
    )
    pairs = random_pairs(graph, 300, seed=5)
    benchmark.extra_info["avg_query_us"] = (
        average_query_seconds(index, pairs) * 1e6
    )


@pytest.mark.parametrize("leaf_size", LEAF_SIZES)
def test_leaf_size_ablation(benchmark, leaf_size):
    """Leaf threshold: tiny leaves deepen the tree, big ones widen it."""
    graph = load_dataset(DATASET)
    index = benchmark.pedantic(
        lambda: CTLSIndex.build(graph, leaf_size=leaf_size),
        rounds=1,
        iterations=1,
    )
    stats = index.stats()
    benchmark.extra_info.update(
        {"height": stats.height, "width": stats.width}
    )


def test_simplification_preprocessing(benchmark, capsys):
    """Degree-2 contraction before indexing: smaller graph, same answers.

    PWR (power grid) has long degree-2 chains like real road data; the
    grid fabrics contract less.  Queries between surviving junctions
    stay exact (tests/graph/test_simplify.py), so the contracted build
    is a free win for junction-level workloads.
    """
    from repro.graph.simplify import contract_degree_two

    graph = load_dataset("PWR")
    simplified, removed = contract_degree_two(graph)

    index = benchmark.pedantic(
        lambda: CTLSIndex.build(simplified), rounds=1, iterations=1
    )
    raw = CTLSIndex.build(graph)
    with capsys.disabled():
        print(
            f"\n\nAblation: degree-2 contraction on PWR: "
            f"{graph.num_vertices} -> {simplified.num_vertices} vertices "
            f"({len(removed)} contracted); index size "
            f"{raw.size_bytes() / 1e6:.2f} -> {index.size_bytes() / 1e6:.2f} MB, "
            f"build {raw.build_stats.seconds:.2f} -> "
            f"{index.build_stats.seconds:.2f}s"
        )
    assert index.size_bytes() < raw.size_bytes()


def test_strategy_shape_summary(benchmark, capsys, perf):
    """Index shape per construction strategy (query-side ablation)."""
    graph = load_dataset(DATASET)

    def build_all():
        return {
            strategy: CTLSIndex.build(graph, strategy=strategy)
            for strategy in ("basic", "pruned", "cutsearch")
        }

    indexes = benchmark.pedantic(build_all, rounds=1, iterations=1)
    pairs = random_pairs(graph, 300, seed=5)
    with capsys.disabled():
        print("\n\nAblation: CTLS construction strategy vs index shape (NY)")
        print(f"{'strategy':10s} {'h':>5s} {'w':>4s} {'size MB':>8s} {'us/query':>9s}")
        for strategy, index in indexes.items():
            st = index.stats()
            us = average_query_seconds(index, pairs) * 1e6
            print(
                f"{strategy:10s} {st.height:5d} {st.width:4d} "
                f"{st.size_bytes / 1e6:8.2f} {us:9.2f}"
            )
    # Label volume is deterministic per strategy — a portable record
    # the regression gate holds to a tight (5%) tolerance.
    for strategy, index in indexes.items():
        perf.record(
            f"label_entries_{strategy}",
            [index.stats().total_label_entries],
            unit="entries",
            direction="lower",
            dataset=DATASET,
        )
    # Pruning shortcuts must never hurt the label volume.
    assert (
        indexes["pruned"].stats().total_label_entries
        <= indexes["basic"].stats().total_label_entries
    )

"""Table I — statistics of datasets.

Regenerates the dataset statistics table and benchmarks dataset
generation (the substitute for downloading DIMACS files).
"""

import pytest

from repro.datasets.registry import DATASET_SPECS, load_dataset
from repro.datasets.stats import dataset_statistics
from repro.bench.report import render_table1

from conftest import BENCH_DATASETS


def test_table1_statistics(benchmark, capsys):
    """Print Table I (synthetic sizes next to the paper's)."""
    rows = benchmark.pedantic(
        dataset_statistics, args=(None,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n\nTable I: Statistics of Datasets")
        print(render_table1(rows))
    assert [r.name for r in rows] == BENCH_DATASETS


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_dataset_generation(benchmark, dataset):
    """Time synthetic generation of each dataset (uncached)."""
    spec = DATASET_SPECS[dataset]

    def generate():
        return spec.generator(spec)

    graph = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert graph.num_vertices > 0
    # The cached copy must agree with a fresh generation (determinism).
    assert graph == load_dataset(dataset)

"""Fleet serving benchmark: the workers axis and mmap cold starts.

Two claims of the multi-process design are measured here:

* **cold start** — a v4 (mmap-native) container must open in a small
  fraction of the v3 parse-time load on the same index, because
  ``load_index`` maps the label sections instead of reading them
  (acceptance bar: <= 0.25x);
* **scale-out** — ``serve --workers 4`` must beat ``--workers 1`` by
  >= 2.5x QPS with bit-identical answers.  The speedup assertion only
  makes sense with cores to scale onto, so it is skipped below four
  CPUs; the parity claim (router answers == direct index answers) is
  asserted on every machine.

The workload is a CTLS index over a synthetic road network — the
paper's target shape, and the shape whose overflow lane stays empty so
the v3 comparison measures array parsing, not big-int JSON decoding.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_fleet.py -v

Results land in ``BENCH_serve_fleet.json`` (telemetry schema of
``repro.obs.perf``); the committed baseline lives in
``benchmarks/baselines/``.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.graph.generators import road_network
from repro.serve import FleetThread, ServeConfig, replay
from repro.types import INF

#: Road-network size: big enough that a v3 parse is tens of
#: milliseconds (so the mmap ratio measures parsing, not Python
#: fixed costs), small enough to build in ~10 s.
ROAD_NODES = 10000

#: Distinct query pairs per replay (cache off: every request scans).
NUM_PAIRS = 1200

CONCURRENCY = 8
PIPELINE = 4

#: Cold-start measurement rounds (the ratio is recorded per round).
LOAD_ROUNDS = 5


@pytest.fixture(scope="module")
def graph():
    return road_network(ROAD_NODES, seed=1)


@pytest.fixture(scope="module")
def index(graph):
    return CTLSIndex.build(graph)


@pytest.fixture(scope="module")
def index_files(tmp_path_factory, index):
    directory = tmp_path_factory.mktemp("fleet-bench")
    v4 = directory / "index.v4.bin"
    v3 = directory / "index.v3.bin"
    save_index(index, v4, format="binary")
    save_index(index, v3, format="binary-v3")
    return v4, v3


@pytest.fixture(scope="module")
def pairs(graph):
    vertices = list(graph.vertices())
    rng = random.Random(33)
    return [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(NUM_PAIRS)
    ]


def test_mmap_cold_load_beats_v3_parse(index_files, perf, capsys):
    """Opening a v4 container must cost <= 0.25x the v3 parse load."""
    v4, v3 = index_files
    # One untimed round: both files were just written so the page cache
    # is warm either way, but the first call through each loader pays
    # one-off allocator/codepath costs that are not the claim here.
    load_index(v4)
    load_index(v3)
    ratios, v4_times, v3_times = [], [], []
    for _ in range(LOAD_ROUNDS):
        started = time.perf_counter()
        load_index(v4)
        v4_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        load_index(v3)
        v3_times.append(time.perf_counter() - started)
        ratios.append(v4_times[-1] / v3_times[-1])
    perf.record(
        "mmap_cold_load_ratio",
        ratios,
        unit="ratio",
        direction="lower",
        dataset=f"road{ROAD_NODES}",
        rounds=LOAD_ROUNDS,
    )
    perf.record(
        "v4_file_overhead",
        [v4.stat().st_size / v3.stat().st_size],
        unit="ratio",
        direction="lower",
        dataset=f"road{ROAD_NODES}",
    )
    ratio = sorted(ratios)[len(ratios) // 2]
    with capsys.disabled():
        print(
            f"\n\nCold start (road{ROAD_NODES} CTLS, "
            f"{v4.stat().st_size / 1e6:.1f} MB): "
            f"v4 mmap {min(v4_times) * 1e3:.1f} ms, "
            f"v3 parse {min(v3_times) * 1e3:.1f} ms, "
            f"median ratio {ratio:.3f}"
        )
    assert ratio <= 0.25, (
        f"v4 mmap load is {ratio:.2f}x the v3 parse load "
        f"(bar: 0.25x)"
    )


def _fleet_run(path, workers, pairs, config=None):
    if config is None:
        config = ServeConfig(port=0, cache_size=0)
    with FleetThread(path, workers, config) as (host, port):
        return replay(
            host, port, pairs,
            concurrency=CONCURRENCY, pipeline=PIPELINE,
            collect_results=True,
        )


def test_fleet_answers_bit_identical(index_files, index, pairs, perf,
                                     capsys):
    """Whatever worker the ring picks, answers match the index."""
    v4, _ = index_files
    report = _fleet_run(v4, 2, pairs)
    assert report.ok == len(pairs), report.status_counts
    wrong = 0
    for source, target, status, distance, count in report.results:
        expected = index.query(source, target)
        wire = None if expected.distance == INF else expected.distance
        if (distance, count) != (wire, expected.count):
            wrong += 1
    assert wrong == 0, f"{wrong} wrong answers through the fleet"
    perf.record(
        "fleet_qps_workers2",
        [report.qps],
        unit="req/s",
        direction="higher",
        dataset=f"road{ROAD_NODES}",
        pairs=NUM_PAIRS,
    )
    with capsys.disabled():
        print(
            f"\n\nFleet parity (2 workers): {report.ok}/{len(pairs)} "
            f"ok, 0 wrong, {report.qps:.0f} req/s"
        )


def test_supervised_fleet_overhead_under_ten_percent(
    index_files, pairs, perf, capsys
):
    """Worker supervision must cost < 10% steady-state QPS.

    Same two-worker fleet twice: once with the supervisor disabled
    (``probe_interval_s=0`` — no liveness probes, no respawn state),
    once with an aggressive 200 ms probe cadence plus respawn enabled.
    The probes are tiny ``/health`` requests off the query path, so the
    supervised fleet must stay within 10% of the unsupervised QPS.
    """
    v4, _ = index_files
    plain = ServeConfig(port=0, cache_size=0, probe_interval_s=0)
    supervised = ServeConfig(
        port=0, cache_size=0, probe_interval_s=0.2, respawn=True
    )
    _fleet_run(v4, 2, pairs[:100], plain)  # warmup: spawn + page cache
    plain_qps = max(
        _fleet_run(v4, 2, pairs, plain).qps for _ in range(3)
    )
    supervised_qps = max(
        _fleet_run(v4, 2, pairs, supervised).qps for _ in range(3)
    )
    ratio = supervised_qps / plain_qps
    perf.record(
        "fleet_supervision_overhead",
        [ratio],
        unit="ratio",
        direction="higher",
        dataset=f"road{ROAD_NODES}",
        pairs=NUM_PAIRS,
    )
    with capsys.disabled():
        print(
            f"\n\nSupervision overhead (2 workers): unsupervised "
            f"{plain_qps:.0f} req/s, supervised {supervised_qps:.0f} "
            f"req/s ({ratio:.3f}x)"
        )
    assert ratio >= 0.9, (
        f"supervised fleet runs at {ratio:.3f}x the unsupervised QPS "
        f"(bar: >= 0.9x)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="workers-4 speedup needs >= 4 CPUs to scale onto",
)
def test_four_workers_beat_one(index_files, pairs, perf, capsys):
    """``--workers 4`` must deliver >= 2.5x the one-worker QPS."""
    v4, _ = index_files
    # warmup: page cache + spawn machinery
    _fleet_run(v4, 1, pairs[:100])
    single = _fleet_run(v4, 1, pairs)
    quad = _fleet_run(v4, 4, pairs)
    assert single.ok == quad.ok == len(pairs)
    ratio = quad.qps / single.qps
    perf.record(
        "fleet_speedup_4v1",
        [ratio],
        unit="x",
        direction="higher",
        dataset=f"road{ROAD_NODES}",
        pairs=NUM_PAIRS,
        cpus=os.cpu_count(),
    )
    with capsys.disabled():
        print(
            f"\n\nFleet speedup: 1 worker {single.qps:.0f} req/s, "
            f"4 workers {quad.qps:.0f} req/s ({ratio:.2f}x)"
        )
    assert ratio >= 2.5, (
        f"4-worker fleet is only {ratio:.2f}x a single worker "
        f"(bar: 2.5x)"
    )

"""Live-update benchmark: query throughput under a sustained delta stream.

Measures the cost of the live tier end to end on a road network:

* **Parity under streaming** — every answer returned while delta
  batches are applied must be bit-identical to counting Dijkstra on
  the weights current at that moment (the batch is acknowledged
  before the queries are issued, so the expected answer is exact,
  not racy).
* **Steady-state QPS** — replaying the same query workload against a
  live server with a >= 2 batch/s update stream running concurrently
  must stay within ~20% of the stream-free figure.
* **Update apply p99** — acknowledged HTTP round-trip per batch.
* **Rebuild swap pause** — the lock-held adoption step of a
  rebuild-and-swap, the only moment writers block readers.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_live.py -v

Excluded from the tier-1 test run (``testpaths = ["tests"]``) like the
rest of ``benchmarks/``.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.ctl import CTLIndex
from repro.graph.generators import road_network
from repro.live import UpdateCoordinator, stream_deltas, synthesize_deltas
from repro.search.pairwise import spc_query
from repro.serve import ServeConfig, ServerThread, replay
from repro.types import INF

#: Road-network size: big enough that label scans dominate HTTP cost,
#: small enough that a CTL build is seconds.
NUM_VERTICES = 600

#: Query pairs per measured round.
NUM_PAIRS = 1500

CONCURRENCY = 8
PIPELINE = 8

#: Update stream during the throughput phase: 1 batch/s sustained
#: (the acceptance floor) for longer than the measured replay window.
STREAM_BATCHES = 6
STREAM_INTERVAL_S = 1.0
STREAM_EDGES_PER_BATCH = 4

#: Replay repeats: the measured window must span several update
#: applies, otherwise one repair dominates a sub-second measurement
#: and the ratio tells you about phase alignment, not throughput.
REPEATS = 40

#: Interleaved (static, live) measurement rounds; best ratio wins —
#: single-core CI runners swing per-round throughput by several
#: percent, and the assertion compares configurations, not runs.
ROUNDS = 3

#: Acceptance bar: QPS under the stream within ~20% of static (with a
#: little slack for shared-core measurement noise).
MIN_LIVE_RATIO = 0.75


@pytest.fixture(scope="module")
def graph():
    return road_network(NUM_VERTICES, seed=13)


@pytest.fixture(scope="module")
def index(graph):
    return CTLIndex.build(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    vertices = sorted(graph.vertices())
    rng = random.Random(31)
    return [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(NUM_PAIRS)
    ]


def _live_server(graph, index):
    coordinator = UpdateCoordinator(graph, CTLIndex.build(graph))
    config = ServeConfig(
        port=0,
        live_updates=True,
        cache_size=0,  # every request reaches the (possibly patched) scan
        max_batch=128,
        max_wait_us=2000,
    )
    return ServerThread(index, config, updates=coordinator), coordinator


def test_parity_under_streaming_updates(graph, index, perf, capsys):
    """Answers track the acknowledged weights exactly, batch by batch."""
    thread, _ = _live_server(graph, index)
    deltas = synthesize_deltas(
        graph, batches=6, edges_per_batch=5, interval_s=0.0, seed=7
    )
    mirror = graph.copy()
    rng = random.Random(41)
    vertices = sorted(graph.vertices())
    apply_latencies = []
    with thread as (host, port):
        for batch in deltas:
            report = stream_deltas(host, port, [batch], speed=0)
            assert report.ok, report.errors
            apply_latencies.extend(report.apply_latencies)
            for a, b, w in batch.updates:
                mirror.add_edge(a, b, w, mirror.count(a, b))
            sample = [
                (rng.choice(vertices), rng.choice(vertices))
                for _ in range(150)
            ]
            answers = replay(
                host, port, sample, concurrency=4, collect_results=True
            )
            assert answers.ok == len(sample)
            for s, t, status, distance, count in answers.results:
                expect = spc_query(mirror, s, t)
                want = None if expect.distance >= INF else expect.distance
                assert status == 200
                assert (distance, count) == (want, expect.count), (s, t)
    p99 = sorted(apply_latencies)[
        min(len(apply_latencies) - 1, int(len(apply_latencies) * 0.99))
    ]
    perf.record(
        "update_apply_p99_ms",
        [p99 * 1e3],
        unit="ms",
        direction="lower",
        dataset=f"road{NUM_VERTICES}",
    )
    with capsys.disabled():
        print(
            f"\n\nLive parity: {len(deltas)} batches, "
            f"apply p99 {p99 * 1e3:.1f} ms"
        )


def test_qps_within_20pct_under_sustained_stream(
    graph, index, pairs, perf, capsys
):
    """A >= 2 batch/s delta stream costs < ~20% of steady-state QPS."""
    deltas = synthesize_deltas(
        graph,
        batches=STREAM_BATCHES,
        edges_per_batch=STREAM_EDGES_PER_BATCH,
        interval_s=STREAM_INTERVAL_S,
        seed=17,
    )
    best_ratio = 0.0
    static_qps = live_qps = 0.0
    for _ in range(ROUNDS):
        thread, _ = _live_server(graph, index)
        with thread as (host, port):
            static = replay(
                host, port, pairs,
                concurrency=CONCURRENCY, pipeline=PIPELINE,
                repeats=REPEATS,
            )
            streamer = threading.Thread(
                target=stream_deltas,
                args=(host, port, deltas),
                kwargs={"speed": 1.0},
                daemon=True,
            )
            streamer.start()
            live = replay(
                host, port, pairs,
                concurrency=CONCURRENCY, pipeline=PIPELINE,
                repeats=REPEATS,
            )
            streamer.join(timeout=60)
        assert static.ok == live.ok == NUM_PAIRS * REPEATS
        ratio = live.qps / static.qps
        if ratio > best_ratio:
            best_ratio, static_qps, live_qps = ratio, static.qps, live.qps
    perf.record(
        "qps_live_stream",
        [live_qps],
        unit="req/s",
        direction="higher",
        dataset=f"road{NUM_VERTICES}",
    )
    perf.record(
        "live_vs_static",
        [best_ratio],
        unit="x",
        direction="higher",
        dataset=f"road{NUM_VERTICES}",
        stream_hz=round(1.0 / STREAM_INTERVAL_S, 2),
    )
    with capsys.disabled():
        print(
            f"\n\nLive stream QPS: {live_qps:.0f} vs static "
            f"{static_qps:.0f} ({best_ratio:.2f}x, "
            f"{1.0 / STREAM_INTERVAL_S:.1f} batches/s)"
        )
    assert best_ratio >= MIN_LIVE_RATIO, (
        f"QPS under the update stream dropped to {best_ratio:.2f}x of "
        f"static ({live_qps:.0f} vs {static_qps:.0f} req/s)"
    )


def test_rebuild_swap_pause(graph, perf, capsys):
    """The lock-held adoption step of a rebuild stays in milliseconds.

    The build itself runs off the serving path; adoption — diffing the
    new base against the overlay and publishing the swap — is the only
    write that blocks concurrent ``apply_batch`` calls, so its
    duration is the pause an update stream observes.
    """
    coordinator = UpdateCoordinator(graph, CTLIndex.build(graph))
    for batch in synthesize_deltas(
        graph, batches=4, edges_per_batch=5, interval_s=0.0, seed=23
    ):
        coordinator.apply_batch(list(batch.updates))
    new_index, base_seqno = coordinator.rebuild()
    started = time.perf_counter()
    info = coordinator.adopt_base(new_index, base_seqno)
    pause = time.perf_counter() - started
    assert coordinator.live_index.state.epoch == 2
    perf.record(
        "rebuild_swap_pause_ms",
        [pause * 1e3],
        unit="ms",
        direction="lower",
        dataset=f"road{NUM_VERTICES}",
    )
    with capsys.disabled():
        print(
            f"\n\nRebuild swap pause: {pause * 1e3:.1f} ms "
            f"(replayed {info['replayed_edges']} edges, "
            f"overlay now {info['overlay_entries']} entries)"
        )

"""Exp-4 — Fig. 11 (construction time), Fig. 12 (memory usage),
Fig. 13 (speedup of CTLS+/CTLS* over plain CTLS-Construct).

Constructions are benchmarked with a single round each (they are
seconds-long); the summary test prints all three figures' data and
checks that the optimizations actually accelerate construction.
"""

import pytest

from repro.baselines.tl import TLIndex
from repro.bench.experiments import exp4_construction
from repro.bench.report import render_exp4
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.datasets.registry import load_dataset

from conftest import BENCH_DATASETS

BUILDERS = {
    "TL": lambda g: TLIndex.build(g),
    "CTL": lambda g: CTLIndex.build(g),
    "CTLS": lambda g: CTLSIndex.build(g, strategy="basic"),
    "CTLS+": lambda g: CTLSIndex.build(g, strategy="pruned"),
    "CTLS*": lambda g: CTLSIndex.build(g, strategy="cutsearch"),
}


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("algorithm", sorted(BUILDERS))
def test_construction(benchmark, dataset, algorithm):
    graph = load_dataset(dataset)
    build = BUILDERS[algorithm]
    index = benchmark.pedantic(build, args=(graph,), rounds=1, iterations=1)
    stats = index.stats()
    benchmark.extra_info["height"] = stats.height
    benchmark.extra_info["width"] = stats.width
    benchmark.extra_info["memory_estimate"] = (
        index.build_stats.peak_memory_estimate
    )
    assert stats.num_vertices == graph.num_vertices


def test_fig11_12_13_summary(benchmark, capsys, perf):
    """Print construction time/memory and Fig. 13 speedups."""
    rows = benchmark.pedantic(
        lambda: exp4_construction(datasets=BENCH_DATASETS),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n\nExp-4 (Fig. 11-13): construction time, memory, speedups")
        print(render_exp4(rows))

    for row in rows:
        perf.record(
            f"build_seconds_{row.algorithm}",
            [row.build_seconds],
            unit="s",
            direction="lower",
            dataset=row.dataset,
        )

    # Fig. 13 shape: the optimised constructions beat plain CTLS.
    for dataset in BENCH_DATASETS:
        by_alg = {r.algorithm: r for r in rows if r.dataset == dataset}
        if "CTLS" in by_alg and "CTLS*" in by_alg:
            perf.record(
                "ctls_star_build_speedup",
                [by_alg["CTLS"].build_seconds / by_alg["CTLS*"].build_seconds],
                unit="x",
                direction="higher",
                dataset=dataset,
            )
            assert (
                by_alg["CTLS*"].build_seconds < by_alg["CTLS"].build_seconds
            ), dataset
        if "CTLS" in by_alg and "CTLS+" in by_alg:
            assert (
                by_alg["CTLS+"].build_seconds < by_alg["CTLS"].build_seconds
            ), dataset

"""Serving benchmark: micro-batching coalescing vs per-request scans.

Runs the full serving stack — asyncio HTTP server, load-generator
client, coalescer — on one machine and compares QPS with the
coalescer on and off under identical load.  The workload is chosen so
batch-kernel amortisation has something to amortise: a unit-weight
grid's TL labels are wide (every grid pair has many equal-length
paths), making the per-query scan expensive enough to dominate the
fixed HTTP cost.

Client and server share this process (and, on CI runners, usually one
core), so the measured ratio *understates* what a dedicated server
core would see — which makes the >= 2x assertion conservative.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -v

Excluded from the tier-1 test run (``testpaths = ["tests"]``) like the
rest of ``benchmarks/``.
"""

from __future__ import annotations

import gc
import http.client
import random
import threading
import time

import pytest

from repro.baselines.tl import TLIndex
from repro.bench.report import render_load_report
from repro.graph.generators import grid_graph
from repro.serve import ServeConfig, ServerThread, replay

#: Grid side; 100x100 gives ~73us scalar scans vs ~21us batched.
GRID_SIDE = 100

#: Distinct query pairs per run (every request misses the cache).
NUM_PAIRS = 2000

CONCURRENCY = 8
PIPELINE = 8


@pytest.fixture(scope="module")
def index():
    return TLIndex.build(grid_graph(GRID_SIDE, GRID_SIDE))


@pytest.fixture(scope="module")
def pairs():
    n = GRID_SIDE * GRID_SIDE
    rng = random.Random(9)
    return [
        (rng.randrange(n), rng.randrange(n)) for _ in range(NUM_PAIRS)
    ]


def _run(index, pairs, *, coalesce: bool, **observability):
    config = ServeConfig(
        port=0,
        coalesce=coalesce,
        max_batch=128,
        max_wait_us=2000,
        cache_size=0,  # every request reaches the scan path
        **observability,
    )
    with ServerThread(index, config) as (host, port):
        return replay(
            host,
            port,
            pairs,
            concurrency=CONCURRENCY,
            pipeline=PIPELINE,
        )


def test_coalescing_doubles_qps(index, pairs, capsys, perf):
    """The coalesced server must at least double uncoalesced QPS."""
    coalesced = _run(index, pairs, coalesce=True)
    uncoalesced = _run(index, pairs, coalesce=False)
    ratio = coalesced.qps / uncoalesced.qps
    perf.record(
        "coalescing_speedup",
        [ratio],
        unit="x",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
        pairs=NUM_PAIRS,
    )
    perf.record(
        "qps_coalesced",
        [coalesced.qps],
        unit="req/s",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
    )
    with capsys.disabled():
        print(
            f"\n\nServing benchmark ({CONCURRENCY} connections, "
            f"pipeline depth {PIPELINE}, grid {GRID_SIDE}x{GRID_SIDE} TL)"
        )
        print("\n-- coalesced --")
        print(render_load_report(coalesced))
        print("\n-- uncoalesced --")
        print(render_load_report(uncoalesced))
        print(f"\ncoalescing speedup: {ratio:.2f}x")
    assert coalesced.ok == uncoalesced.ok == NUM_PAIRS
    assert ratio >= 2.0, (
        f"coalescing speedup {ratio:.2f}x below the 2x acceptance bar "
        f"({coalesced.qps:.0f} vs {uncoalesced.qps:.0f} qps)"
    )


#: Access-log sampling used by the overhead bench: the documented
#: production setting for a saturated server (slow and non-200
#: requests are always logged regardless).
LOG_SAMPLE_EVERY = 10

#: Interleaved (baseline, observed) measurement rounds.  Quick mode
#: gets no discount: per-server-instance throughput on single-core CI
#: runners swings several percent, and fewer than five rounds lets one
#: unlucky instance fail a best-of comparison.
OVERHEAD_ROUNDS = 5


def _timed_run(index, pairs, **observability):
    """One coalesced run; returns (LoadReport, requests per CPU second).

    Wall-clock QPS on a shared (CI / VM) runner is polluted by
    hypervisor steal and frequency drift — this process simply does
    not run for stretches of the measurement, and different runs lose
    different amounts.  ``time.process_time`` counts only the CPU this
    process actually got, covering both the client and server threads
    of the closed loop; on an idle machine the two rates agree (CPU
    utilisation of these runs is ~1.0), but the CPU rate is the one
    stable enough to compare two configurations.
    """
    config = ServeConfig(
        port=0,
        coalesce=True,
        max_batch=128,
        max_wait_us=2000,
        cache_size=0,
        **observability,
    )
    with ServerThread(index, config) as (host, port):
        cpu0 = time.process_time()
        report = replay(
            host, port, pairs, concurrency=CONCURRENCY, pipeline=PIPELINE
        )
        cpu1 = time.process_time()
    return report, len(pairs) / (cpu1 - cpu0)


def test_observability_overhead_under_ten_percent(
    index, pairs, tmp_path, capsys, perf
):
    """Production observability must cost < 10% of baseline QPS.

    Baseline: SLO tracking and request logging off (request ids and
    the /metrics recorder stay on — they are part of the protocol).
    Observed: the documented production configuration under load — a
    30 s SLO window plus a JSON-lines access log sampled 1-in-10 for
    fast 200s, with slow-query and error records always on.  Logging
    *every* request on this workload costs more (each request is only
    ~50 us of work, so ~7 us of record formatting is visible); the
    sampled configuration is what a saturated deployment runs, and is
    what the 10% bar is asserted on.

    Two noise defences, both necessary on shared runners: throughput
    is measured in requests per *CPU* second (see :func:`_timed_run`),
    and the two configurations run strictly interleaved (base,
    observed, base, observed, ...) compared best-of-N, so a drift
    window hits both sides rather than biasing one.
    """
    log_path = tmp_path / "access.log"
    observed_kwargs = dict(
        slo_window_s=30,
        access_log=str(log_path),
        log_sample_every=LOG_SAMPLE_EVERY,
    )
    # One warmup run per configuration to populate caches and settle
    # the allocator before anything is measured.
    _timed_run(index, pairs, slo_window_s=0)
    _timed_run(index, pairs, **observed_kwargs)
    base_qps, obs_qps = [], []
    for _ in range(OVERHEAD_ROUNDS):
        baseline, base_cpu_qps = _timed_run(
            index, pairs, slo_window_s=0, access_log=None
        )
        observed, obs_cpu_qps = _timed_run(index, pairs, **observed_kwargs)
        assert observed.ok == baseline.ok == NUM_PAIRS
        base_qps.append(base_cpu_qps)
        obs_qps.append(obs_cpu_qps)
    ratio = max(obs_qps) / max(base_qps)
    log_lines = sum(1 for _ in open(log_path, encoding="utf-8"))
    eligible = NUM_PAIRS * (OVERHEAD_ROUNDS + 1)  # + the warmup run
    with capsys.disabled():
        paired = ", ".join(
            f"{o / b:.3f}" for b, o in zip(base_qps, obs_qps)
        )
        print(
            f"\n\nObservability overhead ({CONCURRENCY} connections, "
            f"1-in-{LOG_SAMPLE_EVERY} sampling):"
            f" baseline {max(base_qps):,.0f} req/cpu-s,"
            f" logging+SLO {max(obs_qps):,.0f} req/cpu-s"
            f" (best-of-{OVERHEAD_ROUNDS} ratio {ratio:.3f},"
            f" paired [{paired}], {log_lines} log records)"
        )
    perf.record(
        "observability_overhead",
        [o / b for b, o in zip(base_qps, obs_qps)],
        unit="ratio",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
        rounds=OVERHEAD_ROUNDS,
    )
    perf.record(
        "qps_per_cpu_second",
        base_qps,
        unit="req/cpu-s",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
    )
    # The sampler keeps ~1 in 10 fast 200s; the log also carries
    # server lifecycle records.  Binomial bounds with generous slack.
    assert eligible // 20 <= log_lines <= eligible // 5
    assert ratio >= 0.90, (
        f"observability costs {(1 - ratio) * 100:.1f}% throughput "
        f"({max(obs_qps):.0f} vs {max(base_qps):.0f} req/cpu-s), "
        f"over the 10% bar"
    )


def test_robustness_hooks_cost_under_five_percent(index, pairs, capsys, perf):
    """The fault-tolerance machinery must cost < 5% fault-free QPS.

    Guarded: a circuit breaker armed at its default threshold plus a
    parsed-but-silent fault plan (every site at probability 0, so the
    per-request ``should_fire`` draws and per-response reset checks all
    run) — the hooks a production deployment carries even when nothing
    is failing.  Bare: breaker disabled, no plan, as the server ran
    before the robustness layer existed.  Same interleaved
    best-of-N-per-CPU-second methodology as the observability bench.
    """
    from repro.faults import FaultPlan
    from repro.serve.runner import ServerThread as _ServerThread

    def timed(fault_plan, **config_kwargs):
        config = ServeConfig(
            port=0, coalesce=True, max_batch=128, max_wait_us=2000,
            cache_size=0, **config_kwargs,
        )
        with _ServerThread(
            index, config, fault_plan=fault_plan
        ) as (host, port):
            cpu0 = time.process_time()
            report = replay(
                host, port, pairs,
                concurrency=CONCURRENCY, pipeline=PIPELINE,
            )
            cpu1 = time.process_time()
        return report, len(pairs) / (cpu1 - cpu0)

    silent_spec = "scan.fail:0.0,scan.slow:0.0,conn.reset:0.0"
    timed(None, breaker_threshold=0)  # warmup
    timed(FaultPlan.parse(silent_spec), breaker_threshold=10)
    bare_qps, guarded_qps = [], []
    for _ in range(OVERHEAD_ROUNDS):
        bare, bare_cpu = timed(None, breaker_threshold=0)
        guarded, guarded_cpu = timed(
            FaultPlan.parse(silent_spec), breaker_threshold=10
        )
        assert bare.ok == guarded.ok == NUM_PAIRS
        bare_qps.append(bare_cpu)
        guarded_qps.append(guarded_cpu)
    ratio = max(guarded_qps) / max(bare_qps)
    with capsys.disabled():
        paired = ", ".join(
            f"{g / b:.3f}" for b, g in zip(bare_qps, guarded_qps)
        )
        print(
            f"\n\nRobustness overhead ({CONCURRENCY} connections):"
            f" bare {max(bare_qps):,.0f} req/cpu-s,"
            f" breaker+plan {max(guarded_qps):,.0f} req/cpu-s"
            f" (best-of-{OVERHEAD_ROUNDS} ratio {ratio:.3f},"
            f" paired [{paired}])"
        )
    perf.record(
        "robustness_overhead",
        [g / b for b, g in zip(bare_qps, guarded_qps)],
        unit="ratio",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
        rounds=OVERHEAD_ROUNDS,
    )
    assert ratio >= 0.95, (
        f"robustness hooks cost {(1 - ratio) * 100:.1f}% throughput "
        f"({max(guarded_qps):.0f} vs {max(bare_qps):.0f} req/cpu-s), "
        f"over the 5% bar"
    )


def test_tracing_overhead_under_five_percent(index, pairs, capsys, perf):
    """Distributed tracing + workload analytics must cost < 5% QPS.

    Traced: the default production setting — span ring buffer on with
    1-in-64 head sampling plus the Space-Saving heavy-hitter sketch
    on every request.  Untraced: both subsystems disabled
    (``trace_buffer=0, top_pairs_capacity=0``), the server as it ran
    before this layer existed.

    The margin (~2.5 us of sketch + sampler work against a ~60 us
    request) is thinner than the other overhead benches', so this test
    trades load-shape realism for measurement resolution, twice over:

    * one client connection at pipeline depth 32 — the coalescer stays
      fed, but the single-core CI runner is not asked to juggle eight
      client threads against the server loop (with multiple
      connections the round-to-round spread is +-15%, an order of
      magnitude above the signal);
    * the asserted statistic is the **minimum per-request CPU cost**
      over 12 interleaved runs per side, in ABBA order (untraced,
      traced, traced, untraced) so linear drift cancels.  Preemption
      by background load only ever *adds* CPU (cold caches after a
      context switch), so each side's minimum approaches its clean
      cost and the min-to-min ratio isolates the real overhead where
      mean- or median-based comparisons still measure the runner.
    """
    rounds = 6  # ABBA rounds -> 2 * rounds runs per side

    def timed(**observability):
        config = ServeConfig(
            port=0, coalesce=True, max_batch=128, max_wait_us=2000,
            cache_size=0, **observability,
        )
        with ServerThread(index, config) as (host, port):
            # Collector pauses land in whichever run triggers the
            # threshold, not the run that made the garbage — collect
            # up front and keep the cycle collector out of the window
            # entirely so both configurations measure only their own
            # work (refcounting still reclaims nearly everything).
            gc.collect()
            gc.disable()
            try:
                cpu0 = time.process_time()
                report = replay(
                    host, port, pairs, concurrency=1, pipeline=32
                )
                cpu1 = time.process_time()
            finally:
                gc.enable()
        assert report.ok == NUM_PAIRS
        return (cpu1 - cpu0) / NUM_PAIRS * 1e6  # us of CPU per request

    untraced_kwargs = dict(trace_buffer=0, top_pairs_capacity=0)
    timed(**untraced_kwargs)  # warmup
    timed()
    off_cost, on_cost = [], []
    for _ in range(rounds):
        off_cost.append(timed(**untraced_kwargs))
        on_cost.append(timed())
        on_cost.append(timed())
        off_cost.append(timed(**untraced_kwargs))
    ratio = min(off_cost) / min(on_cost)
    with capsys.disabled():
        print(
            f"\n\nTracing overhead (1 connection, pipeline 32, "
            f"1-in-64 span sampling + top-pairs sketch):"
            f" untraced min {min(off_cost):.1f} us/req,"
            f" traced min {min(on_cost):.1f} us/req"
            f" (min-cost ratio {ratio:.3f} over {len(off_cost)} runs"
            f" per side)"
        )
    perf.record(
        "tracing_overhead",
        [ratio],
        unit="ratio",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
        rounds=rounds,
    )
    assert ratio >= 0.95, (
        f"tracing + analytics cost {(1 - ratio) * 100:.1f}% throughput "
        f"(min {min(on_cost):.1f} vs {min(off_cost):.1f} us CPU per "
        f"request), over the 5% bar"
    )


def _post_profile(host, port, seconds, results):
    """POST ``/admin/profile``; stash ``(status, body, sampler_cpu)``.

    Runs on a helper thread so the capture window overlaps the replay;
    the request blocks server-side for ``seconds`` before returning the
    collapsed stacks.  ``sampler_cpu`` is the profiler's self-accounted
    CPU cost from the ``X-Profile-Cpu-Seconds`` response header.
    """
    conn = http.client.HTTPConnection(host, port, timeout=seconds + 30)
    try:
        conn.request(
            "POST",
            f"/admin/profile?seconds={seconds:.2f}"
            f"&interval_ms=10&format=collapsed",
        )
        response = conn.getresponse()
        results.append((
            response.status,
            response.read().decode("utf-8"),
            float(response.headers.get("X-Profile-Cpu-Seconds", "nan")),
        ))
    except (OSError, http.client.HTTPException) as exc:
        results.append((0, f"profile request failed: {exc}", float("nan")))
    finally:
        conn.close()


def test_profiler_overhead_under_five_percent(
    index, pairs, tmp_path, capsys, perf
):
    """An attached sampling profiler must cost < 5% of serving QPS.

    The acceptance scenario for ``repro.obs.sampling``: a live server
    under sustained pipelined load takes a ``POST /admin/profile``
    capture mid-flight.  Two bars:

    * **< 5% QPS** — asserted on the sampler's self-accounted CPU
      (``X-Profile-Cpu-Seconds``) as a share of the saturated capture
      window.  On a CPU-bound server every CPU second the sampler
      burns is a CPU second the query path did not get, so this *is*
      the throughput cost — measured exactly, instead of through an
      A/B comparison whose scheduler noise on a single-core runner
      (±5-6% between otherwise identical rounds, profiled sometimes
      *faster* than bare) is larger than the signal.
    * **End-to-end backstop** — the interleaved bare/profiled CPU
      throughput ratio (worst round on each side dropped) must stay
      above 0.85: generous enough to absorb the scheduler noise (a
      contended runner swings whole-machine throughput ±15% between
      rounds), tight enough to catch a gross regression like the 5 ms
      GIL-switch resonance (~25% hit) or a sampler walking stacks
      without the memo (~30%).

    The capture must also actually see the work: the collapsed stacks
    must contain ``scan_batch`` frames, the batch kernel the coalescer
    drives.  All rounds run against one server instance — a fresh
    instance locks in its own thread placement, which swings CPU
    throughput by several percent and would confound the pairing.
    The capture duration is calibrated to ~0.8x one replay's wall time
    so the profile response returns while the server is still serving
    (a capture outliving the replay would be cut off by the graceful
    drain instead of exercising the live path).  Each round replays the
    workload eight times over — at ~15k req/s a single pass lasts only
    ~0.13s, too short for a stable CPU-throughput reading.
    """
    config = ServeConfig(
        port=0, coalesce=True, max_batch=128, max_wait_us=2000, cache_size=0
    )
    load = pairs * 8
    rounds = max(OVERHEAD_ROUNDS, 5)
    bare_qps, profiled_qps, sampler_cpus = [], [], []
    collapsed = ""
    with ServerThread(index, config) as (host, port):
        wall0 = time.perf_counter()
        replay(host, port, load, concurrency=CONCURRENCY, pipeline=PIPELINE)
        replay_wall = time.perf_counter() - wall0
        replay(host, port, load, concurrency=CONCURRENCY, pipeline=PIPELINE)
        profile_seconds = max(0.3, min(replay_wall * 0.8, 30.0))

        def timed(profile: bool):
            captures = []
            worker = None
            if profile:
                worker = threading.Thread(
                    target=_post_profile,
                    args=(host, port, profile_seconds, captures),
                )
                worker.start()
                time.sleep(0.05)  # let the capture start before the load
            gc.collect()  # keep collector pauses out of the CPU window
            cpu0 = time.process_time()
            report = replay(
                host, port, load,
                concurrency=CONCURRENCY, pipeline=PIPELINE,
            )
            cpu1 = time.process_time()
            if worker is not None:
                worker.join()
            return report, len(load) / (cpu1 - cpu0), captures

        for index_round in range(rounds):
            # Alternate which mode goes first so slow warmup drift
            # (the first seconds of a process run measurably slower)
            # cancels instead of biasing one side.
            order = (False, True) if index_round % 2 == 0 else (True, False)
            round_results = {}
            for profile in order:
                round_results[profile] = timed(profile)
            bare, bare_cpu, _ = round_results[False]
            profiled, prof_cpu, captures = round_results[True]
            assert bare.ok == profiled.ok == len(load)
            assert captures, "profile request never completed"
            status, body, sampler_cpu = captures[0]
            assert status == 200, body
            collapsed = body
            bare_qps.append(bare_cpu)
            profiled_qps.append(prof_cpu)
            sampler_cpus.append(sampler_cpu)

    cpu_share = max(sampler_cpus) / profile_seconds
    trimmed_bare = sorted(bare_qps)[1:]
    trimmed_prof = sorted(profiled_qps)[1:]
    ratio = (sum(trimmed_prof) / len(trimmed_prof)) / (
        sum(trimmed_bare) / len(trimmed_bare)
    )

    out_path = tmp_path / "serve-profile.collapsed"
    out_path.write_text(collapsed, encoding="utf-8")
    stack_lines = [line for line in collapsed.splitlines() if line.strip()]
    with capsys.disabled():
        paired = ", ".join(
            f"{p / b:.3f}" for b, p in zip(bare_qps, profiled_qps)
        )
        print(
            f"\n\nProfiler overhead ({CONCURRENCY} connections, "
            f"{profile_seconds:.2f}s capture at 100Hz):"
            f" sampler CPU {max(sampler_cpus) * 1000:.1f}ms"
            f" = {cpu_share * 100:.2f}% of the window;"
            f" bare {max(bare_qps):,.0f} req/cpu-s,"
            f" profiled {max(profiled_qps):,.0f} req/cpu-s"
            f" (trimmed-mean-of-{rounds} ratio {ratio:.3f},"
            f" paired [{paired}], {len(stack_lines)} distinct stacks)"
        )
    perf.record(
        "profiler_cpu_share",
        [cpu / profile_seconds for cpu in sampler_cpus],
        unit="ratio",
        direction="lower",
        dataset=f"grid{GRID_SIDE}",
        capture_seconds=round(profile_seconds, 2),
    )
    perf.record(
        "profiler_overhead",
        [p / b for b, p in zip(bare_qps, profiled_qps)],
        unit="ratio",
        direction="higher",
        dataset=f"grid{GRID_SIDE}",
        capture_seconds=round(profile_seconds, 2),
    )
    assert stack_lines, "profiler returned an empty capture"
    assert "scan_batch" in collapsed, (
        "collapsed stacks never caught the batch kernel; first lines:\n"
        + "\n".join(stack_lines[:10])
    )
    assert cpu_share < 0.05, (
        f"sampler burned {cpu_share * 100:.2f}% of the capture window's "
        f"CPU ({max(sampler_cpus) * 1000:.1f}ms of {profile_seconds:.2f}s), "
        f"over the 5% bar"
    )
    assert ratio >= 0.85, (
        f"attached profiler costs {(1 - ratio) * 100:.1f}% end-to-end "
        f"throughput (trimmed mean, {len(trimmed_prof)}/{rounds} rounds) — "
        f"far beyond sampler CPU {cpu_share * 100:.2f}%; something else "
        f"about the capture path regressed"
    )


def test_closed_loop_strict_request_response(index, pairs, capsys):
    """Pipeline depth 1 (strict request/response) must not regress.

    With no pipelining the coalescer can only merge requests from
    different connections that happen to arrive in one event-loop
    tick, so the bar is parity, not a speedup.
    """
    config = ServeConfig(port=0, coalesce=True, cache_size=0)
    with ServerThread(index, config) as (host, port):
        report = replay(
            host, port, pairs[:500], concurrency=CONCURRENCY, pipeline=1
        )
    with capsys.disabled():
        print(f"\n\nclosed-loop (pipeline=1): {report.qps:.0f} qps")
    assert report.ok == 500

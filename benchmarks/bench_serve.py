"""Serving benchmark: micro-batching coalescing vs per-request scans.

Runs the full serving stack — asyncio HTTP server, load-generator
client, coalescer — on one machine and compares QPS with the
coalescer on and off under identical load.  The workload is chosen so
batch-kernel amortisation has something to amortise: a unit-weight
grid's TL labels are wide (every grid pair has many equal-length
paths), making the per-query scan expensive enough to dominate the
fixed HTTP cost.

Client and server share this process (and, on CI runners, usually one
core), so the measured ratio *understates* what a dedicated server
core would see — which makes the >= 2x assertion conservative.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -v

Excluded from the tier-1 test run (``testpaths = ["tests"]``) like the
rest of ``benchmarks/``.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.tl import TLIndex
from repro.bench.report import render_load_report
from repro.graph.generators import grid_graph
from repro.serve import ServeConfig, ServerThread, replay

#: Grid side; 100x100 gives ~73us scalar scans vs ~21us batched.
GRID_SIDE = 100

#: Distinct query pairs per run (every request misses the cache).
NUM_PAIRS = 2000

CONCURRENCY = 8
PIPELINE = 8


@pytest.fixture(scope="module")
def index():
    return TLIndex.build(grid_graph(GRID_SIDE, GRID_SIDE))


@pytest.fixture(scope="module")
def pairs():
    n = GRID_SIDE * GRID_SIDE
    rng = random.Random(9)
    return [
        (rng.randrange(n), rng.randrange(n)) for _ in range(NUM_PAIRS)
    ]


def _run(index, pairs, *, coalesce: bool):
    config = ServeConfig(
        port=0,
        coalesce=coalesce,
        max_batch=128,
        max_wait_us=2000,
        cache_size=0,  # every request reaches the scan path
    )
    with ServerThread(index, config) as (host, port):
        return replay(
            host,
            port,
            pairs,
            concurrency=CONCURRENCY,
            pipeline=PIPELINE,
        )


def test_coalescing_doubles_qps(index, pairs, capsys):
    """The coalesced server must at least double uncoalesced QPS."""
    coalesced = _run(index, pairs, coalesce=True)
    uncoalesced = _run(index, pairs, coalesce=False)
    ratio = coalesced.qps / uncoalesced.qps
    with capsys.disabled():
        print(
            f"\n\nServing benchmark ({CONCURRENCY} connections, "
            f"pipeline depth {PIPELINE}, grid {GRID_SIDE}x{GRID_SIDE} TL)"
        )
        print("\n-- coalesced --")
        print(render_load_report(coalesced))
        print("\n-- uncoalesced --")
        print(render_load_report(uncoalesced))
        print(f"\ncoalescing speedup: {ratio:.2f}x")
    assert coalesced.ok == uncoalesced.ok == NUM_PAIRS
    assert ratio >= 2.0, (
        f"coalescing speedup {ratio:.2f}x below the 2x acceptance bar "
        f"({coalesced.qps:.0f} vs {uncoalesced.qps:.0f} qps)"
    )


def test_closed_loop_strict_request_response(index, pairs, capsys):
    """Pipeline depth 1 (strict request/response) must not regress.

    With no pipelining the coalescer can only merge requests from
    different connections that happen to arrive in one event-loop
    tick, so the bar is parity, not a speedup.
    """
    config = ServeConfig(port=0, coalesce=True, cache_size=0)
    with ServerThread(index, config) as (host, port):
        report = replay(
            host, port, pairs[:500], concurrency=CONCURRENCY, pipeline=1
        )
    with capsys.disabled():
        print(f"\n\nclosed-loop (pipeline=1): {report.qps:.0f} qps")
    assert report.ok == 500

"""Exp-3 — Fig. 10: query processing time by query distance (Q1..Q10).

Benchmarks the extreme and middle distance groups per algorithm, and
prints the full ten-group table.  The paper's headline shape: TL/CTL
get *faster* with distance (shallower LCA), CTLS gets *slower* (larger
cuts), making CTLS the clear winner on short-distance queries.
"""

import pytest

from repro.bench.experiments import QUERY_ALGORITHMS, exp3_query_distance
from repro.bench.measure import average_query_seconds, run_queries
from repro.bench.report import render_exp3

from conftest import BENCH_DATASETS

#: Representative groups benchmarked individually (short / mid / long).
PROBE_BINS = (1, 5, 10)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
@pytest.mark.parametrize("algorithm", QUERY_ALGORITHMS)
@pytest.mark.parametrize("group", PROBE_BINS)
def test_distance_group_queries(
    benchmark, cache, distance_workloads, dataset, algorithm, group
):
    bins = distance_workloads[dataset]
    pairs = bins[group - 1].pairs
    if not pairs:
        pytest.skip(f"{dataset} Q{group}: no pairs at this distance range")
    index = cache.get(dataset, algorithm)
    benchmark.extra_info["queries_per_round"] = len(pairs)
    benchmark(run_queries, index, pairs)


def test_fig10_summary(benchmark, cache, distance_workloads, capsys, perf):
    """Print the full Fig. 10 table and check the short-distance win."""
    rows = benchmark.pedantic(
        lambda: exp3_query_distance(
            datasets=BENCH_DATASETS, per_bin=100, cache=cache
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n\nExp-3 (Fig. 10): query time by distance group")
        print(render_exp3(rows))

    # Shape check on the shortest populated group of each dataset:
    # CTLS-Query beats TL-Query on short-distance queries.
    for dataset in BENCH_DATASETS:
        dataset_rows = [r for r in rows if r.dataset == dataset]
        if not dataset_rows:
            continue
        first_bin = min(r.bin_index for r in dataset_rows)
        short = {
            r.algorithm: r.avg_query_us
            for r in dataset_rows
            if r.bin_index == first_bin
        }
        if {"TL", "CTLS"} <= set(short):
            # The headline shape as one number: how much cheaper CTLS
            # answers the shortest-distance group than TL.  A ratio of
            # two same-host timings, so stable enough to gate on.
            perf.record(
                "short_distance_ctls_vs_tl",
                [short["CTLS"] / short["TL"]],
                unit="ratio",
                direction="lower",
                dataset=dataset,
                bin=first_bin,
            )
            assert short["CTLS"] < short["TL"], (dataset, short)

"""Shared fixtures: small reference graphs and session-built indexes."""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    power_grid_network,
    road_network,
)
from repro.graph.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """A weighted triangle: two shortest 0-2 routes of distance 2."""
    g = Graph()
    g.add_edge(0, 1, 1)
    g.add_edge(1, 2, 1)
    g.add_edge(0, 2, 2)
    return g


@pytest.fixture
def diamond() -> Graph:
    """Two parallel length-2 routes between 0 and 3 (spc = 2)."""
    g = Graph()
    g.add_edge(0, 1, 1)
    g.add_edge(0, 2, 1)
    g.add_edge(1, 3, 1)
    g.add_edge(2, 3, 1)
    return g


@pytest.fixture
def two_components() -> Graph:
    """Two disjoint edges: 0-1 and 2-3."""
    g = Graph()
    g.add_edge(0, 1, 5)
    g.add_edge(2, 3, 7)
    return g


@pytest.fixture
def small_grid() -> Graph:
    """4x4 unit grid: maximal shortest-path multiplicity."""
    return grid_graph(4, 4)


@pytest.fixture
def weighted_grid() -> Graph:
    """5x5 grid with deterministic varied weights (some ties)."""
    g = grid_graph(5, 5)
    rng = random.Random(99)
    out = Graph()
    for u, v, _w, _c in g.edges():
        out.add_edge(u, v, rng.choice((2, 3, 3, 4)))
    return out


@pytest.fixture(scope="session")
def road_graph() -> Graph:
    """A ~400-vertex road network used across index tests."""
    return road_network(400, seed=3)


@pytest.fixture(scope="session")
def power_graph() -> Graph:
    """A ~250-vertex power-grid network."""
    return power_grid_network(250, seed=4)


@pytest.fixture(scope="session")
def road_pairs(road_graph):
    """Deterministic random query pairs on ``road_graph``."""
    rng = random.Random(7)
    vertices = sorted(road_graph.vertices())
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(200)
    ]


@pytest.fixture
def path5() -> Graph:
    """A 5-vertex unit path."""
    return path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    """A 6-vertex unit cycle (two shortest routes between antipodes)."""
    return cycle_graph(6)

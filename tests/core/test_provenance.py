"""Index provenance: loaders stamp where an index came from.

Every load path (JSON v1, binary v2, binary v3) must attach a
``provenance`` dict to the returned index; v1 and v3 additionally
round-trip the ``build_info`` block ``save_index`` embeds, which is
how ``repro-spc stats`` and the server's ``/stats`` endpoint answer
"how was the index serving right now built?".
"""

import pytest

from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.graph.generators import grid_graph


@pytest.fixture(scope="module")
def index():
    return CTLSIndex.build(grid_graph(6, 6))


BUILD_INFO = {
    "algorithm": "ctls",
    "git_sha": "abc123",
    "build_seconds": 1.25,
    "label_entries": 999,
}


def test_v1_provenance_and_build_info(tmp_path, index):
    path = tmp_path / "idx.json"
    save_index(index, path, build_info=BUILD_INFO)
    loaded = load_index(path)
    prov = loaded.provenance
    assert prov["format_version"] == 1
    assert prov["path"] == str(path)
    assert prov["build_info"]["git_sha"] == "abc123"


def test_v2_provenance_without_build_info(tmp_path, index):
    path = tmp_path / "idx.bin"
    save_index(index, path, format="binary-v2", build_info=BUILD_INFO)
    loaded = load_index(path)
    prov = loaded.provenance
    assert prov["format_version"] == 2
    # v2 is a frozen legacy container: build_info is dropped silently.
    assert "build_info" not in prov


def test_v3_provenance_with_sections_and_build_info(tmp_path, index):
    path = tmp_path / "idx.bin"
    save_index(index, path, format="binary-v3", build_info=BUILD_INFO)
    loaded = load_index(path)
    prov = loaded.provenance
    assert prov["format_version"] == 3
    assert prov["build_info"]["label_entries"] == 999
    sections = prov["sections"]
    assert sections, "v3 provenance must carry section byte sizes"
    for name, size in sections.items():
        assert size > 0, name


def test_v4_provenance_with_sections_and_build_info(tmp_path, index):
    path = tmp_path / "idx.bin"
    save_index(index, path, format="binary", build_info=BUILD_INFO)
    loaded = load_index(path)
    prov = loaded.provenance
    assert prov["format_version"] == 4
    assert prov["build_info"]["label_entries"] == 999
    sections = prov["sections"]
    assert sections, "v4 provenance must carry section byte sizes"
    for name, size in sections.items():
        assert size > 0, name


def test_v4_provenance_without_build_info(tmp_path, index):
    path = tmp_path / "idx.bin"
    save_index(index, path, format="binary")
    prov = load_index(path).provenance
    assert prov["format_version"] == 4
    assert prov.get("build_info") is None


def test_saved_payload_unaffected_by_provenance(tmp_path, index):
    # provenance is attached to the loaded object, never serialized
    # back: save -> load -> save must be byte-stable.
    first = tmp_path / "a.bin"
    second = tmp_path / "b.bin"
    save_index(index, first, format="binary", build_info=BUILD_INFO)
    loaded = load_index(first)
    save_index(loaded, second, format="binary", build_info=BUILD_INFO)
    assert load_index(second).arena == index.arena

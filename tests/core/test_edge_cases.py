"""Edge-case hardening: degenerate graphs across all three indexes."""

import itertools

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import IndexQueryError
from repro.graph.generators import complete_graph, star_graph
from repro.graph.graph import Graph
from repro.search.pairwise import spc_query

ALL_BUILDERS = [
    pytest.param(lambda g: TLIndex.build(g), id="tl"),
    pytest.param(lambda g: CTLIndex.build(g), id="ctl"),
    pytest.param(lambda g: CTLSIndex.build(g, strategy="basic"), id="ctls-basic"),
    pytest.param(lambda g: CTLSIndex.build(g, strategy="pruned"), id="ctls-pruned"),
    pytest.param(
        lambda g: CTLSIndex.build(g, strategy="cutsearch"), id="ctls-cutsearch"
    ),
]


@pytest.mark.parametrize("build", ALL_BUILDERS)
class TestDegenerateGraphs:
    def test_empty_graph(self, build):
        index = build(Graph())
        with pytest.raises(IndexQueryError):
            index.query(0, 0)

    def test_single_vertex(self, build):
        g = Graph()
        g.add_vertex(5)
        index = build(g)
        assert tuple(index.query(5, 5)) == (0, 1)

    def test_single_edge(self, build):
        g = Graph()
        g.add_edge(0, 1, 9)
        index = build(g)
        assert tuple(index.query(0, 1)) == (9, 1)
        assert tuple(index.query(1, 0)) == (9, 1)

    def test_many_isolated_vertices(self, build):
        g = Graph()
        for v in range(6):
            g.add_vertex(v)
        g.add_edge(0, 1, 2)
        index = build(g)
        assert tuple(index.query(0, 1)) == (2, 1)
        assert index.query(2, 5).count == 0
        assert tuple(index.query(3, 3)) == (0, 1)

    def test_complete_graph(self, build):
        g = complete_graph(7)
        index = build(g)
        for s, t in itertools.combinations(range(7), 2):
            assert tuple(index.query(s, t)) == (1, 1)

    def test_star(self, build):
        g = star_graph(6)
        index = build(g)
        assert tuple(index.query(1, 2)) == (2, 1)
        assert tuple(index.query(0, 4)) == (1, 1)

    def test_float_weights(self, build):
        g = Graph()
        g.add_edge(0, 1, 1.5)
        g.add_edge(1, 2, 2.5)
        g.add_edge(0, 2, 4.0)
        index = build(g)
        assert tuple(index.query(0, 2)) == (4.0, 2)

    def test_parallel_tie_heavy_multigraph_style(self, build):
        # Many equal-length routes through a bipartite-like middle.
        g = Graph()
        for middle in (1, 2, 3, 4):
            g.add_edge(0, middle, 1)
            g.add_edge(middle, 5, 1)
        index = build(g)
        assert tuple(index.query(0, 5)) == (2, 4)

    def test_three_components(self, build):
        g = Graph.from_edges(
            [(0, 1, 1), (2, 3, 1), (3, 4, 1), (5, 6, 2), (6, 7, 2), (5, 7, 4)]
        )
        index = build(g)
        for s, t in itertools.product(range(8), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_large_weights(self, build):
        g = Graph()
        g.add_edge(0, 1, 10**12)
        g.add_edge(1, 2, 10**12)
        g.add_edge(0, 2, 2 * 10**12)
        index = build(g)
        assert tuple(index.query(0, 2)) == (2 * 10**12, 2)

    def test_huge_exact_counts(self, build):
        # A chain of diamonds: counts multiply, 2**20 exceeds float
        # precision limits and must come back exact.
        g = Graph()
        node = 0
        for step in range(20):
            a, b, c = node + 1, node + 2, node + 3
            g.add_edge(node, a, 1)
            g.add_edge(node, b, 1)
            g.add_edge(a, c, 1)
            g.add_edge(b, c, 1)
            node = c
        index = build(g)
        result = index.query(0, node)
        assert result.count == 2**20
        assert isinstance(result.count, int)

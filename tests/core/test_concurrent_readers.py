"""Concurrent read safety: a built index is shared between threads.

The serving layer (:mod:`repro.serve`) answers queries from worker
threads while the asyncio loop keeps parsing requests, so ``query``
and ``query_batch`` on one shared index must be pure reads: many
threads hammering the same index must all see exactly the answers a
single-threaded replay produces.  These tests pin that guarantee.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.graph.generators import road_network

NUM_THREADS = 8
QUERIES_PER_THREAD = 150


@pytest.fixture(scope="module")
def graph():
    return road_network(250, seed=5)


@pytest.fixture(scope="module")
def workload(graph):
    vertices = list(graph.vertices())
    rng = random.Random(17)
    return [
        (rng.choice(vertices), rng.choice(vertices))
        for _ in range(QUERIES_PER_THREAD)
    ]


def _hammer(index, pairs, barrier, answers, slot, use_batch):
    barrier.wait()  # release every thread into the index at once
    if use_batch:
        answers[slot] = index.query_batch(pairs)
    else:
        answers[slot] = [index.query(s, t) for s, t in pairs]


@pytest.mark.parametrize(
    "build",
    [TLIndex.build, CTLIndex.build, CTLSIndex.build],
    ids=["tl", "ctl", "ctls"],
)
def test_threaded_queries_match_serial(graph, workload, build):
    index = build(graph)
    expected = [index.query(s, t) for s, t in workload]
    assert index.query_batch(workload) == expected

    barrier = threading.Barrier(NUM_THREADS)
    answers = [None] * NUM_THREADS
    threads = [
        threading.Thread(
            target=_hammer,
            # Alternate scalar and batch readers so both paths run
            # interleaved against the same shared label arrays.
            args=(index, workload, barrier, answers, i, i % 2 == 1),
        )
        for i in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "reader thread deadlocked"
    for got in answers:
        assert got == expected

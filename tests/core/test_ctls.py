"""Tests for the CTLS-Index (Algorithms 3-5, all strategies)."""

import itertools

import pytest

from repro.core.ctls import STRATEGIES, CTLSIndex
from repro.exceptions import IndexBuildError, IndexQueryError
from repro.graph.generators import cycle_graph, grid_graph
from repro.search.pairwise import spc_query
from repro.types import INF


@pytest.fixture(params=STRATEGIES)
def strategy(request):
    return request.param


class TestCTLSCorrectness:
    def test_exhaustive_small_grid(self, strategy):
        g = grid_graph(4, 3)
        index = CTLSIndex.build(g, strategy=strategy)
        for s, t in itertools.product(range(12), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_cycle(self, strategy):
        g = cycle_graph(9)
        index = CTLSIndex.build(g, strategy=strategy)
        for s, t in itertools.product(range(9), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_road_network(self, road_graph, road_pairs, strategy):
        index = CTLSIndex.build(road_graph, strategy=strategy)
        for s, t in road_pairs:
            assert tuple(index.query(s, t)) == tuple(
                spc_query(road_graph, s, t)
            )

    def test_power_network(self, power_graph, strategy):
        index = CTLSIndex.build(power_graph, strategy=strategy)
        vertices = sorted(power_graph.vertices())
        for s in vertices[::19]:
            for t in vertices[::23]:
                assert tuple(index.query(s, t)) == tuple(
                    spc_query(power_graph, s, t)
                )

    def test_disconnected(self, two_components, strategy):
        index = CTLSIndex.build(two_components, strategy=strategy)
        result = index.query(0, 3)
        assert result.distance == INF and result.count == 0
        assert tuple(index.query(0, 1)) == (5, 1)

    def test_same_vertex(self, diamond, strategy):
        index = CTLSIndex.build(diamond, strategy=strategy)
        assert tuple(index.query(0, 0)) == (0, 1)

    def test_unit_grid_big_counts(self, strategy):
        g = grid_graph(5, 5)
        index = CTLSIndex.build(g, strategy=strategy)
        assert tuple(index.query(0, 24)) == (8, 70)  # C(8, 4)

    def test_unknown_vertex(self, diamond):
        index = CTLSIndex.build(diamond)
        with pytest.raises(IndexQueryError):
            index.query(5, 0)


class TestCTLSConstruction:
    def test_unknown_strategy(self, diamond):
        with pytest.raises(IndexBuildError):
            CTLSIndex.build(diamond, strategy="bogus")

    def test_pruning_reduces_shortcuts(self, road_graph):
        basic = CTLSIndex.build(road_graph, strategy="basic")
        pruned = CTLSIndex.build(road_graph, strategy="pruned")
        assert pruned.build_stats.shortcuts_added < basic.build_stats.shortcuts_added
        assert pruned.build_stats.shortcuts_pruned > 0

    def test_cutsearch_runs_fewer_boundary_searches(self, road_graph):
        basic = CTLSIndex.build(road_graph, strategy="basic")
        cutsearch = CTLSIndex.build(road_graph, strategy="cutsearch")
        assert cutsearch.build_stats.ssspc_runs < basic.build_stats.ssspc_runs

    def test_strategy_recorded(self, diamond):
        index = CTLSIndex.build(diamond, strategy="pruned")
        assert index.strategy == "pruned"
        assert index.build_stats.extras["strategy"] == "pruned"

    def test_deterministic_build(self, power_graph):
        a = CTLSIndex.build(power_graph, seed=3)
        b = CTLSIndex.build(power_graph, seed=3)
        assert a.labels.dist == b.labels.dist
        assert a.labels.count == b.labels.count

    def test_input_graph_not_modified(self, road_graph):
        m_before = road_graph.num_edges
        CTLSIndex.build(road_graph)
        assert road_graph.num_edges == m_before


class TestCTLSQueryShape:
    def test_lca_only_scan_is_narrow(self, road_graph, road_pairs):
        """CTLS visits at most one node block (width), not a root path."""
        index = CTLSIndex.build(road_graph)
        w = index.stats().width
        for s, t in road_pairs[:100]:
            stats = index.query_with_stats(s, t)
            assert stats.visited_labels <= w

    def test_visits_fewer_labels_than_ctl(self, road_graph, road_pairs):
        from repro.core.ctl import CTLIndex

        ctls = CTLSIndex.build(road_graph)
        ctl = CTLIndex.build(road_graph)
        total_ctls = sum(
            ctls.query_with_stats(s, t).visited_labels for s, t in road_pairs
        )
        total_ctl = sum(
            ctl.query_with_stats(s, t).visited_labels for s, t in road_pairs
        )
        assert total_ctls < total_ctl

"""The v4 mmap-native container: alignment, zero-copy parity, hardening.

v4 exists so ``load_index`` can hand the query kernel ``memoryview``s
straight over an ``mmap`` region — no parse, no copy.  That only works
if the on-disk layout is trustworthy, so these tests pin three
contracts:

* **layout** — every section offset is 8-byte *and* page aligned, and
  the file round-trips through older formats;
* **parity** — an mmap-loaded index answers ``query``/``query_batch``
  bit-identically to a heap-loaded one and to the v3 container;
* **hardening** — a hostile section table (overlaps, out-of-bounds,
  unaligned offsets) is rejected at load, and flipped bytes anywhere
  in the file (sections *or* alignment padding) are caught by
  ``verify``.
"""

import struct
import zlib
from array import array

import pytest

import repro.core.serialize as ser
from repro.baselines.tl import TLIndex
from repro.core.ctls import CTLSIndex
from repro.core.serialize import (
    describe_index,
    load_index,
    save_index,
    verify_index_file,
)
from repro.exceptions import IndexCorruptError, SerializationError
from repro.graph.generators import grid_graph, road_network


@pytest.fixture(scope="module")
def graph():
    return road_network(180, seed=5)


@pytest.fixture(scope="module")
def index(graph):
    return CTLSIndex.build(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    vertices = sorted(graph.vertices())
    return [
        (vertices[i], vertices[-1 - i]) for i in range(0, len(vertices), 3)
    ]


@pytest.fixture()
def v4_file(tmp_path, index):
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary")
    return path


# ----------------------------------------------------------------------
# tampering helpers
# ----------------------------------------------------------------------
def _layout(path):
    size = path.stat().st_size
    with open(path, "rb") as handle:
        return ser._read_v4_layout(handle, path, size)


def _rewrite_entry(path, name, *, offset=None, nbytes=None):
    """Rewrite one section-table entry and re-sign the header CRC.

    This forges a *consistently checksummed* but structurally hostile
    file — exactly what the loader's layout validation (not the CRCs)
    must catch.
    """
    data = bytearray(path.read_bytes())
    header, entries, _, _, _ = _layout(path)
    i = header["section_names"].index(name)
    old_offset, old_nbytes = entries[i]
    entry = (
        old_offset if offset is None else offset,
        old_nbytes if nbytes is None else nbytes,
    )
    (header_len,) = struct.unpack_from("<Q", data, 8)
    table_start = 16 + header_len
    struct.pack_into("<QQ", data, table_start + 16 * i, *entry)
    table_end = table_start + 16 * len(entries)
    footer_start = len(data) - ser._footer4_len(len(entries))
    struct.pack_into(
        "<I", data, footer_start, zlib.crc32(bytes(data[:table_end]))
    )
    path.write_bytes(bytes(data))


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
class TestLayout:
    def test_magic_and_footer(self, v4_file):
        raw = v4_file.read_bytes()
        assert raw[:8] == b"RSPCIDX4"
        assert raw[-8:] == b"RSPC4END"

    def test_every_section_page_aligned(self, v4_file):
        _, entries, _, _, _ = _layout(v4_file)
        for offset, _ in entries:
            assert offset % ser._ALIGN == 0
            assert offset % 8 == 0  # int64 views need this even if
            # _ALIGN were ever lowered

    def test_sections_cover_expected_names(self, v4_file):
        header, entries, _, _, _ = _layout(v4_file)
        assert header["section_names"] == [
            "vertices", "offsets", "dist", "count",
            "tree_parents", "tree_blocks", "tree_vertices",
        ]
        assert len(entries) == 7

    def test_tl_keeps_tree_in_header(self, tmp_path):
        tl = TLIndex.build(grid_graph(5, 5))
        path = tmp_path / "tl.bin"
        save_index(tl, path, format="binary")
        header, entries, _, _, _ = _layout(path)
        assert header["section_names"] == [
            "vertices", "offsets", "dist", "count",
        ]
        loaded = load_index(path)
        assert loaded.arena == tl.arena

    def test_resave_round_trips_through_older_formats(
        self, tmp_path, v4_file, index
    ):
        loaded = load_index(v4_file)  # mmap-backed views
        for fmt, version in (
            ("binary-v3", 3), ("binary-v2", 2), ("binary", 4),
        ):
            out = tmp_path / f"again-{fmt}.bin"
            save_index(loaded, out, format=fmt)
            again = load_index(out)
            assert again.arena == index.arena, fmt
            assert again.provenance["format_version"] == version


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
class TestParity:
    def test_mmap_load_is_zero_copy(self, v4_file):
        loaded = load_index(v4_file)
        assert loaded.arena.is_mapped

    def test_heap_load_is_not_mapped(self, v4_file):
        loaded = load_index(v4_file, mmap=False)
        assert not loaded.arena.is_mapped

    def test_mmap_heap_and_v3_bit_identical(
        self, tmp_path, v4_file, index, pairs
    ):
        v3_path = tmp_path / "index.v3.bin"
        save_index(index, v3_path, format="binary-v3")
        mapped = load_index(v4_file)
        heap = load_index(v4_file, mmap=False)
        v3 = load_index(v3_path)
        want = index.query_batch(pairs)
        assert mapped.query_batch(pairs) == want
        assert heap.query_batch(pairs) == want
        assert v3.query_batch(pairs) == want
        for source, target in pairs[:20]:
            assert mapped.query(source, target) == index.query(
                source, target
            )

    def test_describe_matches_full_stats(self, v4_file, index):
        summary = describe_index(v4_file)
        stats = index.stats()
        assert summary["lazy"] is True
        assert summary["format_version"] == 4
        assert summary["type"] == "CTLS"
        assert summary["num_vertices"] == stats.num_vertices
        assert summary["num_edges"] == stats.num_edges
        assert summary["tree_nodes"] == stats.tree_nodes
        assert summary["height"] == stats.height
        assert summary["width"] == stats.width
        assert summary["total_label_entries"] == stats.total_label_entries
        assert summary["size_bytes"] == stats.size_bytes
        assert summary["file_bytes"] == v4_file.stat().st_size


# ----------------------------------------------------------------------
# hardening
# ----------------------------------------------------------------------
class TestHardening:
    def test_overlapping_sections_rejected(self, v4_file):
        _, entries, _, _, _ = _layout(v4_file)
        _rewrite_entry(v4_file, "count", offset=entries[2][0])  # = dist
        with pytest.raises(IndexCorruptError, match="overlap"):
            load_index(v4_file)

    def test_out_of_bounds_section_rejected(self, v4_file):
        huge = v4_file.stat().st_size * 2
        _rewrite_entry(v4_file, "dist", offset=huge - huge % ser._ALIGN)
        with pytest.raises(IndexCorruptError, match="bounds|beyond"):
            load_index(v4_file)

    def test_unaligned_section_rejected(self, v4_file):
        _, entries, _, _, _ = _layout(v4_file)
        _rewrite_entry(v4_file, "dist", offset=entries[2][0] + 4)
        with pytest.raises(IndexCorruptError, match="align"):
            load_index(v4_file)

    def test_hostile_tables_also_fail_verify(self, v4_file):
        _, entries, _, _, _ = _layout(v4_file)
        _rewrite_entry(v4_file, "count", offset=entries[2][0])
        report = verify_index_file(v4_file)
        assert any(not ok for _, ok, _ in report)

    def test_section_bitflip_caught_by_verify(self, v4_file):
        _, entries, _, _, _ = _layout(v4_file)
        offset, nbytes = entries[2]  # dist
        data = bytearray(v4_file.read_bytes())
        data[offset + nbytes // 2] ^= 0xFF
        v4_file.write_bytes(bytes(data))
        # the default mmap open trusts section payloads (header CRC +
        # layout checks only) ...
        load_index(v4_file)
        # ... but both explicit verification paths must catch the flip
        with pytest.raises(IndexCorruptError, match="checksum"):
            load_index(v4_file, verify=True)
        report = {name: ok for name, ok, _ in verify_index_file(v4_file)}
        assert report["dist"] is False
        assert report["vertices"] is True

    def test_heap_load_always_checksums(self, v4_file):
        _, entries, _, _, _ = _layout(v4_file)
        offset, _ = entries[3]  # count
        data = bytearray(v4_file.read_bytes())
        data[offset] ^= 0x01
        v4_file.write_bytes(bytes(data))
        with pytest.raises(IndexCorruptError, match="checksum"):
            load_index(v4_file, mmap=False)

    def test_padding_bitflip_caught_by_verify(self, v4_file):
        _, entries, _, data_start, _ = _layout(v4_file)
        first = min(offset for offset, _ in entries)
        assert first > data_start, "fixture needs real padding"
        data = bytearray(v4_file.read_bytes())
        data[first - 1] ^= 0xFF
        v4_file.write_bytes(bytes(data))
        report = {name: ok for name, ok, _ in verify_index_file(v4_file)}
        assert report["padding"] is False
        # both verifying loads refuse it too — no byte escapes a check
        with pytest.raises(IndexCorruptError, match="padding"):
            load_index(v4_file, verify=True)
        with pytest.raises(IndexCorruptError, match="padding"):
            load_index(v4_file, mmap=False)

    def test_truncated_file_rejected(self, v4_file):
        data = v4_file.read_bytes()
        v4_file.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError):
            load_index(v4_file)

    def test_header_bitflip_rejected_on_plain_load(self, v4_file):
        data = bytearray(v4_file.read_bytes())
        data[20] ^= 0xFF  # somewhere inside the JSON header blob
        v4_file.write_bytes(bytes(data))
        with pytest.raises(SerializationError):
            load_index(v4_file)

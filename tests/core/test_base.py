"""Tests for the shared SPCIndex interface."""

from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph


class TestSPCIndexInterface:
    def test_query_many_matches_query(self):
        index = CTLSIndex.build(grid_graph(4, 4))
        pairs = [(0, 15), (3, 12), (7, 7)]
        batch = index.query_many(pairs)
        assert [tuple(r) for r in batch] == [
            tuple(index.query(s, t)) for s, t in pairs
        ]

    def test_distance_count_helpers(self):
        index = CTLSIndex.build(grid_graph(4, 4))
        assert index.distance(0, 15) == 6
        assert index.count(0, 15) == 20

    def test_repr_mentions_shape(self):
        index = CTLSIndex.build(grid_graph(3, 3))
        text = repr(index)
        assert "CTLSIndex" in text
        assert "n=9" in text

    def test_size_bytes_consistent_with_stats(self):
        index = CTLSIndex.build(grid_graph(4, 4))
        assert index.size_bytes() == index.stats().size_bytes

"""Tests for SPC-Graph construction (Algorithms 4-5) in isolation."""

import pytest

from repro.core.spc_graph_build import (
    BlockOutDist,
    build_spc_graph_basic,
    build_spc_graph_cutsearch,
)
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.graph.spc_graph import is_spc_graph_of
from repro.obs import Recorder
from repro.partition.balanced_cut import balanced_cut
from repro.search.dijkstra import ssspc
from repro.types import INF


def node_blocks(graph, cut):
    """Labels from each vertex to the cut, as BlockOutDist expects."""
    work = graph.copy()
    blocks = {v: [] for v in graph.vertices()}
    for c in sorted(cut):
        dist, _count = ssspc(work, c)
        for v in sorted(work.vertices()):
            blocks[v].append(dist.get(v, INF))
        work.remove_vertex(c)
    return blocks


@pytest.fixture
def partitioned_grid():
    g = grid_graph(5, 5)
    part = balanced_cut(g)
    assert not part.is_degenerate
    return g, part


class TestBlockOutDist:
    def test_min_over_cut(self):
        blocks = {0: [3, 10], 1: [4, 1]}
        out = BlockOutDist(blocks)
        assert out(0, 1) == 7  # min(3+4, 10+1)
        assert out(1, 0) == 7  # symmetric access

    def test_truncated_blocks(self):
        # Cut vertex with rank 0 has a single entry; pairs use the
        # shared prefix only.
        blocks = {0: [0], 1: [5, 9]}
        out = BlockOutDist(blocks)
        assert out(0, 1) == 5

    def test_inf_handling(self):
        blocks = {0: [INF], 1: [2]}
        out = BlockOutDist(blocks)
        assert out(0, 1) == INF


class TestBasicBuilder:
    def test_preserves_counts_left(self, partitioned_grid):
        g, part = partitioned_grid
        spc = build_spc_graph_basic(g, part.left, Recorder())
        assert is_spc_graph_of(spc, g)

    def test_preserves_counts_right(self, partitioned_grid):
        g, part = partitioned_grid
        spc = build_spc_graph_basic(g, part.right, Recorder())
        assert is_spc_graph_of(spc, g)

    def test_pruned_still_preserves(self, partitioned_grid):
        g, part = partitioned_grid
        blocks = node_blocks(g, part.cut)
        rec = Recorder()
        spc = build_spc_graph_basic(
            g, part.left, rec, through_cut=BlockOutDist(blocks), prune=True
        )
        assert is_spc_graph_of(spc, g)

    def test_no_border_returns_induced(self, two_components):
        rec = Recorder()
        spc = build_spc_graph_basic(two_components, [0, 1], rec)
        assert sorted(spc.vertices()) == [0, 1]
        assert rec.counter_value("build.shortcuts_added") == 0


class TestCutsearchBuilder:
    def test_preserves_counts_both_sides(self, partitioned_grid):
        g, part = partitioned_grid
        blocks = node_blocks(g, part.cut)
        for side in (part.left, part.right):
            spc = build_spc_graph_cutsearch(
                g, side, part.cut, BlockOutDist(blocks), Recorder()
            )
            assert sorted(spc.vertices()) == sorted(side)
            assert is_spc_graph_of(spc, g)

    def test_weighted_graph_preserved(self):
        g = Graph.from_edges(
            [
                (0, 1, 2), (1, 2, 2), (0, 3, 3), (3, 2, 1),
                (2, 4, 2), (4, 5, 1), (2, 5, 3), (5, 6, 2), (3, 6, 4),
            ]
        )
        part = balanced_cut(g, leaf_size=2)
        if part.is_degenerate:
            pytest.skip("degenerate partition on this toy graph")
        blocks = node_blocks(g, part.cut)
        for side in (part.left, part.right):
            if not side:
                continue
            spc = build_spc_graph_cutsearch(
                g, side, part.cut, BlockOutDist(blocks), Recorder()
            )
            assert is_spc_graph_of(spc, g)

"""Tests for dynamic edge-weight maintenance."""

import random

import pytest

from repro.core.dynamic import DynamicCTL, DynamicCTLS
from repro.exceptions import EdgeError
from repro.graph.generators import grid_graph, road_network
from repro.search.pairwise import spc_query


def assert_matches_oracle(dynamic, graph, pairs):
    for s, t in pairs:
        assert tuple(dynamic.query(s, t)) == tuple(spc_query(graph, s, t))


class TestDynamicCTL:
    def test_initial_queries(self, diamond):
        dyn = DynamicCTL(diamond)
        assert tuple(dyn.query(0, 3)) == (2, 2)

    def test_increase_breaks_tie(self, diamond):
        dyn = DynamicCTL(diamond)
        dyn.update_weight(0, 1, 5)  # route via 1 now longer
        assert tuple(dyn.query(0, 3)) == (2, 1)

    def test_decrease_creates_shorter_path(self, diamond):
        dyn = DynamicCTL(diamond)
        dyn.update_weight(0, 1, 0.5)
        assert tuple(dyn.query(0, 3)) == (1.5, 1)

    def test_missing_edge(self, diamond):
        dyn = DynamicCTL(diamond)
        with pytest.raises(EdgeError):
            dyn.update_weight(0, 3, 2)

    def test_non_positive_weight(self, diamond):
        dyn = DynamicCTL(diamond)
        with pytest.raises(EdgeError):
            dyn.update_weight(0, 1, 0)

    def test_noop_update(self, diamond):
        dyn = DynamicCTL(diamond)
        dyn.update_weight(0, 1, 1)
        assert dyn.last_repaired_nodes == 0

    def test_repair_is_local(self):
        g = road_network(300, seed=6)
        dyn = DynamicCTL(g)
        u, v, w, _c = next(iter(g.edges()))
        dyn.update_weight(u, v, w + 7)
        assert 0 < dyn.last_repaired_nodes <= dyn.index.tree.num_nodes

    def test_random_update_sequence_grid(self):
        g = grid_graph(5, 5)
        dyn = DynamicCTL(g)
        rng = random.Random(3)
        edges = sorted((u, v) for u, v, _w, _c in g.edges())
        pairs = [(rng.randrange(25), rng.randrange(25)) for _ in range(40)]
        for step in range(6):
            u, v = edges[rng.randrange(len(edges))]
            new_weight = rng.choice((1, 2, 3, 5))
            dyn.update_weight(u, v, new_weight)
            assert_matches_oracle(dyn, dyn.graph, pairs)

    def test_random_update_sequence_road(self):
        g = road_network(200, seed=8)
        dyn = DynamicCTL(g)
        rng = random.Random(4)
        edges = sorted((u, v) for u, v, _w, _c in g.edges())
        vertices = sorted(g.vertices())
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(30)
        ]
        for _step in range(4):
            u, v = edges[rng.randrange(len(edges))]
            old = dyn.graph.weight(u, v)
            new_weight = max(1, old + rng.choice((-20, -5, 5, 20)))
            dyn.update_weight(u, v, new_weight)
            assert_matches_oracle(dyn, dyn.graph, pairs)


class TestDynamicCTLBatches:
    def test_batch_matches_sequential(self):
        g = grid_graph(4, 4)
        batch = [(0, 1, 5), (5, 6, 2), (10, 11, 7)]
        batched = DynamicCTL(grid_graph(4, 4))
        assert batched.update_weights(batch) == batched.last_repaired_nodes
        sequential = DynamicCTL(g)
        for u, v, w in batch:
            sequential.update_weight(u, v, w)
        for s in range(16):
            for t in range(16):
                assert tuple(batched.query(s, t)) == tuple(
                    sequential.query(s, t)
                )

    def test_batch_dedupes_shared_ancestors(self):
        """Two updates under one LCA repair each node once, not twice."""
        dyn = DynamicCTL(grid_graph(4, 4))
        dyn.update_weights([(0, 1, 5), (1, 2, 5)])
        both = dyn.last_repaired_nodes
        dyn2 = DynamicCTL(grid_graph(4, 4))
        dyn2.update_weight(0, 1, 5)
        first = dyn2.last_repaired_nodes
        dyn2.update_weight(1, 2, 5)
        second = dyn2.last_repaired_nodes
        assert both < first + second

    def test_batch_last_write_wins(self, diamond):
        dyn = DynamicCTL(diamond)
        dyn.update_weights([(0, 1, 9), (0, 1, 5)])
        assert dyn.graph.weight(0, 1) == 5
        assert_matches_oracle(dyn, dyn.graph, [(0, 3), (1, 2)])

    def test_batch_of_noops_repairs_nothing(self, diamond):
        dyn = DynamicCTL(diamond)
        weights = [(u, v, w) for u, v, w, _c in diamond.edges()]
        assert dyn.update_weights(weights) == 0
        assert dyn.last_repaired_nodes == 0

    def test_batch_validates_before_writing(self, diamond):
        dyn = DynamicCTL(diamond)
        with pytest.raises(EdgeError):
            dyn.update_weights([(0, 1, 7), (0, 3, 1)])  # (0,3) missing
        assert dyn.graph.weight(0, 1) == 1  # first write never landed


class TestDynamicCTLS:
    def test_deferred_rebuild(self, diamond):
        dyn = DynamicCTLS(diamond)
        dyn.update_weight(0, 1, 3)
        dyn.update_weight(0, 2, 3)
        assert dyn.rebuilds == 0  # deferred
        assert tuple(dyn.query(0, 3)) == (4, 2)
        assert dyn.rebuilds == 1

    def test_noop_update_no_rebuild(self, diamond):
        dyn = DynamicCTLS(diamond)
        dyn.update_weight(0, 1, 1)
        dyn.query(0, 3)
        assert dyn.rebuilds == 0

    def test_refresh_idempotent(self, diamond):
        dyn = DynamicCTLS(diamond)
        dyn.update_weight(0, 1, 2)
        dyn.refresh()
        dyn.refresh()
        assert dyn.rebuilds == 1

    def test_matches_oracle_after_updates(self):
        g = grid_graph(4, 4)
        dyn = DynamicCTLS(g)
        rng = random.Random(5)
        edges = sorted((u, v) for u, v, _w, _c in g.edges())
        for _ in range(3):
            u, v = edges[rng.randrange(len(edges))]
            dyn.update_weight(u, v, rng.choice((1, 2, 4)))
        pairs = [(rng.randrange(16), rng.randrange(16)) for _ in range(40)]
        assert_matches_oracle(dyn, dyn.graph, pairs)

    def test_validation_errors(self, diamond):
        dyn = DynamicCTLS(diamond)
        with pytest.raises(EdgeError):
            dyn.update_weight(0, 3, 1)
        with pytest.raises(EdgeError):
            dyn.update_weight(0, 1, -2)

    def test_pending_updates_counter(self, diamond):
        dyn = DynamicCTLS(diamond)
        assert dyn.pending_updates == 0
        dyn.update_weight(0, 1, 3)
        dyn.update_weight(0, 2, 3)
        assert dyn.pending_updates == 2
        assert dyn.refresh() is True
        assert dyn.pending_updates == 0
        assert dyn.rebuilds == 1

    def test_refresh_without_pending_is_noop(self, diamond):
        dyn = DynamicCTLS(diamond)
        assert dyn.refresh() is False
        assert dyn.rebuilds == 0

    def test_refresh_force_rebuilds_clean_index(self, diamond):
        dyn = DynamicCTLS(diamond)
        assert dyn.refresh(force=True) is True
        assert dyn.rebuilds == 1
        assert tuple(dyn.query(0, 3)) == (2, 2)

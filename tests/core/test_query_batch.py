"""Tests for the batch query API across all three index types."""

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import IndexQueryError
from repro.types import INF

BUILDERS = [
    pytest.param(lambda g: CTLIndex.build(g), id="ctl"),
    pytest.param(lambda g: CTLSIndex.build(g), id="ctls"),
    pytest.param(lambda g: TLIndex.build(g), id="tl"),
]


@pytest.mark.parametrize("builder", BUILDERS)
class TestBatchParity:
    def test_matches_per_pair_queries(self, builder, road_graph, road_pairs):
        index = builder(road_graph)
        expected = [index.query(s, t) for s, t in road_pairs]
        assert index.query_batch(road_pairs) == expected

    def test_self_pairs(self, builder, small_grid):
        index = builder(small_grid)
        assert index.query_batch([(4, 4), (0, 0)]) == [
            index.query(4, 4),
            index.query(0, 0),
        ]
        assert index.query(4, 4).distance == 0

    def test_disconnected_pairs(self, builder, two_components):
        index = builder(two_components)
        results = index.query_batch([(0, 3), (0, 1), (2, 0)])
        assert results[0].distance == INF
        assert results[0].count == 0
        assert results[1].count == 1
        assert results[2].count == 0

    def test_unknown_vertex_raises(self, builder, small_grid):
        index = builder(small_grid)
        with pytest.raises(IndexQueryError):
            index.query_batch([(0, 15), (0, 999)])

    def test_empty_batch(self, builder, small_grid):
        index = builder(small_grid)
        assert index.query_batch([]) == []

    def test_dict_engine_agrees(self, builder, weighted_grid):
        index = builder(weighted_grid)
        vertices = sorted(weighted_grid.vertices())
        pairs = [(s, t) for s in vertices[:8] for t in vertices[-8:]]
        arena_results = index.query_batch(pairs)
        index.query_engine = "dict"
        assert index.query_batch(pairs) == arena_results

    def test_query_many_is_alias(self, builder, small_grid):
        index = builder(small_grid)
        pairs = [(0, 15), (3, 12)]
        assert index.query_many(pairs) == index.query_batch(pairs)


def test_batch_records_metrics(small_grid):
    import repro.obs as obs

    rec = obs.configure()
    try:
        index = CTLSIndex.build(small_grid)
        index.query_batch([(0, 15), (1, 14), (2, 2)])
        snapshot = rec.metrics_snapshot()
        assert snapshot["counters"]["query.batch.count"] == 1
        assert snapshot["counters"]["query.count"] == 3
        assert "query.batch.size" in snapshot["histograms"]
        assert "query.batch.seconds" in snapshot["histograms"]
    finally:
        obs.disable()

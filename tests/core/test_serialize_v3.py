"""Crash-safety and corruption-detection tests for the v3 container.

The v3 binary format carries per-section CRC32 checksums and a
total-length footer; these tests pin the two operational guarantees
built on top of it: *no* single-byte corruption or truncation loads
silently, and an interrupted ``save_index`` never clobbers the
previous file.
"""

import pytest

from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index, verify_index_file
from repro.exceptions import IndexCorruptError, SerializationError
from repro.graph.generators import grid_graph

SECTIONS = ("header", "vertices", "offsets", "dist", "count")


@pytest.fixture(scope="module")
def index():
    return CTLSIndex.build(grid_graph(5, 5))


@pytest.fixture
def v3_file(index, tmp_path):
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary-v3")
    return path


def pairs():
    return [(0, 24), (3, 21), (7, 7), (0, 1)]


def test_v3_magic_and_round_trip(v3_file, index):
    assert v3_file.read_bytes()[:8] == b"RSPCIDX3"
    loaded = load_index(v3_file)
    assert loaded.arena == index.arena
    assert loaded.query_batch(pairs()) == index.query_batch(pairs())


def test_v2_writes_and_still_loads(tmp_path, index):
    path = tmp_path / "index.v2"
    save_index(index, path, format="binary-v2")
    assert path.read_bytes()[:8] == b"RSPCIDX2"
    assert load_index(path).arena == index.arena


def test_single_byte_flips_always_detected(v3_file):
    # Property-style sweep: flip one byte at ~100 sampled offsets
    # (always including the last byte, i.e. the end marker) — every
    # flip must be rejected, and flips past the magic must surface as
    # a typed IndexCorruptError naming a real section.
    data = v3_file.read_bytes()
    step = max(1, len(data) // 97)
    offsets = sorted(set(range(0, len(data), step)) | {8, len(data) - 1})
    for offset in offsets:
        corrupted = bytearray(data)
        corrupted[offset] ^= 0x40
        v3_file.write_bytes(bytes(corrupted))
        with pytest.raises(SerializationError) as excinfo:
            load_index(v3_file)
        if offset >= 8:  # inside-magic flips fail format sniffing
            assert isinstance(excinfo.value, IndexCorruptError), (
                f"offset {offset}: expected a typed corruption error"
            )
            assert excinfo.value.section in SECTIONS + ("file", "footer"), (
                f"offset {offset}: bad section {excinfo.value.section!r}"
            )


@pytest.mark.parametrize("keep", [0.0, 0.1, 0.5, 0.95])
def test_truncated_v3_rejected(v3_file, keep):
    data = v3_file.read_bytes()
    v3_file.write_bytes(data[: int(len(data) * keep)])
    with pytest.raises(IndexCorruptError) as excinfo:
        load_index(v3_file)
    assert excinfo.value.path == str(v3_file)
    assert str(v3_file) in str(excinfo.value)


@pytest.mark.parametrize("keep", [0.0, 0.1, 0.5, 0.95])
def test_truncated_v2_rejected(tmp_path, index, keep):
    # Regression: the v2 loader (no checksums) must still catch every
    # truncation through its structural size checks.
    path = tmp_path / "index.v2"
    save_index(index, path, format="binary-v2")
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep)])
    with pytest.raises(IndexCorruptError) as excinfo:
        load_index(path)
    assert excinfo.value.path == str(path)


def test_zero_byte_file_is_typed_error(tmp_path):
    path = tmp_path / "empty.bin"
    path.write_bytes(b"")
    with pytest.raises(IndexCorruptError) as excinfo:
        load_index(path)
    assert excinfo.value.section == "file"
    assert str(path) in str(excinfo.value)


def test_truncation_error_reports_sizes(v3_file):
    data = v3_file.read_bytes()
    v3_file.write_bytes(data[: len(data) - 1])
    with pytest.raises(IndexCorruptError) as excinfo:
        load_index(v3_file)
    err = excinfo.value
    assert err.expected is not None and err.actual is not None


def test_interrupted_save_preserves_previous_file(
    v3_file, index, monkeypatch
):
    import repro.core.serialize as serialize

    before = v3_file.read_bytes()

    def crash(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(serialize.os, "replace", crash)
    with pytest.raises(OSError):
        save_index(index, v3_file, format="binary")
    monkeypatch.undo()
    assert v3_file.read_bytes() == before, "previous index was clobbered"
    leftovers = [
        p for p in v3_file.parent.iterdir() if ".tmp-" in p.name
    ]
    assert not leftovers, f"temp files left behind: {leftovers}"
    assert load_index(v3_file).arena == index.arena


def test_rejected_object_preserves_previous_file(v3_file):
    before = v3_file.read_bytes()
    with pytest.raises(SerializationError):
        save_index(object(), v3_file, format="binary")
    assert v3_file.read_bytes() == before


def test_save_overwrites_atomically(v3_file, index):
    # Re-saving over a live file goes through rename, so the target is
    # always either the old complete file or the new complete file.
    save_index(index, v3_file, format="binary")
    assert load_index(v3_file).arena == index.arena


def test_verify_reports_every_section_ok(v3_file):
    report = verify_index_file(v3_file)
    assert [name for name, _, _ in report] == list(SECTIONS)
    assert all(ok for _, ok, _ in report)


def test_verify_names_the_corrupt_section(v3_file):
    data = bytearray(v3_file.read_bytes())
    data[-60] ^= 0xFF  # inside the count section, ahead of the footer
    v3_file.write_bytes(bytes(data))
    report = verify_index_file(v3_file)
    assert [name for name, ok, _ in report if not ok] == ["count"]


def test_verify_handles_structurally_broken_files(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"RSPCIDX3 definitely not a real index")
    report = verify_index_file(path)
    assert report and not all(ok for _, ok, _ in report)

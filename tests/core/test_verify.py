"""Tests for post-build index verification."""

from repro.core.ctls import CTLSIndex
from repro.core.verify import verify_index
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph


class TestVerifyIndex:
    def test_correct_index_passes(self):
        g = grid_graph(4, 4)
        index = CTLSIndex.build(g)
        report = verify_index(index, g, num_samples=50)
        assert report.ok
        assert report.checked_pairs >= 50

    def test_detects_tampered_labels(self):
        g = grid_graph(4, 4)
        index = CTLSIndex.build(g)
        # Corrupt one label entry.
        victim = next(v for v in g.vertices() if index.labels.dist[v])
        index.labels.dist[victim][0] = 1
        index.labels.count[victim][0] = 99
        index.refresh_arena()  # queries scan the packed arena
        report = verify_index(index, g, num_samples=300)
        assert not report.ok
        assert report.mismatches

    def test_fail_fast_stops_early(self):
        g = grid_graph(4, 4)
        index = CTLSIndex.build(g)
        for v in g.vertices():
            if index.labels.dist[v]:
                index.labels.dist[v][0] = 1
                index.labels.count[v][0] = 99
        index.refresh_arena()  # queries scan the packed arena
        report = verify_index(index, g, num_samples=300, fail_fast=True)
        assert len(report.mismatches) == 1
        assert report.checked_pairs < 303

    def test_explicit_pairs(self):
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        report = verify_index(index, g, pairs=[(0, 8), (4, 4)])
        assert report.ok
        assert report.checked_pairs == 2

    def test_empty_graph(self):
        g = Graph()
        index = CTLSIndex.build(g)
        report = verify_index(index, g)
        assert report.ok
        assert report.checked_pairs == 0

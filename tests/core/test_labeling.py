"""Tests for the shared label-computation engines."""

import pytest

from repro.core.labeling import compute_node_labels
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.labels.store import LabelStore
from repro.obs import Recorder
from repro.partition.balanced_cut import balanced_cut
from repro.types import INF


@pytest.fixture
def node_case():
    graph = grid_graph(5, 5)
    part = balanced_cut(graph)
    assert not part.is_degenerate
    return graph, part


@pytest.mark.parametrize("engine", ["dict", "csr"])
class TestComputeNodeLabels:
    def test_appends_one_entry_per_cut_vertex(self, node_case, engine):
        graph, part = node_case
        labels = LabelStore(graph.vertices())
        rec = Recorder()
        compute_node_labels(graph, part.cut, labels, rec, engine=engine)
        for v in part.left + part.right:
            assert labels.label_length(v) == len(part.cut)
        # Cut vertices get truncated rows ending at themselves.
        for position, c in enumerate(part.cut):
            assert labels.label_length(c) == position + 1
            assert labels.entry(c, position) == (0, 1)
        assert rec.counter_value("build.ssspc_runs") == len(part.cut)
        assert rec.counter_value("build.label_entries") == labels.total_entries

    def test_blocks_mirror_label_distances(self, node_case, engine):
        graph, part = node_case
        labels = LabelStore(graph.vertices())
        blocks = compute_node_labels(
            graph, part.cut, labels, Recorder(), engine=engine
        )
        for v in graph.vertices():
            assert blocks[v] == labels.dist[v]

    def test_does_not_mutate_graph(self, node_case, engine):
        graph, part = node_case
        before_n, before_m = graph.num_vertices, graph.num_edges
        compute_node_labels(
            graph, part.cut, LabelStore(graph.vertices()), Recorder(),
            engine=engine,
        )
        assert (graph.num_vertices, graph.num_edges) == (before_n, before_m)

    def test_unreachable_padding(self, engine):
        graph = Graph.from_edges([(0, 1, 1), (2, 3, 1)])
        labels = LabelStore(graph.vertices())
        compute_node_labels(graph, (0, 2), labels, Recorder(), engine=engine)
        # Vertex 3 is unreachable from cut vertex 0: padded with INF.
        assert labels.dist[3][0] == INF
        assert labels.count[3][0] == 0
        assert labels.dist[3][1] == 1  # reachable from cut vertex 2


def test_engines_agree_exactly(node_case=None):
    graph = grid_graph(6, 6)
    part = balanced_cut(graph)
    results = {}
    for engine in ("dict", "csr"):
        labels = LabelStore(graph.vertices())
        blocks = compute_node_labels(
            graph, part.cut, labels, Recorder(), engine=engine
        )
        results[engine] = (labels.dist, labels.count, blocks)
    assert results["dict"] == results["csr"]

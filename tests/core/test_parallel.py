"""Tests for parallel CTLS construction (§IV-D.1)."""

import random

import pytest

from repro.core.ctls import CTLSIndex
from repro.core.parallel import build_ctls_parallel
from repro.exceptions import IndexBuildError
from repro.graph.generators import grid_graph, road_network
from repro.search.pairwise import spc_query


@pytest.fixture(scope="module")
def network():
    return road_network(300, seed=12)


class TestParallelBuild:
    def test_matches_oracle(self, network):
        index = build_ctls_parallel(network, workers=3)
        rng = random.Random(2)
        vertices = sorted(network.vertices())
        for _ in range(100):
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert tuple(index.query(s, t)) == tuple(
                spc_query(network, s, t)
            )

    def test_matches_sequential_results(self, network):
        parallel = build_ctls_parallel(network, workers=3)
        sequential = CTLSIndex.build(network)
        rng = random.Random(3)
        vertices = sorted(network.vertices())
        for _ in range(100):
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert tuple(parallel.query(s, t)) == tuple(sequential.query(s, t))

    def test_deterministic(self, network):
        a = build_ctls_parallel(network, workers=3, seed=4)
        b = build_ctls_parallel(network, workers=3, seed=4)
        assert a.labels.dist == b.labels.dist
        assert a.labels.count == b.labels.count

    def test_single_worker_is_sequential_path(self, network):
        index = build_ctls_parallel(network, workers=1)
        assert index.build_stats.extras["workers"] == 1
        rng = random.Random(5)
        vertices = sorted(network.vertices())
        for _ in range(50):
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert tuple(index.query(s, t)) == tuple(
                spc_query(network, s, t)
            )

    def test_small_graph_no_dispatch(self):
        g = grid_graph(3, 3)
        index = build_ctls_parallel(g, workers=8)
        for s in range(9):
            for t in range(9):
                assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    @pytest.mark.parametrize("strategy", ["basic", "pruned", "cutsearch"])
    def test_all_strategies(self, strategy):
        g = grid_graph(6, 6)
        index = build_ctls_parallel(g, workers=2, strategy=strategy)
        assert index.strategy == strategy
        for s in range(0, 36, 5):
            for t in range(0, 36, 7):
                assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_invalid_args(self, network):
        with pytest.raises(IndexBuildError):
            build_ctls_parallel(network, workers=0)
        with pytest.raises(IndexBuildError):
            build_ctls_parallel(network, strategy="nope")

    def test_tree_is_structurally_valid(self, network):
        index = build_ctls_parallel(network, workers=3)
        index.tree.validate()
        assert index.tree.num_vertices == network.num_vertices

"""Direct checks of the paper's structural lemmas on built indexes.

These are semantic guarantees the query algorithms rely on, tested
against the graph itself rather than through query answers:

* Lemma 3.2 — the common ancestors of two vertices in a CTL cut tree
  form a *vertex cut* between them.
* Definition 4.2 — every CTLS tree node is a *GSP cut*: removing the
  LCA node's vertices destroys (or lengthens past) all shortest paths
  between vertices of its two subtrees.
* Lemma 3.3 / 4.1 — label volume and visit bounds.
"""

import random

import pytest

from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph, road_network
from repro.search.dijkstra import dijkstra
from repro.types import INF


@pytest.fixture(scope="module")
def network():
    return road_network(350, seed=17)


def query_pairs(graph, count, seed=3):
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(count)
    ]


class TestLemma32CommonAncestorsAreCut:
    def test_removing_ca_disconnects(self, network):
        index = CTLIndex.build(network)
        tree = index.tree
        for s, t in query_pairs(network, 25):
            if s == t:
                continue
            lca = tree.lca_node(s, t)
            ca_vertices = set()
            for node in tree.ancestors(lca.index):
                ca_vertices.update(node.vertices)
            if s in ca_vertices or t in ca_vertices:
                continue  # endpoints inside the cut: nothing to check
            dist = dijkstra(network, s, excluded=ca_vertices)
            assert t not in dist, (s, t)


class TestDefinition42GspCut:
    def test_lca_node_cuts_all_shortest_paths(self, network):
        index = CTLSIndex.build(network)
        tree = index.tree
        checked = 0
        for s, t in query_pairs(network, 40):
            if s == t:
                continue
            lca = tree.lca_node(s, t)
            node_s = tree.node_of_vertex[s]
            node_t = tree.node_of_vertex[t]
            # The GSP property concerns pairs in *different* subtrees.
            if lca.index in (node_s, node_t):
                continue
            cut = set(lca.vertices)
            base = dijkstra(network, s, target=t).get(t, INF)
            without = dijkstra(network, s, excluded=cut, target=t).get(t, INF)
            assert without > base or without == INF, (s, t)
            checked += 1
        assert checked >= 5  # the sample must actually exercise the lemma

    def test_gsp_cut_on_unit_grid(self):
        graph = grid_graph(7, 7)
        index = CTLSIndex.build(graph)
        tree = index.tree
        for s, t in query_pairs(graph, 30, seed=8):
            if s == t:
                continue
            lca = tree.lca_node(s, t)
            if lca.index in (tree.node_of_vertex[s], tree.node_of_vertex[t]):
                continue
            cut = set(lca.vertices)
            base = dijkstra(graph, s, target=t).get(t, INF)
            without = dijkstra(graph, s, excluded=cut, target=t).get(t, INF)
            assert without > base or without == INF


class TestVolumeBounds:
    def test_lemma33_space_bound(self, network):
        index = CTLIndex.build(network)
        stats = index.stats()
        assert stats.total_label_entries <= stats.num_vertices * stats.height

    def test_lemma41_visit_bound(self, network):
        index = CTLSIndex.build(network)
        width = index.stats().width
        for s, t in query_pairs(network, 50, seed=5):
            assert index.query_with_stats(s, t).visited_labels <= width

    def test_label_lengths_equal_ancestor_counts(self, network):
        index = CTLIndex.build(network)
        for v in list(network.vertices())[::23]:
            ancestors = index.tree.ancestor_vertices(v)
            assert len(ancestors) == index.labels.label_length(v)

"""Tests for index save/load round trips."""

import json

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.exceptions import SerializationError
from repro.graph.generators import grid_graph


@pytest.fixture
def graph():
    return grid_graph(4, 4)


def pairs():
    return [(0, 15), (3, 12), (5, 5), (1, 14), (0, 1)]


@pytest.mark.parametrize(
    "builder",
    [
        lambda g: CTLIndex.build(g),
        lambda g: CTLSIndex.build(g, strategy="cutsearch"),
        lambda g: CTLSIndex.build(g, strategy="basic"),
        lambda g: TLIndex.build(g),
    ],
    ids=["ctl", "ctls-cutsearch", "ctls-basic", "tl"],
)
def test_round_trip(tmp_path, graph, builder):
    index = builder(graph)
    path = tmp_path / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert type(loaded) is type(index)
    for s, t in pairs():
        assert tuple(loaded.query(s, t)) == tuple(index.query(s, t))
    assert loaded.stats().total_label_entries == index.stats().total_label_entries


def test_round_trip_preserves_inf(tmp_path, two_components):
    index = CTLIndex.build(two_components)
    path = tmp_path / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.query(0, 3).count == 0


def test_round_trip_preserves_strategy(tmp_path, graph):
    index = CTLSIndex.build(graph, strategy="pruned")
    path = tmp_path / "index.json"
    save_index(index, path)
    assert load_index(path).strategy == "pruned"


def test_unknown_object_rejected(tmp_path):
    with pytest.raises(SerializationError):
        save_index(object(), tmp_path / "x.json")


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(SerializationError):
        load_index(path)


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "repro-spc-index", "version": 99}))
    with pytest.raises(SerializationError):
        load_index(path)


def test_unknown_type_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        json.dumps({"format": "repro-spc-index", "version": 1, "type": "XXX"})
    )
    with pytest.raises(SerializationError):
        load_index(path)


def test_big_counts_survive_json(tmp_path):
    g = grid_graph(8, 8)  # counts up to C(14,7) = 3432; json-safe ints
    index = CTLSIndex.build(g)
    path = tmp_path / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.query(0, 63).count == index.query(0, 63).count == 3432

"""Tests for index save/load round trips."""

import json

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.exceptions import SerializationError
from repro.graph.generators import grid_graph


@pytest.fixture
def graph():
    return grid_graph(4, 4)


def pairs():
    return [(0, 15), (3, 12), (5, 5), (1, 14), (0, 1)]


@pytest.mark.parametrize(
    "builder",
    [
        lambda g: CTLIndex.build(g),
        lambda g: CTLSIndex.build(g, strategy="cutsearch"),
        lambda g: CTLSIndex.build(g, strategy="basic"),
        lambda g: TLIndex.build(g),
    ],
    ids=["ctl", "ctls-cutsearch", "ctls-basic", "tl"],
)
def test_round_trip(tmp_path, graph, builder):
    index = builder(graph)
    path = tmp_path / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert type(loaded) is type(index)
    for s, t in pairs():
        assert tuple(loaded.query(s, t)) == tuple(index.query(s, t))
    assert loaded.stats().total_label_entries == index.stats().total_label_entries


def test_round_trip_preserves_inf(tmp_path, two_components):
    index = CTLIndex.build(two_components)
    path = tmp_path / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.query(0, 3).count == 0


def test_round_trip_preserves_strategy(tmp_path, graph):
    index = CTLSIndex.build(graph, strategy="pruned")
    path = tmp_path / "index.json"
    save_index(index, path)
    assert load_index(path).strategy == "pruned"


def test_unknown_object_rejected(tmp_path):
    with pytest.raises(SerializationError):
        save_index(object(), tmp_path / "x.json")


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(SerializationError):
        load_index(path)


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "repro-spc-index", "version": 99}))
    with pytest.raises(SerializationError):
        load_index(path)


def test_unknown_type_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        json.dumps({"format": "repro-spc-index", "version": 1, "type": "XXX"})
    )
    with pytest.raises(SerializationError):
        load_index(path)


def test_big_counts_survive_json(tmp_path):
    g = grid_graph(8, 8)  # counts up to C(14,7) = 3432; json-safe ints
    index = CTLSIndex.build(g)
    path = tmp_path / "index.json"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.query(0, 63).count == index.query(0, 63).count == 3432


# ----------------------------------------------------------------------
# v2 binary container
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "builder",
    [
        lambda g: CTLIndex.build(g),
        lambda g: CTLSIndex.build(g, strategy="cutsearch"),
        lambda g: TLIndex.build(g),
    ],
    ids=["ctl", "ctls", "tl"],
)
def test_binary_round_trip(tmp_path, graph, builder):
    index = builder(graph)
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary")
    loaded = load_index(path)
    assert type(loaded) is type(index)
    # The arena survives bit-for-bit, so queries scan identical buffers.
    assert loaded.arena == index.arena
    for s, t in pairs():
        assert loaded.query(s, t) == index.query(s, t)
    assert loaded.query_batch(pairs()) == index.query_batch(pairs())


@pytest.mark.parametrize(
    "builder",
    [
        lambda g: CTLIndex.build(g),
        lambda g: CTLSIndex.build(g, strategy="basic"),
        lambda g: TLIndex.build(g),
    ],
    ids=["ctl", "ctls", "tl"],
)
def test_binary_and_json_load_equal_indexes(tmp_path, graph, builder):
    index = builder(graph)
    json_path = tmp_path / "index.json"
    bin_path = tmp_path / "index.bin"
    save_index(index, json_path)
    save_index(index, bin_path, format="binary")
    from_json = load_index(json_path)
    from_binary = load_index(bin_path)
    assert type(from_json) is type(from_binary)
    assert from_json.arena == from_binary.arena
    assert from_json.query_batch(pairs()) == from_binary.query_batch(pairs())
    assert from_json.stats() == from_binary.stats()


def test_binary_preserves_inf(tmp_path, two_components):
    index = CTLIndex.build(two_components)
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary")
    loaded = load_index(path)
    assert loaded.query(0, 3).count == 0
    assert loaded.query(0, 1).count == 1


def test_binary_preserves_overflow_counts(tmp_path):
    # Label counts beyond 64 bits ride in the v2 header, not the raw
    # int64 buffer; they must come back exactly.
    from tests.labels.test_arena import diamond_chain

    g = diamond_chain(140)
    index = CTLSIndex.build(g)
    assert index.arena.overflow_positions  # the test needs the lane hot
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary")
    loaded = load_index(path)
    assert loaded.arena == index.arena
    assert loaded.query(0, 3 * 140).count == 2 ** 140


def test_binary_preserves_float_weights(tmp_path):
    from repro.graph.graph import Graph

    g = Graph()
    g.add_edge(0, 1, 0.5)
    g.add_edge(1, 2, 0.25)
    g.add_edge(0, 2, 0.75)
    index = CTLSIndex.build(g)
    assert index.arena.dist.typecode == "d"
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary")
    loaded = load_index(path)
    assert loaded.arena == index.arena
    assert loaded.query(0, 2) == index.query(0, 2)


def test_binary_round_trip_via_cli_roundabout(tmp_path, graph):
    # Saving a binary-loaded index back to JSON exercises the lazy
    # dict-of-lists rebuild from the arena.
    index = CTLSIndex.build(graph)
    bin_path = tmp_path / "index.bin"
    json_path = tmp_path / "again.json"
    save_index(index, bin_path, format="binary")
    loaded = load_index(bin_path)
    save_index(loaded, json_path)
    again = load_index(json_path)
    assert again.arena == index.arena


def test_unknown_save_format_rejected(tmp_path, graph):
    index = CTLSIndex.build(graph)
    with pytest.raises(SerializationError):
        save_index(index, tmp_path / "x.idx", format="pickle")


def test_binary_unknown_object_rejected(tmp_path):
    with pytest.raises(SerializationError):
        save_index(object(), tmp_path / "x.bin", format="binary")


def test_truncated_binary_rejected(tmp_path, graph):
    index = CTLSIndex.build(graph)
    path = tmp_path / "index.bin"
    save_index(index, path, format="binary")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 64])
    with pytest.raises(SerializationError):
        load_index(path)


def test_corrupt_binary_header_rejected(tmp_path):
    import struct

    path = tmp_path / "index.bin"
    path.write_bytes(b"RSPCIDX2" + struct.pack("<Q", 4) + b"\xff\xfe\x00\x01")
    with pytest.raises(SerializationError):
        load_index(path)

"""Tests for the CTL-Index (Algorithms 1-2)."""

import itertools

import pytest

from repro.core.ctl import CTLIndex
from repro.exceptions import IndexQueryError
from repro.graph.generators import cycle_graph, grid_graph, power_grid_network
from repro.search.pairwise import spc_query
from repro.types import INF


class TestCTLCorrectness:
    def test_exhaustive_small_grid(self):
        g = grid_graph(4, 3)
        index = CTLIndex.build(g)
        for s, t in itertools.product(range(12), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_cycle(self):
        g = cycle_graph(9)
        index = CTLIndex.build(g)
        for s, t in itertools.product(range(9), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_road_network(self, road_graph, road_pairs):
        index = CTLIndex.build(road_graph)
        for s, t in road_pairs:
            assert tuple(index.query(s, t)) == tuple(
                spc_query(road_graph, s, t)
            )

    def test_power_network(self, power_graph):
        index = CTLIndex.build(power_graph)
        vertices = sorted(power_graph.vertices())
        for s in vertices[::17]:
            for t in vertices[::29]:
                assert tuple(index.query(s, t)) == tuple(
                    spc_query(power_graph, s, t)
                )

    def test_disconnected(self, two_components):
        index = CTLIndex.build(two_components)
        result = index.query(0, 3)
        assert result.distance == INF and result.count == 0
        assert tuple(index.query(2, 3)) == (7, 1)

    def test_same_vertex(self, diamond):
        index = CTLIndex.build(diamond)
        assert tuple(index.query(3, 3)) == (0, 1)

    def test_unknown_vertex(self, diamond):
        index = CTLIndex.build(diamond)
        with pytest.raises(IndexQueryError):
            index.query(0, 42)
        with pytest.raises(IndexQueryError):
            index.query(42, 42)

    def test_beta_variations_stay_correct(self, weighted_grid):
        for beta in (0.1, 0.2, 0.4):
            index = CTLIndex.build(weighted_grid, beta=beta)
            for s, t in itertools.product(range(0, 25, 3), repeat=2):
                assert tuple(index.query(s, t)) == tuple(
                    spc_query(weighted_grid, s, t)
                )

    def test_leaf_size_variations_stay_correct(self, weighted_grid):
        for leaf_size in (1, 2, 8):
            index = CTLIndex.build(weighted_grid, leaf_size=leaf_size)
            for s, t in itertools.product(range(0, 25, 4), repeat=2):
                assert tuple(index.query(s, t)) == tuple(
                    spc_query(weighted_grid, s, t)
                )


class TestCTLStructure:
    def test_tree_covers_all_vertices(self, road_graph):
        index = CTLIndex.build(road_graph)
        assert index.tree.num_vertices == road_graph.num_vertices

    def test_label_lengths_match_tree(self, road_graph):
        index = CTLIndex.build(road_graph)
        for v in road_graph.vertices():
            assert index.labels.label_length(v) == index.tree.label_length(v)

    def test_stats(self, road_graph):
        index = CTLIndex.build(road_graph)
        st = index.stats()
        assert st.num_vertices == road_graph.num_vertices
        assert st.num_edges == road_graph.num_edges
        assert st.height == index.labels.max_label_length()
        assert st.size_bytes == 8 * st.total_label_entries
        assert index.build_stats.ssspc_runs >= st.tree_nodes

    def test_deterministic_build(self, power_graph):
        a = CTLIndex.build(power_graph, seed=5)
        b = CTLIndex.build(power_graph, seed=5)
        assert a.labels.dist == b.labels.dist
        assert a.labels.count == b.labels.count

    def test_visited_labels_bounded_by_height(self, road_graph, road_pairs):
        index = CTLIndex.build(road_graph)
        h = index.stats().height
        for s, t in road_pairs[:50]:
            stats = index.query_with_stats(s, t)
            assert 0 <= stats.visited_labels <= h

    def test_input_graph_not_modified(self, road_graph):
        before_n = road_graph.num_vertices
        before_m = road_graph.num_edges
        CTLIndex.build(road_graph)
        assert road_graph.num_vertices == before_n
        assert road_graph.num_edges == before_m

    def test_invalid_strategy_like_beta(self, diamond):
        with pytest.raises(ValueError):
            CTLIndex.build(diamond, beta=0.7)

"""Structural integrity of DynamicCTL repairs.

Beyond answer correctness (covered elsewhere), repairs must not disturb
the label-array geometry: lengths, alignment with the tree, and blocks
of *unaffected* nodes must be bit-identical.
"""

import random

from repro.core.dynamic import DynamicCTL
from repro.graph.generators import road_network


class TestRepairGeometry:
    def test_label_lengths_unchanged_by_updates(self):
        g = road_network(250, seed=10)
        dyn = DynamicCTL(g)
        before = {
            v: dyn.index.labels.label_length(v) for v in g.vertices()
        }
        rng = random.Random(1)
        edges = sorted((u, v) for u, v, _w, _c in g.edges())
        for _ in range(5):
            u, v = edges[rng.randrange(len(edges))]
            dyn.update_weight(u, v, dyn.graph.weight(u, v) + 13)
        after = {v: dyn.index.labels.label_length(v) for v in g.vertices()}
        assert before == after

    def test_unaffected_blocks_untouched(self):
        g = road_network(250, seed=10)
        dyn = DynamicCTL(g)
        tree = dyn.index.tree
        labels = dyn.index.labels

        u, v, w, _c = next(iter(g.edges()))
        affected = {node.index for node in dyn._affected_nodes(u, v)}

        # Snapshot one vertex whose root-path avoids deep affected nodes:
        # entries beyond the affected blocks must stay identical.
        snapshot = {
            vertex: (list(labels.dist[vertex]), list(labels.count[vertex]))
            for vertex in list(g.vertices())[:40]
        }
        dyn.update_weight(u, v, w + 29)

        for vertex, (dist_before, count_before) in snapshot.items():
            node = tree.node_of(vertex)
            for position in range(labels.label_length(vertex)):
                # Positions outside affected nodes' blocks are untouched.
                inside_affected = any(
                    tree.node(idx).block_start <= position < tree.node(idx).block_end
                    for idx in affected
                )
                if inside_affected:
                    continue
                assert labels.dist[vertex][position] == dist_before[position]
                assert labels.count[vertex][position] == count_before[position]

    def test_repair_count_matches_ancestor_path(self):
        g = road_network(250, seed=10)
        dyn = DynamicCTL(g)
        u, v, w, _c = next(iter(g.edges()))
        expected = len(dyn._affected_nodes(u, v))
        dyn.update_weight(u, v, w + 5)
        assert dyn.last_repaired_nodes == expected

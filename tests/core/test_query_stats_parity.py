"""query_with_stats must agree with query across every index type.

The two paths share ``_query_scan``, so they can only drift if a
subclass overrides one of them — this test pins the contract for
TL, CTL, and CTLS on one shared graph.
"""

import itertools

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.types import INF


@pytest.fixture(scope="module")
def shared_graph():
    return grid_graph(5, 5)


@pytest.fixture(scope="module")
def indexes(shared_graph):
    return {
        "TL": TLIndex.build(shared_graph),
        "CTL": CTLIndex.build(shared_graph),
        "CTLS": CTLSIndex.build(shared_graph),
    }


@pytest.mark.parametrize("name", ["TL", "CTL", "CTLS"])
class TestParity:
    def test_stats_match_query_on_all_pairs(self, indexes, shared_graph, name):
        index = indexes[name]
        vertices = sorted(shared_graph.vertices())
        for s, t in itertools.combinations(vertices, 2):
            result = index.query(s, t)
            stats = index.query_with_stats(s, t)
            assert stats.result.distance == result.distance
            assert stats.result.count == result.count

    def test_connected_pairs_visit_labels(self, indexes, shared_graph, name):
        index = indexes[name]
        vertices = sorted(shared_graph.vertices())
        for s, t in itertools.combinations(vertices, 2):
            stats = index.query_with_stats(s, t)
            assert stats.result.distance < INF
            assert stats.visited_labels >= 1

    def test_self_query(self, indexes, name):
        index = indexes[name]
        stats = index.query_with_stats(3, 3)
        assert stats.result.distance == 0
        assert stats.result.count == 1


@pytest.mark.parametrize("cls", [TLIndex, CTLIndex, CTLSIndex])
def test_disconnected_pair_parity(cls):
    g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1)])
    index = cls.build(g)
    result = index.query(0, 5)
    stats = index.query_with_stats(0, 5)
    assert result.distance == INF and result.count == 0
    assert stats.result == result

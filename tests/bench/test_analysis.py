"""Tests for index structure analysis."""

import pytest

from repro.bench.analysis import (
    average_label_length,
    label_length_histogram,
    tree_balance,
    tree_profile,
)
from repro.core.ctl import CTLIndex
from repro.graph.generators import grid_graph, road_network
from repro.tree.cut_tree import CutTree


def perfect_tree():
    tree = CutTree()
    root = tree.add_node([0])
    left = tree.add_node([1], parent=root)
    right = tree.add_node([2], parent=root)
    tree.add_node([3], parent=left)
    tree.add_node([4], parent=left)
    tree.add_node([5], parent=right)
    tree.add_node([6], parent=right)
    tree.finalize()
    return tree


def chain_tree():
    tree = CutTree()
    at = tree.add_node([0])
    for v in range(1, 5):
        at = tree.add_node([v], parent=at)
    tree.finalize()
    return tree


class TestTreeBalance:
    def test_perfect_tree_is_balanced(self):
        assert tree_balance(perfect_tree()) == 1.0

    def test_chain_is_unbalanced(self):
        assert tree_balance(chain_tree()) == 0.0

    def test_empty_tree(self):
        assert tree_balance(CutTree()) == 1.0

    def test_real_index_is_reasonably_balanced(self):
        index = CTLIndex.build(road_network(400, seed=2))
        balance = tree_balance(index.tree)
        assert 0.0 < balance <= 1.0


class TestTreeProfile:
    def test_fields(self):
        profile = tree_profile(perfect_tree())
        assert profile.num_nodes == 7
        assert profile.num_vertices == 7
        assert profile.max_depth == 2
        assert profile.avg_leaf_depth == 2.0
        assert profile.avg_node_size == 1.0
        assert profile.height == 3

    def test_empty(self):
        profile = tree_profile(CutTree())
        assert profile.num_nodes == 0
        assert profile.balance == 1.0


class TestLabelHistogram:
    def test_buckets(self):
        lengths = {0: 3, 1: 27, 2: 26, 3: 51}
        assert label_length_histogram(lengths, bucket=25) == {0: 1, 25: 2, 50: 1}

    def test_accepts_lists(self):
        lengths = {0: [1, 2, 3], 1: [1]}
        hist = label_length_histogram(lengths, bucket=2)
        assert hist == {0: 1, 2: 1}

    def test_average(self):
        assert average_label_length({0: 2, 1: 4}) == 3.0
        assert average_label_length({}) == 0.0
        assert average_label_length({0: [1, 1]}) == 2.0

    def test_on_real_index(self):
        index = CTLIndex.build(grid_graph(6, 6))
        avg = average_label_length(index.labels.dist)
        assert 1 <= avg <= index.stats().height

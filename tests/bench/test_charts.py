"""Tests for plain-text chart rendering."""

from repro.bench.charts import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_unit_suffix(self):
        out = bar_chart({"x": 1.0}, unit="us")
        assert "1.00us" in out


class TestGroupedBarChart:
    def test_groups_render(self):
        out = grouped_bar_chart(
            {"PWR": {"TL": 2.0, "CTLS": 1.0}, "NY": {"TL": 4.0, "CTLS": 2.0}}
        )
        assert "PWR:" in out and "NY:" in out
        assert out.count("CTLS") == 2

    def test_empty(self):
        assert grouped_bar_chart({}) == "(no data)"


class TestLineChart:
    def test_renders_series(self):
        out = line_chart(
            ["Q1", "Q2", "Q3"],
            {"TL": [3.0, 2.0, 1.0], "CTLS": [1.0, 2.0, 3.0]},
            height=5,
        )
        assert "*=TL" in out
        assert "o=CTLS" in out
        assert "3.00" in out and "1.00" in out

    def test_handles_missing_points(self):
        out = line_chart(["a", "b"], {"s": [1.0, None]}, height=3)
        assert "s" in out

    def test_empty(self):
        assert line_chart([], {}) == "(no data)"

    def test_collision_marker(self):
        out = line_chart(
            ["a", "b"], {"x": [1.0, 2.0], "y": [1.0, 3.0]}, height=4
        )
        assert "+" in out  # overlapping first column

"""Tests for workload generators."""

import pytest

from repro.bench.workloads import (
    distance_binned_queries,
    geometric_bin_edges,
    random_pairs,
)
from repro.exceptions import WorkloadError
from repro.graph.generators import road_network
from repro.graph.graph import Graph
from repro.search.pairwise import distance_query


class TestRandomPairs:
    def test_count_and_determinism(self, small_grid):
        pairs = random_pairs(small_grid, 50, seed=3)
        assert len(pairs) == 50
        assert pairs == random_pairs(small_grid, 50, seed=3)
        assert all(s != t for s, t in pairs)

    def test_allow_same(self, small_grid):
        pairs = random_pairs(small_grid, 200, seed=3, distinct=False)
        assert any(s == t for s, t in pairs)

    def test_empty_graph(self):
        with pytest.raises(WorkloadError):
            random_pairs(Graph(), 5)

    def test_single_vertex_distinct(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(WorkloadError):
            random_pairs(g, 5)


class TestGeometricEdges:
    def test_edges(self):
        edges = geometric_bin_edges(1, 1024, bins=10)
        assert len(edges) == 11
        assert edges[0] == 1
        assert edges[-1] == pytest.approx(1024)
        ratios = [edges[i + 1] / edges[i] for i in range(10)]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            geometric_bin_edges(0, 10)
        with pytest.raises(WorkloadError):
            geometric_bin_edges(10, 10)


class TestDistanceBinned:
    def test_bins_respect_ranges(self):
        g = road_network(400, seed=5)
        groups = distance_binned_queries(g, per_bin=20, seed=1, max_sources=200)
        assert len(groups) == 10
        for group in groups:
            assert group.low < group.high
            for s, t in group.pairs:
                d = distance_query(g, s, t)
                assert group.low < d <= group.high

    def test_bin_indices_are_one_based(self):
        g = road_network(300, seed=5)
        groups = distance_binned_queries(g, per_bin=5, seed=1, max_sources=60)
        assert [g_.index for g_ in groups] == list(range(1, 11))

    def test_deterministic(self):
        g = road_network(300, seed=5)
        a = distance_binned_queries(g, per_bin=10, seed=2, max_sources=50)
        b = distance_binned_queries(g, per_bin=10, seed=2, max_sources=50)
        assert a == b

    def test_middle_bins_fill(self):
        g = road_network(400, seed=5)
        groups = distance_binned_queries(g, per_bin=15, seed=1, max_sources=300)
        filled = [len(g_.pairs) for g_ in groups]
        # The mid-range bins of a road network always have pairs.
        assert max(filled) == 15
        assert sum(1 for f in filled if f == 15) >= 5

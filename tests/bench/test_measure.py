"""Tests for measurement helpers."""

import pytest

from repro.bench.measure import (
    ProfileResult,
    average_query_seconds,
    average_visited_labels,
    geometric_mean,
    profile_queries,
    run_queries,
    timed,
)
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph
from repro.obs import Recorder


@pytest.fixture(scope="module")
def index():
    return CTLSIndex.build(grid_graph(4, 4))


class TestMeasure:
    def test_run_queries_checksum(self, index):
        checksum = run_queries(index, [(0, 15), (1, 14)])
        assert checksum == run_queries(index, [(0, 15), (1, 14)])

    def test_average_query_seconds(self, index):
        avg = average_query_seconds(index, [(0, 15)] * 10)
        assert avg > 0
        assert average_query_seconds(index, []) == 0.0

    def test_average_visited_labels(self, index):
        avg = average_visited_labels(index, [(0, 15), (2, 13)])
        assert avg > 0
        assert average_visited_labels(index, []) == 0.0

    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_skips_non_positive(self):
        # Zeroed cells and missing measurements must not zero the mean.
        assert geometric_mean([1, 0]) == pytest.approx(1.0)
        assert geometric_mean([2, 8, 0, -3]) == pytest.approx(4.0)
        assert geometric_mean([0, -1]) == 0.0
        assert geometric_mean([0.0]) == 0.0


class TestProfileQueries:
    def test_records_every_query(self, index):
        pairs = [(0, 15), (1, 14), (2, 13)]
        result = profile_queries(index, pairs, repeats=2)
        assert isinstance(result, ProfileResult)
        assert result.num_queries == 3
        assert result.repeats == 2
        assert result.latency.count == 6
        assert result.total_seconds > 0

    def test_percentiles_ordered(self, index):
        result = profile_queries(index, [(0, 15)] * 20)
        assert 0 < result.p50 <= result.p95 <= result.p99
        assert result.p99 <= result.latency.max

    def test_checksum_matches_run_queries(self, index):
        pairs = [(0, 15), (1, 14)]
        assert profile_queries(index, pairs).checksum == run_queries(
            index, pairs
        )

    def test_uses_supplied_recorder(self, index):
        rec = Recorder()
        profile_queries(index, [(0, 15)], recorder=rec)
        hist = rec.histogram("profile.latency_seconds")
        assert hist is not None and hist.count == 1
        assert "profile.replay" in rec.span_summary()


class TestBatchHelpers:
    def test_run_queries_batch_checksum_matches_loop(self, index):
        pairs = [(0, 15), (1, 14), (5, 5), (2, 13)]
        from repro.bench.measure import run_queries_batch

        assert run_queries_batch(index, pairs) == run_queries(index, pairs)

    def test_batch_speedup_fields(self, index):
        from repro.bench.measure import batch_speedup

        pairs = [(0, 15), (1, 14), (2, 13)] * 10
        result = batch_speedup(index, pairs, repeats=2)
        assert result.num_queries == 30
        assert result.loop_seconds > 0
        assert result.batch_seconds > 0
        assert result.speedup == result.loop_seconds / result.batch_seconds

    def test_batch_speedup_rejects_disagreement(self, index):
        from repro.bench.measure import batch_speedup

        class Lying:
            def query(self, s, t):
                return index.query(s, t)

            def query_batch(self, pairs):
                return [index.query(t, t) for _s, t in pairs]

        with pytest.raises(AssertionError):
            batch_speedup(Lying(), [(0, 15)], repeats=1)

    def test_profile_queries_batched_same_checksum(self, index):
        pairs = [(0, 15), (1, 14), (2, 13), (3, 12), (4, 11)]
        per_pair = profile_queries(index, pairs)
        batched = profile_queries(index, pairs, batch_size=2)
        assert batched.checksum == per_pair.checksum
        assert batched.num_queries == 5
        assert batched.latency.count == 5

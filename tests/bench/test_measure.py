"""Tests for measurement helpers."""

import pytest

from repro.bench.measure import (
    average_query_seconds,
    average_visited_labels,
    geometric_mean,
    run_queries,
    timed,
)
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph


@pytest.fixture(scope="module")
def index():
    return CTLSIndex.build(grid_graph(4, 4))


class TestMeasure:
    def test_run_queries_checksum(self, index):
        checksum = run_queries(index, [(0, 15), (1, 14)])
        assert checksum == run_queries(index, [(0, 15), (1, 14)])

    def test_average_query_seconds(self, index):
        avg = average_query_seconds(index, [(0, 15)] * 10)
        assert avg > 0
        assert average_query_seconds(index, []) == 0.0

    def test_average_visited_labels(self, index):
        avg = average_visited_labels(index, [(0, 15), (2, 13)])
        assert avg > 0
        assert average_visited_labels(index, []) == 0.0

    def test_timed(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1, 0]) == 0.0

"""Tests for the experiment runners (small scale)."""

import pytest

from repro.bench.experiments import (
    IndexCache,
    exp1_query_time,
    exp2_visited_labels,
    exp3_query_distance,
    exp4_construction,
    exp5_index_size,
)


@pytest.fixture(scope="module")
def cache():
    return IndexCache()


DATASETS = ["PWR"]


class TestIndexCache:
    def test_caches_instances(self, cache):
        a = cache.get("PWR", "CTL")
        b = cache.get("PWR", "CTL")
        assert a is b

    def test_build_seconds_recorded(self, cache):
        assert cache.build_seconds("PWR", "CTL") > 0

    def test_unknown_algorithm(self, cache):
        with pytest.raises(ValueError):
            cache.get("PWR", "XXX")


class TestExperimentRunners:
    def test_exp1(self, cache):
        rows = exp1_query_time(datasets=DATASETS, num_queries=100, cache=cache)
        assert len(rows) == 3
        by_alg = {r.algorithm: r for r in rows}
        assert by_alg["TL"].speedup_over_tl == pytest.approx(1.0)
        assert all(r.avg_query_us > 0 for r in rows)

    def test_exp2(self, cache):
        rows = exp2_visited_labels(datasets=DATASETS, num_queries=100, cache=cache)
        by_alg = {r.algorithm: r for r in rows}
        # Fig. 9 shape: TL visits the most labels, CTLS the fewest.
        assert (
            by_alg["TL"].avg_visited_labels
            > by_alg["CTL"].avg_visited_labels
            > by_alg["CTLS"].avg_visited_labels
        )

    def test_exp3(self, cache):
        rows = exp3_query_distance(
            datasets=DATASETS, per_bin=10, cache=cache
        )
        assert rows
        assert {r.algorithm for r in rows} == {"TL", "CTL", "CTLS"}
        assert all(1 <= r.bin_index <= 10 for r in rows)
        assert all(r.num_pairs > 0 for r in rows)

    def test_exp4(self):
        rows = exp4_construction(
            datasets=DATASETS, algorithms=("CTL", "CTLS", "CTLS*")
        )
        by_alg = {r.algorithm: r for r in rows}
        assert by_alg["CTLS"].speedup_over_ctls == pytest.approx(1.0)
        assert by_alg["CTLS*"].speedup_over_ctls > 0
        assert by_alg["CTL"].speedup_over_ctls == 0.0
        assert all(r.build_seconds > 0 for r in rows)
        assert all(r.memory_estimate_bytes > 0 for r in rows)

    def test_exp4_skip_basic_on_large(self):
        rows = exp4_construction(
            datasets=DATASETS, algorithms=("CTLS", "CTLS*"), skip_basic_above=10
        )
        algorithms = {r.algorithm for r in rows}
        assert "CTLS" not in algorithms  # skipped (paper: OOM on USA)
        assert "CTLS*" in algorithms

    def test_exp5(self, cache):
        rows = exp5_index_size(datasets=DATASETS, cache=cache)
        by_alg = {r.algorithm: r for r in rows}
        assert by_alg["TL"].tl_ratio == pytest.approx(1.0)
        assert all(r.size_bytes > 0 for r in rows)

"""Tests for result rendering."""

from repro.bench.experiments import (
    ConstructionRow,
    IndexSizeRow,
    QueryTimeRow,
    VisitedLabelsRow,
)
from repro.bench.report import (
    format_table,
    render_exp1,
    render_exp2,
    render_exp4,
    render_exp5,
)


class TestFormatTable:
    def test_text_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_markdown(self):
        out = format_table(["x"], [[1]], markdown=True)
        assert out.splitlines()[0].startswith("| x")
        assert out.splitlines()[1].startswith("|-")


def _exp1_rows():
    return [
        QueryTimeRow("PWR", "TL", 10.0, 1.0),
        QueryTimeRow("PWR", "CTL", 5.0, 2.0),
        QueryTimeRow("PWR", "CTLS", 4.0, 2.5),
    ]


class TestRenderers:
    def test_exp1(self):
        out = render_exp1(_exp1_rows())
        assert "PWR" in out
        assert "2.50x" in out

    def test_exp2(self):
        rows = [
            VisitedLabelsRow("PWR", "TL", 100.0),
            VisitedLabelsRow("PWR", "CTL", 50.0),
            VisitedLabelsRow("PWR", "CTLS", 25.0),
        ]
        out = render_exp2(rows)
        assert "100.0" in out and "25.0" in out

    def test_exp4(self):
        rows = [
            ConstructionRow("PWR", "CTLS", 10.0, 1_000_000, 1.0),
            ConstructionRow("PWR", "CTLS*", 2.0, 900_000, 5.0),
            ConstructionRow("PWR", "TL", 3.0, 800_000, 0.0),
        ]
        out = render_exp4(rows)
        assert "5.00x" in out
        assert out.count("PWR") == 3

    def test_exp5(self):
        rows = [
            IndexSizeRow("PWR", "TL", 4_000_000, 1.0),
            IndexSizeRow("PWR", "CTL", 1_000_000, 4.0),
            IndexSizeRow("PWR", "CTLS", 2_000_000, 2.0),
        ]
        out = render_exp5(rows)
        assert "4.00x" in out
        assert "2.00x" in out

    def test_missing_cells_dash(self):
        out = render_exp2([VisitedLabelsRow("PWR", "TL", 1.0)])
        assert "-" in out

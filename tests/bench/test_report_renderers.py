"""Tests for the remaining report renderers (Table I, Exp-3)."""

from repro.bench.experiments import DistanceBinRow
from repro.bench.report import render_exp3, render_table1
from repro.datasets.stats import DatasetRow


class TestRenderTable1:
    def test_contains_paper_sizes(self):
        rows = [
            DatasetRow("PWR", "Power Network", 1300, 2000, 5300, 8271),
        ]
        out = render_table1(rows)
        assert "5,300" in out
        assert "Power Network" in out
        assert "3.08" in out  # avg degree

    def test_markdown_mode(self):
        rows = [DatasetRow("NY", "New York City", 10, 9, 100, 200)]
        out = render_table1(rows, markdown=True)
        assert out.splitlines()[0].startswith("| Name")


class TestRenderExp3:
    def test_rows_render_in_order(self):
        rows = [
            DistanceBinRow("PWR", "TL", 1, 1.0, 2.0, 100, 12.5),
            DistanceBinRow("PWR", "TL", 2, 2.0, 4.0, 100, 10.0),
            DistanceBinRow("PWR", "CTLS", 1, 1.0, 2.0, 100, 3.0),
        ]
        out = render_exp3(rows)
        lines = out.splitlines()
        assert "Q1" in lines[2]
        assert "Q2" in lines[3]
        assert "12.50" in out and "3.00" in out

    def test_empty(self):
        out = render_exp3([])
        assert "Dataset" in out

"""Tests for the perf-regression gate (``repro.bench.regression``)."""

import pytest

from repro.bench.regression import (
    DEFAULT_TOLERANCE,
    UNIT_TOLERANCES,
    MetricDelta,
    compare_directories,
    compare_payloads,
    render_report,
)
from repro.obs.perf import PerfSuite


def _payload(records):
    """A ``{suite: payload}`` map from ``(metric, samples, kwargs)``."""
    suite = PerfSuite("demo")
    for metric, samples, kwargs in records:
        suite.record(metric, samples, **kwargs)
    return {"demo": suite.payload()}


class TestComparePayloads:
    def test_identical_is_ok(self):
        current = _payload([("q", [10.0], {"unit": "us"})])
        report = compare_payloads(current, current)
        assert report.ok
        assert [d.status for d in report.deltas] == ["ok"]

    def test_double_latency_regresses(self):
        baseline = _payload([("q", [10.0], {"unit": "us"})])
        current = _payload([("q", [20.0], {"unit": "us"})])
        report = compare_payloads(current, baseline)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.metric == "q"
        assert delta.ratio == pytest.approx(2.0)

    def test_within_tolerance_is_ok(self):
        baseline = _payload([("q", [10.0], {"unit": "us"})])
        current = _payload([("q", [15.0], {"unit": "us"})])
        assert compare_payloads(current, baseline).ok

    def test_higher_direction_flips_the_test(self):
        baseline = _payload(
            [("qps", [1000.0], {"unit": "req/s", "direction": "higher"})]
        )
        worse = _payload(
            [("qps", [400.0], {"unit": "req/s", "direction": "higher"})]
        )
        better = _payload(
            [("qps", [2000.0], {"unit": "req/s", "direction": "higher"})]
        )
        assert not compare_payloads(worse, baseline).ok
        report = compare_payloads(better, baseline)
        assert report.ok
        assert report.deltas[0].status == "improved"

    def test_tight_tolerance_for_portable_units(self):
        # 8% more label entries must fail (tolerance 1.05), while the
        # same drift in a host-dependent unit passes (tolerance 1.75).
        baseline = _payload([
            ("entries", [1000], {"unit": "entries"}),
            ("latency", [1000.0], {"unit": "us"}),
        ])
        current = _payload([
            ("entries", [1080], {"unit": "entries"}),
            ("latency", [1080.0], {"unit": "us"}),
        ])
        report = compare_payloads(current, baseline)
        statuses = {d.metric: d.status for d in report.deltas}
        assert statuses["entries"] == "regression"
        assert statuses["latency"] == "ok"

    def test_explicit_record_tolerance_wins(self):
        baseline = _payload(
            [("q", [10.0], {"unit": "us", "tolerance": 1.05})]
        )
        current = _payload(
            [("q", [11.0], {"unit": "us", "tolerance": 1.05})]
        )
        assert not compare_payloads(current, baseline).ok

    def test_new_and_missing_metrics_do_not_fail(self):
        baseline = _payload([("old", [1.0], {"unit": "us"})])
        current = _payload([("new", [1.0], {"unit": "us"})])
        report = compare_payloads(current, baseline)
        assert report.ok
        statuses = {d.metric: d.status for d in report.deltas}
        assert statuses == {"new": "new", "old": "missing"}

    def test_portable_only_filters(self):
        baseline = _payload([
            ("entries", [1000], {"unit": "entries"}),
            ("latency", [10.0], {"unit": "us"}),
        ])
        current = _payload([
            ("entries", [1000], {"unit": "entries"}),
            ("latency", [99.0], {"unit": "us"}),
        ])
        report = compare_payloads(current, baseline, portable_only=True)
        assert report.ok
        assert [d.metric for d in report.deltas] == ["entries"]

    def test_datasets_compared_independently(self):
        baseline = _payload([
            ("q", [10.0], {"unit": "us", "dataset": "NY"}),
            ("q", [20.0], {"unit": "us", "dataset": "COL"}),
        ])
        current = _payload([
            ("q", [10.0], {"unit": "us", "dataset": "NY"}),
            ("q", [90.0], {"unit": "us", "dataset": "COL"}),
        ])
        report = compare_payloads(current, baseline)
        (bad,) = report.regressions
        assert bad.dataset == "COL"
        assert "COL" in bad.key


class TestTolerances:
    def test_default_below_the_synthetic_regression_bar(self):
        # The acceptance scenario injects a 2x slowdown; the default
        # tolerance must catch it.
        assert DEFAULT_TOLERANCE < 2.0

    def test_unit_tolerances_all_tighter_than_default(self):
        for unit, tolerance in UNIT_TOLERANCES.items():
            assert 1.0 < tolerance < DEFAULT_TOLERANCE, unit


class TestCompareDirectories:
    def test_directory_diff(self, tmp_path):
        current_dir = tmp_path / "current"
        baseline_dir = tmp_path / "baseline"
        current_dir.mkdir()
        baseline_dir.mkdir()
        suite = PerfSuite("demo")
        suite.record("q", [10.0], unit="us")
        suite.write(baseline_dir)
        slow = PerfSuite("demo")
        slow.record("q", [30.0], unit="us")
        slow.write(current_dir)
        report = compare_directories(current_dir, baseline_dir)
        assert not report.ok

    def test_suites_absent_from_current_are_skipped(self, tmp_path):
        # A quick-mode run produces only some suites; missing ones in
        # the current directory must not fail the gate.
        current_dir = tmp_path / "current"
        baseline_dir = tmp_path / "baseline"
        current_dir.mkdir()
        baseline_dir.mkdir()
        for name in ("one", "two"):
            suite = PerfSuite(name)
            suite.record("q", [10.0], unit="us")
            suite.write(baseline_dir)
        suite = PerfSuite("one")
        suite.record("q", [10.0], unit="us")
        suite.write(current_dir)
        report = compare_directories(current_dir, baseline_dir)
        assert report.ok


class TestRenderReport:
    def test_regressions_listed_first_and_summary_line(self):
        baseline = _payload([
            ("a", [10.0], {"unit": "us"}),
            ("b", [10.0], {"unit": "us"}),
        ])
        current = _payload([
            ("a", [10.0], {"unit": "us"}),
            ("b", [50.0], {"unit": "us"}),
        ])
        report = compare_payloads(current, baseline)
        text = render_report(report)
        assert "FAIL: 1 regression" in text
        lines = [l for l in text.splitlines() if l.startswith("demo:")]
        assert "demo:b" in lines[0]

    def test_clean_report_summary(self):
        payload = _payload([("a", [10.0], {"unit": "us"})])
        report = compare_payloads(payload, payload)
        assert "ok" in render_report(report)


class TestMetricDelta:
    def test_key_includes_dataset(self):
        delta = MetricDelta(
            suite="s", metric="m", dataset="NY", unit="us",
            direction="lower", baseline=1.0, current=2.0,
            tolerance=1.75, status="regression",
        )
        assert delta.key == "s:m[NY]"
        assert delta.ratio == pytest.approx(2.0)

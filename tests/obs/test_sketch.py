"""Property tests for the Space-Saving heavy-hitter sketch.

The sketch's contract (Metwally et al.): with capacity ``k`` over a
stream of ``N`` observations, every key's estimate over-counts by at
most ``N/k``, any key whose true count exceeds ``N/k`` is guaranteed
tracked, and sketches merge by the mergeable-summaries rule without
losing those bounds.  The tests drive both a zipf-skewed stream (the
workload the sketch is built for) and an adversarial near-uniform one
(the worst case for any counter-based summary), plus merge
associativity across 2-4 sketches.
"""

import random
from collections import Counter

import pytest

from repro.obs.sketch import SpaceSaving, pair_key


def zipf_stream(n, universe, seed, exponent=1.2):
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(universe)]
    return rng.choices(range(universe), weights=weights, k=n)


def uniform_stream(n, universe, seed):
    """Adversarial for a counter sketch: nothing is actually heavy."""
    rng = random.Random(seed)
    return [rng.randrange(universe) for _ in range(n)]


def check_bounds(sketch, truth):
    """The Space-Saving guarantees, asserted key by key."""
    n = sum(truth.values())
    bound = n / sketch.capacity
    tracked = {key for key, _, _ in sketch.top()}
    for key, _, error in sketch.top():
        assert error <= bound + 1e-9
    for key, true_count in truth.items():
        estimate, error = sketch.estimate(key)
        # Never an under-estimate; over-count bounded by the per-key
        # error (tracked) or the untracked bound (evicted).
        assert estimate >= true_count or key not in tracked
        if key in tracked:
            assert estimate - error <= true_count <= estimate
        else:
            assert true_count <= sketch.untracked_bound + 1e-9
        # Any key heavier than N/k is guaranteed to be tracked.
        if true_count > bound:
            assert key in tracked, (key, true_count, bound)


class TestErrorBound:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_zipf_stream(self, seed):
        stream = zipf_stream(20_000, 5_000, seed)
        sketch = SpaceSaving(64)
        for key in stream:
            sketch.offer(key)
        assert sketch.total == len(stream)
        check_bounds(sketch, Counter(stream))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_adversarial_uniform_stream(self, seed):
        stream = uniform_stream(20_000, 1_000, seed)
        sketch = SpaceSaving(64)
        for key in stream:
            sketch.offer(key)
        check_bounds(sketch, Counter(stream))

    def test_top_heavy_hitters_surface_in_order(self):
        stream = zipf_stream(30_000, 5_000, seed=7, exponent=1.5)
        sketch = SpaceSaving(128)
        for key in stream:
            sketch.offer(key)
        truth = Counter(stream)
        want = [key for key, _ in truth.most_common(5)]
        got = [key for key, _, _ in sketch.top(5)]
        # The true top-5 of a strongly skewed stream is unambiguous
        # at this capacity; order may differ only among near-ties.
        assert set(want) == set(got)
        assert got[0] == want[0]

    def test_offer_reports_prior_membership(self):
        sketch = SpaceSaving(2)
        assert sketch.offer("a") is False  # first sighting
        assert sketch.offer("a") is True
        sketch.offer("b")
        sketch.offer("c")  # evicts something
        tracked = {key for key, _, _ in sketch.top()}
        assert "c" in tracked and len(tracked) == 2


class TestMerge:
    def _sketches(self, parts, capacity=48):
        sketches = []
        for part in parts:
            sketch = SpaceSaving(capacity)
            for key in part:
                sketch.offer(key)
            sketches.append(sketch)
        return sketches

    @pytest.mark.parametrize("ways", [2, 3, 4])
    def test_merge_keeps_bounds_over_worker_shards(self, ways):
        stream = zipf_stream(24_000, 4_000, seed=11)
        shards = [stream[lane::ways] for lane in range(ways)]
        merged = SpaceSaving.merge(self._sketches(shards))
        assert merged.total == len(stream)
        truth = Counter(stream)
        n = len(stream)
        bound = n / merged.capacity
        tracked = {key for key, _, _ in merged.top()}
        for key, true_count in truth.items():
            estimate, error = merged.estimate(key)
            if key in tracked:
                assert estimate >= true_count
                # Merged per-key error inflates by each shard's own
                # bound: still O(ways * N/k), never unbounded.
                assert estimate - true_count <= ways * bound + 1e-9
            else:
                assert true_count <= merged.untracked_bound + 1e-9

    @pytest.mark.parametrize("ways", [3, 4])
    def test_merge_is_associative_up_to_the_error_bound(self, ways):
        stream = zipf_stream(16_000, 2_000, seed=23, exponent=1.4)
        shards = [stream[lane::ways] for lane in range(ways)]
        flat = SpaceSaving.merge(self._sketches(shards))
        left = self._sketches(shards)
        folded = left[0]
        for nxt in left[1:]:
            folded = SpaceSaving.merge([folded, nxt])
        assert folded.total == flat.total == len(stream)
        # Both groupings must report every true heavy hitter and agree
        # on each tracked key within the summed error bounds.
        truth = Counter(stream)
        bound = len(stream) / flat.capacity
        heavy = {k for k, c in truth.items() if c > ways * bound}
        flat_keys = {key for key, _, _ in flat.top()}
        folded_keys = {key for key, _, _ in folded.top()}
        assert heavy <= flat_keys
        assert heavy <= folded_keys
        for key in heavy:
            flat_est, flat_err = flat.estimate(key)
            folded_est, folded_err = folded.estimate(key)
            assert abs(flat_est - folded_est) <= flat_err + folded_err

    def test_merge_with_empty_sketch_is_identity_on_estimates(self):
        stream = zipf_stream(2_000, 200, seed=3)
        (sketch,) = self._sketches([stream])
        merged = SpaceSaving.merge([sketch, SpaceSaving(48)])
        for key, count, error in sketch.top(10):
            estimate, merged_error = merged.estimate(key)
            assert estimate == count
            assert merged_error >= error

    def test_round_trip_through_dict_then_merge(self):
        stream = zipf_stream(6_000, 600, seed=9)
        half = len(stream) // 2
        a, b = self._sketches([stream[:half], stream[half:]])
        revived = SpaceSaving.from_dict(a.to_dict())
        assert revived.total == a.total
        assert revived.top(10) == a.top(10)
        merged = SpaceSaving.merge([revived, b])
        assert merged.total == len(stream)

    def test_pair_keys_survive_json_round_trip(self):
        sketch = SpaceSaving(8)
        sketch.offer(pair_key(5, 2))
        sketch.offer(pair_key(2, 5))  # symmetric: same slot
        import json

        revived = SpaceSaving.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        estimate, _ = revived.estimate((2, 5))
        assert estimate == 2


class TestPairKey:
    def test_symmetric_and_ordered(self):
        assert pair_key(7, 3) == (3, 7) == pair_key(3, 7)
        assert pair_key(4, 4) == (4, 4)

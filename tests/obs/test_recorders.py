"""Tests for Recorder/NullRecorder and the module-level obs state."""

import pytest

import repro.obs as obs
from repro.obs import NULL_RECORDER, Recorder
from repro.obs.metrics import COUNT_BUCKETS, LATENCY_BUCKETS_SECONDS
from repro.obs.recorders import default_boundaries


@pytest.fixture(autouse=True)
def _reset_global_state():
    yield
    obs.disable()


class TestRecorder:
    def test_counters(self):
        rec = Recorder()
        rec.incr("a")
        rec.incr("a", 4)
        assert rec.counter_value("a") == 5
        assert rec.counter_value("missing") == 0

    def test_gauges(self):
        rec = Recorder()
        rec.gauge("g", 3)
        rec.gauge_max("g", 1)
        assert rec.gauge_value("g") == 3
        rec.gauge_max("g", 9)
        assert rec.gauge_value("g") == 9
        assert rec.gauge_value("missing") == 0

    def test_observe_creates_histogram_with_default_boundaries(self):
        rec = Recorder()
        rec.observe("query.latency_seconds", 0.001)
        rec.observe("partition.cut_size", 12)
        assert (rec.histogram("query.latency_seconds").boundaries
                == LATENCY_BUCKETS_SECONDS)
        assert rec.histogram("partition.cut_size").boundaries == COUNT_BUCKETS
        assert rec.histogram("missing") is None

    def test_observe_custom_boundaries(self):
        rec = Recorder()
        rec.observe("balance", 0.3, boundaries=(0.1, 0.5))
        assert rec.histogram("balance").boundaries == (0.1, 0.5)

    def test_span_records_event(self):
        rec = Recorder()
        with rec.span("work", depth=2) as span:
            span.set(result="ok")
        assert len(rec.trace_events) == 1
        event = rec.trace_events[0]
        assert event.name == "work"
        assert event.attrs == {"depth": 2, "result": "ok"}
        assert event.duration >= 0
        assert event.end == pytest.approx(event.start + event.duration)

    def test_nested_spans_contained_in_time(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        # Inner exits first; viewer nesting relies on time containment.
        inner, outer = rec.trace_events
        assert inner.name == "inner"
        assert outer.start <= inner.start
        assert inner.end <= outer.end + 1e-9

    def test_timer_observes_histogram(self):
        rec = Recorder()
        with rec.timer("step_seconds"):
            pass
        hist = rec.histogram("step_seconds")
        assert hist.count == 1
        assert not rec.trace_events  # timers make no trace events

    def test_metrics_snapshot(self):
        rec = Recorder()
        rec.incr("c", 2)
        rec.gauge("g", 7)
        rec.observe("h", 1.0)
        snap = rec.metrics_snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_span_summary(self):
        rec = Recorder()
        with rec.span("phase"):
            pass
        with rec.span("phase"):
            pass
        summary = rec.span_summary()
        assert summary["phase"]["count"] == 2


class TestForwarding:
    def test_everything_forwards_to_parent(self):
        parent = Recorder()
        child = Recorder(forward_to=parent)
        child.incr("c", 3)
        child.gauge("g", 1)
        child.gauge_max("g", 5)
        child.observe("h", 2.0)
        with child.span("s"):
            pass
        assert parent.counter_value("c") == 3
        assert parent.gauge_value("g") == 5
        assert parent.histogram("h").count == 1
        assert len(parent.trace_events) == 1
        # The child keeps its own copies too.
        assert child.counter_value("c") == 3
        assert len(child.trace_events) == 1


class TestNullRecorder:
    def test_records_nothing(self):
        NULL_RECORDER.incr("c")
        NULL_RECORDER.gauge("g", 1)
        NULL_RECORDER.gauge_max("g", 2)
        NULL_RECORDER.observe("h", 3.0)
        with NULL_RECORDER.span("s", k=1) as span:
            span.set(extra=2)
        with NULL_RECORDER.timer("t"):
            pass
        assert NULL_RECORDER.counter_value("c") == 0
        assert NULL_RECORDER.gauge_value("g") == 0
        assert NULL_RECORDER.histogram("h") is None
        assert NULL_RECORDER.trace_events == ()
        assert NULL_RECORDER.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert NULL_RECORDER.span_summary() == {}


class TestModuleState:
    def test_disabled_by_default(self):
        assert not obs.ENABLED
        assert obs.recorder() is NULL_RECORDER

    def test_configure_and_disable(self):
        rec = obs.configure()
        assert obs.ENABLED
        assert obs.recorder() is rec
        obs.disable()
        assert not obs.ENABLED
        assert obs.recorder() is NULL_RECORDER

    def test_configure_with_explicit_recorder(self):
        mine = Recorder()
        assert obs.configure(mine) is mine
        assert obs.recorder() is mine

    def test_module_span_targets_active_recorder(self):
        rec = obs.configure()
        with obs.span("top"):
            pass
        assert [e.name for e in rec.trace_events] == ["top"]

    def test_build_scope_forwards_only_when_enabled(self):
        scoped = obs.build_scope()
        scoped.incr("x")
        assert scoped.counter_value("x") == 1  # always a real recorder

        rec = obs.configure()
        forwarding = obs.build_scope()
        forwarding.incr("y", 2)
        assert rec.counter_value("y") == 2


class TestDefaultBoundaries:
    def test_seconds_suffix_gets_latency_buckets(self):
        assert default_boundaries("a.b_seconds") == LATENCY_BUCKETS_SECONDS
        assert default_boundaries("a.b") == COUNT_BUCKETS

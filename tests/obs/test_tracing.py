"""Tests for Chrome trace export, span summaries, and trace validation."""

import json

from repro.obs.tracing import (
    SpanEvent,
    chrome_trace_payload,
    span_summary,
    validate_chrome_trace,
    write_chrome_trace,
)


def events():
    return [
        SpanEvent("build", 0.0, 2.0, {"n": 25}),
        SpanEvent("build.node", 0.1, 0.5),
        SpanEvent("build.node", 0.7, 0.3),
    ]


class TestChromeTracePayload:
    def test_event_fields(self):
        payload = chrome_trace_payload(events(), pid=42)
        assert payload["displayTimeUnit"] == "ms"
        first = payload["traceEvents"][0]
        assert first == {
            "name": "build",
            "cat": "repro",
            "ph": "X",
            "ts": 0.0,
            "dur": 2_000_000.0,
            "pid": 42,
            "tid": 1,
            "args": {"n": 25},
        }

    def test_microsecond_conversion(self):
        payload = chrome_trace_payload(
            [SpanEvent("q", 1.5, 0.000123)], pid=1
        )
        event = payload["traceEvents"][0]
        assert event["ts"] == 1_500_000.0
        assert event["dur"] == 123.0

    def test_defaults_to_current_pid(self):
        import os

        payload = chrome_trace_payload(events())
        assert payload["traceEvents"][0]["pid"] == os.getpid()

    def test_validates_cleanly(self):
        assert validate_chrome_trace(chrome_trace_payload(events())) == []


class TestWriteChromeTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, events())
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert len(payload["traceEvents"]) == 3


class TestSpanSummary:
    def test_aggregates_per_name(self):
        summary = span_summary(events())
        assert list(summary) == ["build", "build.node"]
        node = summary["build.node"]
        assert node["count"] == 2
        assert node["total_seconds"] == 0.8
        assert node["min_seconds"] == 0.3
        assert node["max_seconds"] == 0.5

    def test_empty(self):
        assert span_summary([]) == {}


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) == ["payload is not a JSON object"]

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]

    def test_flags_bad_events(self):
        payload = {
            "traceEvents": [
                "not-an-object",
                {"name": "", "ph": "X", "ts": 0, "dur": 0, "pid": 1, "tid": 1},
                {"name": "ok", "ph": "B", "ts": -1, "dur": 0, "pid": 1,
                 "tid": "main", "args": []},
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("traceEvents[0]" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ph' is not 'X'" in p for p in problems)
        assert any("'ts' is not a non-negative number" in p for p in problems)
        assert any("'tid' is not an integer" in p for p in problems)
        assert any("'args' is not an object" in p for p in problems)

"""Tests for Chrome trace export, span summaries, and trace validation."""

import json

from repro.obs.tracing import (
    SpanEvent,
    chrome_trace_payload,
    span_summary,
    validate_chrome_trace,
    write_chrome_trace,
)


def events():
    return [
        SpanEvent("build", 0.0, 2.0, {"n": 25}),
        SpanEvent("build.node", 0.1, 0.5),
        SpanEvent("build.node", 0.7, 0.3),
    ]


class TestChromeTracePayload:
    def test_event_fields(self):
        payload = chrome_trace_payload(events(), pid=42)
        assert payload["displayTimeUnit"] == "ms"
        first = payload["traceEvents"][0]
        assert first == {
            "name": "build",
            "cat": "repro",
            "ph": "X",
            "ts": 0.0,
            "dur": 2_000_000.0,
            "pid": 42,
            "tid": 1,
            "args": {"n": 25},
        }

    def test_microsecond_conversion(self):
        payload = chrome_trace_payload(
            [SpanEvent("q", 1.5, 0.000123)], pid=1
        )
        event = payload["traceEvents"][0]
        assert event["ts"] == 1_500_000.0
        assert event["dur"] == 123.0

    def test_defaults_to_current_pid(self):
        import os

        payload = chrome_trace_payload(events())
        assert payload["traceEvents"][0]["pid"] == os.getpid()

    def test_validates_cleanly(self):
        assert validate_chrome_trace(chrome_trace_payload(events())) == []


class TestWriteChromeTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, events())
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert len(payload["traceEvents"]) == 3


class TestSpanSummary:
    def test_aggregates_per_name(self):
        summary = span_summary(events())
        assert list(summary) == ["build", "build.node"]
        node = summary["build.node"]
        assert node["count"] == 2
        assert node["total_seconds"] == 0.8
        assert node["min_seconds"] == 0.3
        assert node["max_seconds"] == 0.5

    def test_empty(self):
        assert span_summary([]) == {}


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) == ["payload is not a JSON object"]

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]

    def test_flags_bad_events(self):
        payload = {
            "traceEvents": [
                "not-an-object",
                {"name": "", "ph": "X", "ts": 0, "dur": 0, "pid": 1, "tid": 1},
                {"name": "ok", "ph": "B", "ts": -1, "dur": 0, "pid": 1,
                 "tid": "main", "args": []},
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("traceEvents[0]" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ph' is not 'X'" in p for p in problems)
        assert any("'ts' is not a non-negative number" in p for p in problems)
        assert any("'tid' is not an integer" in p for p in problems)
        assert any("'args' is not an object" in p for p in problems)


# ----------------------------------------------------------------------
# distributed tracing: context, collector, fragment merge
# ----------------------------------------------------------------------
from repro.obs.tracing import (  # noqa: E402
    CLOCK_EPOCH,
    SpanCollector,
    TraceContext,
    cross_process_links,
    merge_trace_fragments,
    new_span_id,
)


class TestTraceContext:
    def test_generate_round_trips_through_header(self):
        ctx = TraceContext.generate()
        parsed = TraceContext.parse(ctx.to_header())
        assert parsed == ctx
        assert parsed.sampled is True

    def test_unsampled_flag_round_trips(self):
        ctx = TraceContext.generate(sampled=False)
        assert ctx.to_header().endswith("-00")
        assert TraceContext.parse(ctx.to_header()).sampled is False

    def test_child_keeps_trace_id_with_fresh_span_id(self):
        ctx = TraceContext.generate()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.sampled is ctx.sampled

    def test_parse_accepts_the_w3c_example(self):
        header = (
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        )
        ctx = TraceContext.parse(header)
        assert ctx is not None
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert ctx.span_id == "00f067aa0ba902b7"
        assert ctx.sampled is True

    def test_parse_rejects_malformed_headers(self):
        good = TraceContext.generate()
        zero_trace = f"00-{'0' * 32}-{good.span_id}-01"
        zero_span = f"00-{good.trace_id}-{'0' * 16}-01"
        for bad in (
            None,
            "",
            "garbage",
            "00-short-00f067aa0ba902b7-01",
            f"ff-{good.trace_id}-{good.span_id}-01",  # version ff
            f"00-{good.trace_id.upper()}-{good.span_id}-01",  # uppercase
            zero_trace,
            zero_span,
            f"00-{good.trace_id}-{good.span_id}",  # missing flags
            f"00-{good.trace_id}-{good.span_id}-zz",
        ):
            assert TraceContext.parse(bad) is None, bad

    def test_new_span_ids_are_distinct_hex(self):
        ids = {new_span_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


class TestSpanCollector:
    def _record(self, collector, name="s", **kw):
        import time

        collector.record(
            name,
            trace_id=kw.get("trace_id", "a" * 32),
            span_id=kw.get("span_id", new_span_id()),
            parent_id=kw.get("parent_id"),
            start=kw.get("start", time.perf_counter()),
            duration=kw.get("duration", 0.001),
            attrs=kw.get("attrs"),
        )

    def test_ring_keeps_only_the_most_recent_spans(self):
        collector = SpanCollector(4)
        for i in range(10):
            self._record(collector, name=f"s{i}")
        assert len(collector) == 4
        assert collector.recorded == 10
        names = [s["name"] for s in collector.fragment()["spans"]]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_fragment_clear_drains_the_ring(self):
        collector = SpanCollector(8, role="worker-1")
        self._record(collector)
        fragment = collector.fragment(clear=True)
        assert fragment["role"] == "worker-1"
        assert len(fragment["spans"]) == 1
        assert len(collector) == 0
        assert collector.recorded == 1  # lifetime counter survives

    def test_start_is_rebased_onto_the_clock_epoch(self):
        import time

        collector = SpanCollector(8)
        now = time.perf_counter()
        self._record(collector, start=now)
        (span,) = collector.fragment()["spans"]
        assert abs(span["start"] - (now - CLOCK_EPOCH)) < 1e-9

    def test_capacity_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            SpanCollector(0)


def _fragment(pid, role, wall, spans):
    return {
        "pid": pid,
        "role": role,
        "wall_at_epoch": wall,
        "capacity": 64,
        "recorded": len(spans),
        "spans": spans,
    }


def _span(name, trace_id, span_id, parent_id=None, start=0.0,
          duration=0.001):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": start,
        "duration": duration,
        "tid": 1,
        "attrs": {},
    }


class TestMergeTraceFragments:
    def test_merged_payload_validates_with_metadata_events(self):
        trace_id = "b" * 32
        payload = merge_trace_fragments(
            [
                _fragment(
                    100, "router", 1000.0,
                    [_span("fleet.request", trace_id, "1" * 16)],
                ),
                _fragment(
                    200, "worker-0", 1000.0,
                    [_span("serve.request", trace_id, "2" * 16,
                           parent_id="1" * 16)],
                ),
            ]
        )
        assert validate_chrome_trace(payload) == []
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {
            "router", "worker-0"
        }

    def test_clock_offset_shifts_fragments_onto_one_timeline(self):
        # Worker anchor is 2.5 s later than the router's: a span at
        # the same local offset must land 2.5 s later after the merge.
        trace_id = "c" * 32
        payload = merge_trace_fragments(
            [
                _fragment(1, "router", 1000.0,
                          [_span("a", trace_id, "1" * 16, start=1.0)]),
                _fragment(2, "worker-0", 1002.5,
                          [_span("b", trace_id, "2" * 16, start=1.0)]),
            ]
        )
        spans = {
            e["name"]: e
            for e in payload["traceEvents"]
            if e["ph"] == "X"
        }
        assert spans["b"]["ts"] - spans["a"]["ts"] == 2_500_000.0

    def test_cross_process_links_resolved_by_span_ids(self):
        trace_id = "d" * 32
        payload = merge_trace_fragments(
            [
                _fragment(
                    1, "router", 1000.0,
                    [_span("fleet.request", trace_id, "a1" * 8)],
                ),
                _fragment(
                    2, "worker-0", 1000.0,
                    [
                        _span("serve.request", trace_id, "b2" * 8,
                              parent_id="a1" * 8),
                        # Same-process child: not a cross-process link.
                        _span("serve.scan_batch", trace_id, "c3" * 8,
                              parent_id="b2" * 8),
                    ],
                ),
            ]
        )
        links = cross_process_links(payload)
        assert len(links) == 1
        parent, child = links[0]
        assert parent["name"] == "fleet.request"
        assert child["name"] == "serve.request"
        assert parent["pid"] != child["pid"]

    def test_empty_and_malformed_fragments_are_skipped(self):
        assert merge_trace_fragments([]) == {
            "displayTimeUnit": "ms",
            "traceEvents": [],
        }
        payload = merge_trace_fragments(
            ["nonsense", {"pid": 3}, _fragment(1, "router", 5.0, [])]
        )
        assert validate_chrome_trace(payload) == []
        assert len(payload["traceEvents"]) == 1  # just the metadata

"""Tests for structured request logging and deterministic sampling."""

import io
import json

import pytest

from repro.obs.logging import (
    JsonLinesWriter,
    RequestIdGenerator,
    RequestLog,
    Sampler,
)


def _records(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRequestIdGenerator:
    def test_ids_are_prefixed_and_monotonic(self):
        gen = RequestIdGenerator(prefix="abcd")
        first, second = gen.next_id(), gen.next_id()
        assert first == "abcd-000001"
        assert second == "abcd-000002"

    def test_random_prefixes_differ(self):
        # 4 bytes of urandom: a collision here means the generator is
        # not actually randomising its prefix.
        prefixes = {RequestIdGenerator().prefix for _ in range(16)}
        assert len(prefixes) > 1
        assert all(len(p) == 8 for p in prefixes)


class TestSampler:
    def test_every_one_keeps_everything(self):
        sampler = Sampler(1)
        assert all(sampler.keep() for _ in range(100))

    def test_deterministic_under_seed(self):
        # The exact keep/drop sequence is a function of the seed alone
        # — replaying a workload replays the sampling decisions.
        first = Sampler(4, seed=42)
        second = Sampler(4, seed=42)
        seq_a = [first.keep() for _ in range(200)]
        seq_b = [second.keep() for _ in range(200)]
        assert seq_a == seq_b
        other_seed = [Sampler(4, seed=43).keep() for _ in range(200)]
        assert seq_a != other_seed

    def test_sampling_rate_is_roughly_one_in_n(self):
        sampler = Sampler(10, seed=0)
        kept = sum(sampler.keep() for _ in range(5000))
        assert 300 < kept < 700  # ~500 expected

    def test_matches_randrange_stream(self):
        # The inlined getrandbits rejection loop must reproduce
        # ``Random(seed).randrange(every) == 0`` bit for bit — logs
        # sampled by older builds replay identically under new ones.
        import random

        for every in (2, 3, 10, 16, 100):
            for seed in (0, 7):
                reference = random.Random(seed)
                sampler = Sampler(every, seed)
                assert [sampler.keep() for _ in range(2000)] == [
                    reference.randrange(every) == 0 for _ in range(2000)
                ], (every, seed)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Sampler(-1)


class TestJsonLinesWriter:
    def test_one_compact_line_per_record(self):
        stream = io.StringIO()
        writer = JsonLinesWriter(stream)
        writer.write({"b": 2, "a": 1})
        writer.write({"x": "y"})
        lines = stream.getvalue().splitlines()
        assert lines == ['{"a":1,"b":2}', '{"x":"y"}']
        assert writer.records_written == 2

    def test_batched_block_flushes_once(self):
        flushes = []

        class CountingStream(io.StringIO):
            def flush(self):
                flushes.append(self.getvalue())
                super().flush()

        stream = CountingStream()
        writer = JsonLinesWriter(stream)
        with writer.batched():
            writer.write({"a": 1})
            writer.write({"b": 2})
            assert stream.getvalue() == ""  # nothing on the wire yet
        assert len(flushes) == 1
        assert stream.getvalue().splitlines() == ['{"a":1}', '{"b":2}']
        assert writer.records_written == 2

    def test_batched_is_reentrant(self):
        stream = io.StringIO()
        writer = JsonLinesWriter(stream)
        with writer.batched():
            writer.write({"outer": 1})
            with writer.batched():  # inner block must not flush
                writer.write({"inner": 2})
            assert stream.getvalue() == ""
        assert len(stream.getvalue().splitlines()) == 2

    def test_empty_batched_block_writes_nothing(self):
        stream = io.StringIO()
        writer = JsonLinesWriter(stream)
        with writer.batched():
            pass
        assert stream.getvalue() == ""


class TestRequestLog:
    def _log(self, stream, **kwargs):
        kwargs.setdefault("clock", lambda: 1000.0)
        return RequestLog(stream, **kwargs)

    def test_access_record_fields(self):
        stream = io.StringIO()
        log = self._log(stream, slow_ms=100.0)
        log.log_request(
            request_id="abcd-000001",
            method="GET",
            path="/query",
            status=200,
            latency_s=0.002,
            source=7,
            target=9,
            cache_hit=False,
            batch_size=16,
            queue_wait_s=0.0005,
            scan_s=0.001,
        )
        (record,) = _records(stream)
        assert record["event"] == "access"
        assert record["request_id"] == "abcd-000001"
        assert record["status"] == 200
        assert record["latency_ms"] == 2.0
        assert record["batch_size"] == 16
        assert record["queue_wait_ms"] == 0.5
        assert record["scan_ms"] == 1.0
        assert record["ts"] == 1000.0
        assert "error" not in record  # absent fields are omitted

    def test_slow_query_gets_second_record(self):
        stream = io.StringIO()
        log = self._log(stream, slow_ms=10.0)
        log.log_request(
            request_id="r1", method="GET", path="/query",
            status=200, latency_s=0.5,
        )
        records = _records(stream)
        assert [r["event"] for r in records] == ["access", "slow_query"]
        assert records[1]["request_id"] == "r1"
        assert records[1]["slow_ms_threshold"] == 10.0
        assert log.slow_records == 1

    def test_zero_threshold_disables_slow_log(self):
        stream = io.StringIO()
        log = self._log(stream, slow_ms=0.0)
        log.log_request(
            request_id="r1", method="GET", path="/query",
            status=200, latency_s=9.9,
        )
        assert [r["event"] for r in _records(stream)] == ["access"]

    def test_sampling_skips_only_fast_successes(self):
        # sample_every=high: fast 200s are dropped, but slow requests
        # and errors always land in the log.
        stream = io.StringIO()
        log = self._log(stream, slow_ms=10.0, sample_every=10**9, seed=1)
        log.log_request(
            request_id="fast", method="GET", path="/query",
            status=200, latency_s=0.001,
        )
        log.log_request(
            request_id="slow", method="GET", path="/query",
            status=200, latency_s=0.5,
        )
        log.log_request(
            request_id="failed", method="GET", path="/query",
            status=504, latency_s=0.001, error="deadline exceeded",
        )
        ids = [r["request_id"] for r in _records(stream)]
        assert "fast" not in ids
        assert "slow" in ids and "failed" in ids
        assert log.sampled_out == 1

    def test_sampled_stream_is_deterministic(self):
        def run(seed):
            stream = io.StringIO()
            log = self._log(stream, sample_every=3, seed=seed)
            for i in range(60):
                log.log_request(
                    request_id=f"r{i}", method="GET", path="/query",
                    status=200, latency_s=0.001,
                )
            return [r["request_id"] for r in _records(stream)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_log_batch_matches_per_record_calls(self):
        # One log_batch call must produce the same records — same
        # sampling decisions, same slow/error handling — as the
        # equivalent sequence of log_request calls.
        def records(batched):
            stream = io.StringIO()
            log = self._log(stream, slow_ms=10.0, sample_every=3, seed=5)
            meta = {"batch_size": 4, "queue_wait_s": 0.0002,
                    "scan_s": 0.0015}
            rows = [
                (f"r{i}", "GET", "/query", 200, 0.001, 1, 2, None,
                 meta, None, None, None)
                for i in range(30)
            ]
            rows.append(
                ("slow", "GET", "/query", 200, 0.5, 3, 4, None, meta,
                 17, None, None)
            )
            rows.append(
                ("failed", "GET", "/query", 504, 0.001, 5, 6, None,
                 None, None, "deadline exceeded", None)
            )
            if batched:
                log.log_batch(rows)
            else:
                for (rid, method, path, status, latency_s, source,
                     target, cache_hit, m, labels, error, tid) in rows:
                    log.log_request(
                        request_id=rid, method=method, path=path,
                        status=status, latency_s=latency_s,
                        source=source, target=target,
                        cache_hit=cache_hit,
                        batch_size=m.get("batch_size") if m else None,
                        queue_wait_s=(
                            m.get("queue_wait_s") if m else None
                        ),
                        scan_s=m.get("scan_s") if m else None,
                        labels_scanned=labels, error=error,
                        trace_id=tid,
                    )
            return _records(stream), log.sampled_out

        batched, batched_dropped = records(batched=True)
        per_call, per_call_dropped = records(batched=False)
        assert batched == per_call
        assert batched_dropped == per_call_dropped > 0
        events = [r["event"] for r in batched]
        assert "slow_query" in events

    def test_log_batch_presampled_skips_sampling(self):
        # presampled=True: the caller already consulted the sampler —
        # every record passed in is written and the sampler's stream
        # is not consumed again.
        stream = io.StringIO()
        log = self._log(stream, sample_every=2, seed=0)
        rows = [
            (f"r{i}", "GET", "/query", 200, 0.001, 1, 2, None, None,
             None, None, None)
            for i in range(10)
        ]
        log.log_batch(rows, presampled=True)
        assert len(_records(stream)) == 10
        assert log.sampled_out == 0

    def test_server_lifecycle_records(self):
        stream = io.StringIO()
        log = self._log(stream)
        log.log_server("start", port=8355)
        (record,) = _records(stream)
        assert record["event"] == "server"
        assert record["what"] == "start"
        assert record["port"] == 8355

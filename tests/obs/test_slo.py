"""Tests for the rolling SLO window and readiness policy."""

import pytest

from repro.obs.slo import SloPolicy, SloWindow


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _window(window_s=10, now=1000.0):
    clock = FakeClock(now)
    return SloWindow(window_s, clock=clock), clock


class TestSloWindow:
    def test_empty_snapshot_has_null_statistics(self):
        window, _ = _window()
        snap = window.snapshot()
        assert snap["requests"] == 0
        assert snap["error_rate"] is None
        assert snap["shed_rate"] is None
        assert snap["cache_hit_rate"] is None
        latency = snap["latency_ms"]
        assert latency["p50"] is None and latency["p99"] is None
        assert latency["mean"] is None and latency["max"] is None

    def test_counts_and_rates(self):
        window, _ = _window()
        for _ in range(8):
            window.record(0.001, cache_hit=False)
        window.record(0.002, error=True)
        window.record(0.003, shed=True, cache_hit=True)
        snap = window.snapshot()
        assert snap["requests"] == 10
        assert snap["errors"] == 1
        assert snap["error_rate"] == pytest.approx(0.1)
        assert snap["shed_rate"] == pytest.approx(0.1)
        assert snap["cache_hit_rate"] == pytest.approx(1 / 9)
        assert snap["qps"] == pytest.approx(1.0)  # 10 req / 10 s window

    def test_latency_percentiles_from_merged_seconds(self):
        window, clock = _window(window_s=30)
        # Spread observations across several seconds: the snapshot must
        # merge the per-second histograms, not read just the newest.
        for second in range(5):
            for _ in range(20):
                window.record(0.001)
            clock.advance(1)
        window.record(1.0)  # one slow outlier
        snap = window.snapshot()
        assert snap["requests"] == 101
        assert snap["latency_ms"]["p50"] <= 2.5
        assert snap["latency_ms"]["max"] >= 1000.0

    def test_old_seconds_age_out(self):
        window, clock = _window(window_s=5)
        window.record(0.001, error=True)
        assert window.snapshot()["requests"] == 1
        clock.advance(6)  # past the window horizon
        snap = window.snapshot()
        assert snap["requests"] == 0
        assert snap["error_rate"] is None
        # Lifetime counter keeps the full history.
        assert window.total_requests == 1

    def test_ring_slot_reuse_resets_stale_data(self):
        window, clock = _window(window_s=3)
        window.record(0.001)
        window.record(0.001)
        clock.advance(3)  # same ring slot, new epoch
        window.record(0.5)
        snap = window.snapshot()
        assert snap["requests"] == 1  # old slot data discarded

    def test_queue_depth_peak(self):
        window, _ = _window()
        window.record(0.001, queue_depth=2)
        window.record(0.001, queue_depth=9)
        window.record(0.001, queue_depth=4)
        assert window.snapshot()["queue_depth_max"] == 9

    def test_window_length_validation(self):
        with pytest.raises(ValueError):
            SloWindow(0)


class TestSloPolicy:
    def _snapshot(self, window, n=20, latency=0.001, errors=0):
        for i in range(n):
            window.record(latency, error=i < errors)
        return window.snapshot()

    def test_disabled_policy_is_always_ok(self):
        window, _ = _window()
        snap = self._snapshot(window, errors=20)
        assert SloPolicy().evaluate(snap) == ("ok", [])

    def test_p99_breach_degrades(self):
        window, _ = _window()
        snap = self._snapshot(window, latency=0.5)
        policy = SloPolicy(p99_ms=100.0)
        status, breaches = policy.evaluate(snap)
        assert status == "degraded"
        assert "p99" in breaches[0]

    def test_error_rate_breach_degrades(self):
        window, _ = _window()
        snap = self._snapshot(window, errors=10)
        policy = SloPolicy(max_error_rate=0.05)
        status, breaches = policy.evaluate(snap)
        assert status == "degraded"
        assert "error rate" in breaches[0]

    def test_min_requests_guards_flapping(self):
        window, _ = _window()
        snap = self._snapshot(window, n=3, latency=5.0, errors=3)
        policy = SloPolicy(p99_ms=1.0, max_error_rate=0.01, min_requests=10)
        assert policy.evaluate(snap) == ("ok", [])

    def test_healthy_window_passes_enabled_policy(self):
        window, _ = _window()
        snap = self._snapshot(window, latency=0.001)
        policy = SloPolicy(p99_ms=100.0, max_error_rate=0.05)
        assert policy.evaluate(snap) == ("ok", [])

"""Tests for the metric instruments (counters, gauges, histograms)."""

import math

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    decade_buckets,
)


class TestDecadeBuckets:
    def test_shape(self):
        buckets = decade_buckets(0, 1)
        assert buckets == (1.0, 2.5, 5.0, 10.0, 25.0, 50.0)

    def test_defaults_are_sorted(self):
        for buckets in (LATENCY_BUCKETS_SECONDS, COUNT_BUCKETS):
            assert list(buckets) == sorted(buckets)

    def test_latency_range_covers_queries_and_builds(self):
        # Sub-microsecond queries and multi-minute builds both land
        # inside the boundary range, not in the overflow bucket.
        assert LATENCY_BUCKETS_SECONDS[0] <= 1e-7
        assert LATENCY_BUCKETS_SECONDS[-1] >= 100


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.incr()
        c.incr(5)
        assert c.value == 6


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge()
        g.set(7)
        g.set(3)
        assert g.value == 3

    def test_update_max_keeps_peak(self):
        g = Gauge()
        g.update_max(3)
        g.update_max(9)
        g.update_max(5)
        assert g.value == 9


class TestHistogram:
    def test_requires_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(())

    def test_bucket_assignment(self):
        h = Histogram((1, 10, 100))
        for value in (0.5, 1, 5, 10, 50, 1000):
            h.observe(value)
        # Bucket i covers (boundaries[i-1], boundaries[i]]; the last
        # bucket is overflow.
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.count == 6

    def test_streaming_stats(self):
        h = Histogram((1, 10))
        for value in (2, 8, 4):
            h.observe(value)
        assert h.min == 2
        assert h.max == 8
        assert h.total == 14
        assert h.mean == pytest.approx(14 / 3)

    def test_empty_histogram(self):
        # Sample statistics of zero samples are *undefined*, not zero:
        # nan from the accessors, None (JSON null) in the snapshot.
        h = Histogram((1, 10))
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(0.5))
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["p50"] is None and snap["p99"] is None
        assert snap["min"] is None and snap["max"] is None
        assert snap["buckets"] == {}

    def test_histogram_merge(self):
        a = Histogram((1, 10, 100))
        b = Histogram((1, 10, 100))
        for value in (0.5, 5, 50):
            a.observe(value)
        for value in (500, 5000):
            b.observe(value)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(5555.5)
        assert a.min == 0.5 and a.max == 5000
        with pytest.raises(ValueError):
            a.merge(Histogram((1, 2)))

    def test_percentile_bounds(self):
        h = Histogram((1, 10, 100))
        for value in (2, 3, 4, 20, 30):
            h.observe(value)
        with pytest.raises(ValueError):
            h.percentile(1.5)
        assert h.min <= h.percentile(0.0) <= h.percentile(1.0) <= h.max

    def test_percentile_monotone(self):
        h = Histogram(decade_buckets(-3, 3))
        for value in (0.01, 0.02, 0.3, 0.4, 5, 60, 700):
            h.observe(value)
        quantiles = [h.percentile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)

    def test_percentile_single_value(self):
        h = Histogram((1, 10))
        h.observe(4)
        assert h.percentile(0.5) == pytest.approx(4)
        assert h.percentile(0.99) == pytest.approx(4)

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram((0, 100))
        for value in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            h.observe(value)
        # All samples sit in the (0, 100] bucket: the median estimate
        # interpolates to the middle of it.
        assert h.percentile(0.5) == pytest.approx(50, abs=5)

    def test_bucket_labels(self):
        h = Histogram((1, 10))
        assert h.bucket_label(0) == "<= 1"
        assert h.bucket_label(1) == "<= 10"
        assert h.bucket_label(2) == "> 10"

    def test_nonzero_buckets(self):
        h = Histogram((1, 10))
        h.observe(5)
        h.observe(7)
        assert h.nonzero_buckets() == {"<= 10": 2}

    def test_snapshot_keys(self):
        h = Histogram((1, 10))
        h.observe(5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 5
        assert set(snap) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
            "buckets",
        }

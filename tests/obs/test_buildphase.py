"""Tests for build-phase observability (``repro.obs.buildphase``)."""

import io

from repro.obs.buildphase import (
    BuildPhaseTracker,
    ProgressPrinter,
    make_build_info,
    peak_rss_bytes,
    phase_breakdown,
)
from repro.obs.tracing import SpanEvent


def _span(name, duration):
    return SpanEvent(name=name, start=0.0, duration=duration, attrs={})


class TestPeakRss:
    def test_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1_000_000  # >1MB for any python


class TestBuildPhaseTracker:
    def test_phases_recorded_in_order(self):
        tracker = BuildPhaseTracker()
        with tracker.phase("load-graph"):
            pass
        with tracker.phase("build", nodes=5):
            pass
        tracker.close()
        assert [p.name for p in tracker.phases] == ["load-graph", "build"]
        assert tracker.phases[1].attrs == {"nodes": 5}
        for stat in tracker.phases:
            assert stat.seconds >= 0

    def test_progress_lines_emitted(self):
        lines = []
        tracker = BuildPhaseTracker(progress=lines.append)
        with tracker.phase("build"):
            pass
        tracker.close()
        assert len(lines) == 1
        assert lines[0].startswith("[build] build")

    def test_attrs_mutable_inside_phase(self):
        tracker = BuildPhaseTracker()
        with tracker.phase("build") as attrs:
            attrs["labels"] = 42
        assert tracker.phases[0].attrs["labels"] == 42

    def test_tracemalloc_deltas_when_tracing(self):
        tracker = BuildPhaseTracker(trace_allocations=True)
        try:
            with tracker.phase("build"):
                blob = [0] * 100_000  # noqa: F841 — allocate visibly
        finally:
            tracker.close()
        assert tracker.phases[0].alloc_delta_bytes is not None

    def test_summary_is_json_ready(self):
        tracker = BuildPhaseTracker()
        with tracker.phase("build", nodes=3):
            pass
        tracker.close()
        summary = tracker.summary()
        assert summary[0]["name"] == "build"
        assert summary[0]["nodes"] == 3


class TestProgressPrinter:
    def test_throttles_and_finishes(self):
        lines = []
        printer = ProgressPrinter(lines.append, min_interval_s=3600)
        state = {
            "nodes": 1, "depth": 0, "cut": 4, "labels": 10, "elapsed": 0.1
        }
        printer(state)  # first call passes the throttle
        printer({**state, "nodes": 2})  # throttled away
        printer({**state, "nodes": 3})  # throttled away
        printer.finish()  # final state always printed
        assert len(lines) == 2
        assert "node     1" in lines[0]
        assert "node     3" in lines[1]

    def test_finish_idempotent(self):
        lines = []
        printer = ProgressPrinter(lines.append, min_interval_s=0)
        printer.finish()  # nothing buffered: no output
        assert lines == []


class TestPhaseBreakdown:
    def test_folds_spans_into_phases(self):
        events = [
            _span("partition.balanced_cut", 0.25),
            _span("partition.balanced_cut", 0.25),
            _span("ctls.build.labels", 1.0),
            _span("ctls.build.shortcuts", 0.5),
            _span("ctls.build.pack", 0.1),
            _span("ssspc.run", 9.9),  # counted inside labels: skipped
        ]
        breakdown = phase_breakdown(events)
        assert breakdown["partition"] == {"seconds": 0.5, "count": 2}
        assert breakdown["labels"]["seconds"] == 1.0
        assert breakdown["spc_graph"]["seconds"] == 0.5
        assert breakdown["pack"]["seconds"] == 0.1
        assert "ssspc.run" not in breakdown

    def test_canonical_order(self):
        events = [
            _span("ctls.build.pack", 0.1),
            _span("partition.balanced_cut", 0.2),
        ]
        assert list(phase_breakdown(events)) == ["partition", "pack"]

    def test_empty(self):
        assert phase_breakdown([]) == {}


class TestMakeBuildInfo:
    def test_core_fields(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "abc123")
        info = make_build_info(
            algorithm="ctls",
            build_seconds=2.0,
            label_entries=1000,
            phases={"labels": {"seconds": 1.5, "count": 1}},
            extras={"graph": "net.gr"},
        )
        assert info["algorithm"] == "ctls"
        assert info["git_sha"] == "abc123"
        assert info["labels_per_second"] == 500.0
        assert info["phases"]["labels"]["count"] == 1
        assert info["graph"] == "net.gr"

    def test_zero_build_seconds_no_throughput(self):
        info = make_build_info(
            algorithm="tl", build_seconds=0.0, label_entries=10
        )
        assert "labels_per_second" not in info

"""Tests for the Prometheus text exposition renderer and validator."""

import math

import pytest

from repro.obs import Recorder
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    prometheus_name,
    render_prometheus,
    validate_prometheus_text,
)


def _sample_snapshot():
    rec = Recorder()
    rec.incr("serve.requests", 42)
    rec.incr("serve.responses.ok", 40)
    rec.gauge("serve.queue.depth", 3)
    rec.gauge("serve.cache.hit_rate", 0.25)
    for value in (0.0001, 0.0004, 0.002, 0.002, 0.05, 1.5):
        rec.observe("serve.latency_seconds", value)
    for size in (1, 2, 4, 64):
        rec.observe("serve.batch.size", size)
    return rec.metrics_snapshot()


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert (
            prometheus_name("serve.latency_seconds")
            == "repro_serve_latency_seconds"
        )

    def test_invalid_characters_sanitised(self):
        name = prometheus_name("weird-metric name!")
        assert validate_prometheus_text(f"# TYPE {name} gauge\n{name} 1\n") == []

    def test_namespace_optional(self):
        assert prometheus_name("a.b", namespace="") == "a_b"


class TestEscapeLabelValue:
    def test_escapes_quotes_backslashes_newlines(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRenderPrometheus:
    def test_validator_clean(self):
        text = render_prometheus(_sample_snapshot())
        assert validate_prometheus_text(text) == []

    def test_counter_rendering(self):
        text = render_prometheus(_sample_snapshot())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 42" in text

    def test_gauge_rendering(self):
        text = render_prometheus(_sample_snapshot())
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert "repro_serve_cache_hit_rate 0.25" in text

    def test_histogram_buckets_cumulative_and_inf_terminated(self):
        text = render_prometheus(_sample_snapshot())
        name = "repro_serve_latency_seconds"
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith(f"{name}_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert f'{name}_bucket{{le="+Inf"}} 6' in text
        assert f"{name}_count 6" in text

    def test_sum_and_count_match_json_snapshot(self):
        # Content equivalence with the JSON representation: both are
        # rendered from the *same* snapshot, so every number in the
        # text form must appear in the JSON form.
        snapshot = _sample_snapshot()
        text = render_prometheus(snapshot)
        for dotted, hist in snapshot["histograms"].items():
            flat = prometheus_name(dotted)
            assert f"{flat}_count {hist['count']}" in text
            sum_line = next(
                line for line in text.splitlines()
                if line.startswith(f"{flat}_sum ")
            )
            assert float(sum_line.split()[1]) == pytest.approx(hist["sum"])
        for dotted, value in snapshot["counters"].items():
            assert f"{prometheus_name(dotted)}_total {value}" in text

    def test_empty_snapshot_renders_clean(self):
        text = render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        )
        assert validate_prometheus_text(text) == []

    def test_empty_histogram_renders_clean(self):
        snapshot = {
            "counters": {},
            "gauges": {},
            "histograms": {"h": {"count": 0, "sum": 0.0, "buckets": {}}},
        }
        text = render_prometheus(snapshot)
        assert validate_prometheus_text(text) == []
        assert 'repro_h_bucket{le="+Inf"} 0' in text

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")


class TestValidator:
    def test_flags_missing_type(self):
        problems = validate_prometheus_text("orphan_metric 1\n")
        assert any("no # TYPE" in p for p in problems)

    def test_flags_duplicate_series(self):
        text = "# TYPE m gauge\nm 1\nm 2\n"
        assert any(
            "duplicate series" in p
            for p in validate_prometheus_text(text)
        )

    def test_flags_nonmonotone_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4.0\n"
            "h_count 5\n"
        )
        assert any(
            "decrease" in p for p in validate_prometheus_text(text)
        )

    def test_flags_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        assert any(
            "+Inf bucket" in p for p in validate_prometheus_text(text)
        )

    def test_flags_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 4\n'
            "h_sum 1.0\n"
            "h_count 4\n"
        )
        assert any(
            "+Inf" in p for p in validate_prometheus_text(text)
        )

    def test_accepts_escaped_label_values(self):
        value = escape_label_value('path "with" \\ and \n newline')
        text = f'# TYPE m gauge\nm{{label="{value}"}} 1\n'
        assert validate_prometheus_text(text) == []

    def test_flags_bad_label_block(self):
        text = '# TYPE m gauge\nm{label=unquoted} 1\n'
        assert any(
            "label" in p for p in validate_prometheus_text(text)
        )


class TestExpositionEdgeCases:
    """Corner cases a real scrape pipeline will eventually produce."""

    def test_nan_and_inf_gauges_render_and_validate(self):
        snapshot = {
            "counters": {},
            "gauges": {
                "rate.nan": math.nan,
                "rate.inf": math.inf,
                "rate.neg_inf": -math.inf,
            },
            "histograms": {},
        }
        text = render_prometheus(snapshot)
        assert validate_prometheus_text(text) == []
        assert "repro_rate_nan NaN" in text
        assert "repro_rate_inf +Inf" in text
        assert "repro_rate_neg_inf -Inf" in text

    def test_digit_leading_name_sanitised(self):
        # With no namespace the sanitised name would start with a
        # digit, which the exposition format forbids; the helper must
        # still produce a valid identifier.
        name = prometheus_name("404.responses", namespace="")
        assert validate_prometheus_text(
            f"# TYPE {name} counter\n{name} 1\n"
        ) == []

    def test_overflow_only_histogram(self):
        # A histogram whose every observation landed in the overflow
        # bucket: the "> X" label maps to +Inf, and no second +Inf
        # line may be emitted.
        snapshot = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"count": 3, "sum": 300.0, "buckets": {"> 64": 3}}
            },
        }
        text = render_prometheus(snapshot)
        assert validate_prometheus_text(text) == []
        assert text.count('le="+Inf"') == 1

    def test_unicode_label_values_validate(self):
        value = escape_label_value("datasätze/路径")
        text = f'# TYPE m gauge\nm{{path="{value}"}} 1\n'
        assert validate_prometheus_text(text) == []

    def test_validator_flags_unparseable_value(self):
        problems = validate_prometheus_text(
            "# TYPE m gauge\nm not-a-number\n"
        )
        assert any("value" in p for p in problems)

    def test_validator_flags_bad_type_declaration(self):
        problems = validate_prometheus_text("# TYPE m flavour\nm 1\n")
        assert any("TYPE" in p for p in problems)

"""Tests for the benchmark telemetry schema (``repro.obs.perf``)."""

import json

import pytest

from repro.obs.perf import (
    PERF_FORMAT,
    PERF_SCHEMA_VERSION,
    PerfError,
    PerfRecord,
    PerfSuite,
    append_trajectory,
    bench_filename,
    capture_environment,
    git_sha,
    load_bench_payloads,
    percentile,
    validate_perf_payload,
)


class TestPercentile:
    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.5
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(PerfError):
            percentile([], 50)


class TestGitSha:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        assert git_sha() == "cafebabe"

    def test_real_repo_or_unknown(self, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40


class TestCaptureEnvironment:
    def test_required_keys(self):
        env = capture_environment()
        for key in ("git_sha", "date", "host", "python", "platform"):
            assert key in env, key


class TestPerfRecord:
    def test_value_is_median(self):
        record = PerfRecord(
            metric="q", unit="us", direction="lower",
            samples=[3.0, 1.0, 2.0],
        )
        assert record.value == 2.0

    def test_portable_units(self):
        assert PerfRecord(
            metric="m", unit="labels", direction="lower", samples=[1]
        ).portable
        assert not PerfRecord(
            metric="m", unit="us", direction="lower", samples=[1]
        ).portable

    def test_bad_direction_rejected(self):
        with pytest.raises(PerfError):
            PerfRecord(
                metric="m", unit="us", direction="sideways", samples=[1]
            )

    def test_empty_samples_rejected(self):
        with pytest.raises(PerfError):
            PerfRecord(metric="m", unit="us", direction="lower", samples=[])

    def test_tolerance_below_one_rejected(self):
        with pytest.raises(PerfError):
            PerfRecord(
                metric="m", unit="us", direction="lower",
                samples=[1], tolerance=0.5,
            )

    def test_to_dict_round_trips_percentiles(self):
        record = PerfRecord(
            metric="q", unit="us", direction="lower",
            samples=[float(i) for i in range(1, 101)],
        )
        data = record.to_dict()
        assert data["p50"] == pytest.approx(50.5)
        assert data["p99"] > data["p95"] > data["p50"]


class TestPerfSuite:
    def test_write_and_validate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        suite = PerfSuite("demo")
        suite.record(
            "latency", [4.0, 5.0, 6.0], unit="us", dataset="NY", rounds=3
        )
        suite.record(
            "entries", [100], unit="entries", direction="lower"
        )
        path = suite.write(tmp_path)
        assert path.name == bench_filename("demo") == "BENCH_demo.json"
        payload = json.loads(path.read_text())
        assert payload["format"] == PERF_FORMAT
        assert payload["version"] == PERF_SCHEMA_VERSION
        assert payload["environment"]["git_sha"] == "deadbeef"
        assert validate_perf_payload(payload) == []
        by_metric = {r["metric"]: r for r in payload["records"]}
        assert by_metric["latency"]["value"] == 5.0
        assert by_metric["latency"]["attrs"]["rounds"] == 3
        assert by_metric["entries"]["portable"] is True

    def test_validator_flags_tampered_value(self, tmp_path):
        suite = PerfSuite("demo")
        suite.record("m", [1.0, 2.0, 3.0], unit="us")
        payload = suite.payload()
        payload["records"][0]["value"] = 99.0
        assert validate_perf_payload(payload)

    def test_validator_flags_missing_keys(self):
        assert validate_perf_payload({}) != []
        assert validate_perf_payload({"format": "nope"}) != []


class TestTrajectory:
    def test_append_dedupes_by_sha_and_name(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "feedface")
        suite = PerfSuite("demo")
        suite.record("m", [1.0], unit="us")
        append_trajectory(tmp_path, suite.payload())
        append_trajectory(tmp_path, suite.payload())
        lines = (
            (tmp_path / "BENCH_TRAJECTORY.jsonl")
            .read_text().strip().splitlines()
        )
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["git_sha"] == "feedface"

    def test_different_suites_coexist(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "feedface")
        for name in ("one", "two"):
            suite = PerfSuite(name)
            suite.record("m", [1.0], unit="us")
            append_trajectory(tmp_path, suite.payload())
        lines = (
            (tmp_path / "BENCH_TRAJECTORY.jsonl")
            .read_text().strip().splitlines()
        )
        assert len(lines) == 2


class TestLoadBenchPayloads:
    def test_loads_written_suites(self, tmp_path):
        for name in ("a", "b"):
            suite = PerfSuite(name)
            suite.record("m", [1.0], unit="us")
            suite.write(tmp_path)
        payloads = load_bench_payloads(tmp_path)
        assert sorted(payloads) == ["a", "b"]

    def test_invalid_payload_raises(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text('{"format": "nope"}')
        with pytest.raises(PerfError):
            load_bench_payloads(tmp_path)

"""Tests for the wall-clock sampling profiler (``repro.obs.sampling``)."""

import threading
import time

import pytest

from repro.obs.sampling import (
    ProfilerError,
    SamplingProfiler,
    profile_for,
)
from repro.obs.tracing import validate_chrome_trace


def _busy_until(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(500))


def _named_busy_frame(stop: threading.Event) -> None:
    """A distinctly named frame the sampler must attribute samples to."""
    _busy_until(stop)


@pytest.fixture
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(
        target=_named_busy_frame, args=(stop,),
        name="busy-worker", daemon=True,
    )
    thread.start()
    yield
    stop.set()
    thread.join(timeout=5.0)


class TestLifecycle:
    def test_single_shot(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        time.sleep(0.02)
        profiler.stop()
        with pytest.raises(ProfilerError):
            profiler.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ProfilerError):
            SamplingProfiler().stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ProfilerError):
            SamplingProfiler(interval_s=0)

    def test_context_manager(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            assert profiler.running
            time.sleep(0.02)
        assert not profiler.running
        assert profiler.wall_seconds > 0

    def test_max_samples_caps_the_capture(self):
        profiler = SamplingProfiler(interval_s=0.001, max_samples=3)
        profiler.start()
        time.sleep(0.1)
        profiler.stop()
        assert profiler.sample_count <= 3


class TestCapture:
    def test_busy_thread_attributed(self, busy_thread):
        profiler = profile_for(0.2, interval_s=0.002)
        assert profiler.sample_count > 0
        collapsed = profiler.collapsed()
        assert "_named_busy_frame" in collapsed
        assert "busy-worker" in collapsed

    def test_collapsed_format(self, busy_thread):
        profiler = profile_for(0.1, interval_s=0.002)
        lines = profiler.collapsed().strip().splitlines()
        assert lines
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in frames  # thread name + at least one frame
        # Sorted hottest-first.
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_own_thread_excluded(self):
        profiler = profile_for(0.05, interval_s=0.002)
        assert "spc-profiler" not in profiler.collapsed()

    def test_blocked_thread_stack_memo_stays_correct(self, busy_thread):
        # The sampler memoizes walked stacks for blocked threads; the
        # main thread blocks in sleep here, and its stack must still
        # be reported (and only once per distinct shape).
        profiler = profile_for(0.1, interval_s=0.002)
        counts = profiler.stack_counts()
        main = [k for k in counts if k[0] == "MainThread"]
        assert main
        # sleeping in profile_for: the leaf frame label is stable.
        leaves = {stack[-1] for _, stack in main if stack}
        assert any("profile_for" in leaf or "sleep" in leaf
                   for leaf in leaves) or leaves

    def test_chrome_trace_validates(self, busy_thread):
        profiler = profile_for(0.1, interval_s=0.002)
        payload = profiler.chrome_trace()
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"]

    def test_write_collapsed(self, tmp_path, busy_thread):
        profiler = profile_for(0.1, interval_s=0.002)
        path = profiler.write_collapsed(tmp_path / "out.collapsed")
        assert path.read_text().strip()

    def test_cpu_self_accounting(self, busy_thread):
        # The sampler reports its own CPU cost; a 0.1s capture's ticks
        # must have consumed some CPU, and far less than the window.
        profiler = profile_for(0.1, interval_s=0.002)
        assert profiler.sample_count > 0
        assert 0.0 < profiler.cpu_seconds < 0.1


class TestProfileFor:
    def test_bad_seconds_rejected(self):
        with pytest.raises(ProfilerError):
            profile_for(0)


class TestSharedClockBase:
    def test_epoch_offset_positions_capture_on_the_span_clock(self):
        from repro.obs.tracing import CLOCK_EPOCH

        import time as _time

        before = _time.perf_counter() - CLOCK_EPOCH
        profiler = profile_for(0.05, interval_s=0.005)
        after = _time.perf_counter() - CLOCK_EPOCH
        # The capture started between the two readings, measured on
        # the same CLOCK_EPOCH base the span collector uses.
        assert before <= profiler.epoch_offset_s <= after

    def test_chrome_trace_lanes_start_at_the_epoch_offset(self, busy_thread):
        profiler = profile_for(0.05, interval_s=0.005)
        payload = profiler.chrome_trace()
        base_us = profiler.epoch_offset_s * 1e6
        starts = {}
        for event in payload["traceEvents"]:
            tid = event["tid"]
            starts[tid] = min(starts.get(tid, float("inf")), event["ts"])
        assert starts
        for first in starts.values():
            assert first == pytest.approx(base_us, abs=1.0)

"""Tests for the repro-spc command line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import grid_graph
from repro.graph.io import write_dimacs


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "net.gr"
    write_dimacs(grid_graph(4, 4), path)
    return path


class TestGenerate:
    def test_generate_road(self, tmp_path, capsys):
        out = tmp_path / "road.gr"
        assert main(["generate", "road", "200", str(out), "--seed", "3"]) == 0
        assert out.exists()
        assert "wrote Graph" in capsys.readouterr().out

    def test_generate_power(self, tmp_path):
        out = tmp_path / "power.gr"
        assert main(["generate", "power", "100", str(out)]) == 0
        assert out.exists()


class TestBuildQueryStats:
    @pytest.mark.parametrize("algorithm", ["tl", "ctl", "ctls"])
    def test_full_cycle(self, tmp_path, graph_file, capsys, algorithm):
        index_path = tmp_path / "index.json"
        assert main(
            ["build", str(graph_file), str(index_path), "--algorithm", algorithm]
        ) == 0
        assert index_path.exists()

        assert main(["query", str(index_path), "0", "15"]) == 0
        out = capsys.readouterr().out
        assert "distance=6" in out
        assert "shortest_paths=20" in out

        assert main(["stats", str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "vertices:           16" in out

    def test_build_with_strategy(self, tmp_path, graph_file):
        index_path = tmp_path / "index.json"
        assert main(
            [
                "build", str(graph_file), str(index_path),
                "--algorithm", "ctls", "--strategy", "pruned",
            ]
        ) == 0

    def test_query_disconnected_exit_code(self, tmp_path, capsys):
        # A disconnected pair is an answer, not an error: exit 0.
        from repro.graph.graph import Graph
        from repro.graph.io import write_json

        g = Graph.from_edges([(0, 1, 1), (2, 3, 1)])
        graph_path = tmp_path / "g.json"
        write_json(g, graph_path)
        index_path = tmp_path / "i.json"
        assert main(["build", str(graph_path), str(index_path)]) == 0
        assert main(["query", str(index_path), "0", "3"]) == 0
        assert "disconnected" in capsys.readouterr().out

    def test_missing_index_exits_nonzero(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope.json"), "0", "1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_vertex_exits_nonzero(self, tmp_path, graph_file, capsys):
        index_path = tmp_path / "index.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        assert main(["query", str(index_path), "0", "9999"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_edge_list_input(self, tmp_path):
        edge_path = tmp_path / "edges.txt"
        edge_path.write_text("0 1 2\n1 2 2\n")
        index_path = tmp_path / "i.json"
        assert main(["build", str(edge_path), str(index_path)]) == 0
        assert main(["query", str(index_path), "0", "2"]) == 0


class TestObservabilityFlags:
    def test_build_trace_is_valid_chrome_trace(self, tmp_path, graph_file,
                                               capsys):
        import json

        from repro.obs import validate_chrome_trace

        index_path = tmp_path / "index.json"
        trace_path = tmp_path / "build-trace.json"
        assert main(
            ["build", str(graph_file), str(index_path),
             "--trace", str(trace_path)]
        ) == 0
        assert f"trace written to {trace_path}" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        names = {event["name"] for event in payload["traceEvents"]}
        assert "cli.build" in names
        assert "ctls.build" in names
        assert "partition.balanced_cut" in names

    def test_build_metrics_snapshot(self, tmp_path, graph_file, capsys):
        import json

        index_path = tmp_path / "index.json"
        assert main(
            ["build", str(graph_file), str(index_path), "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out[out.index("{"):])
        assert snapshot["counters"]["build.ssspc_runs"] > 0
        assert snapshot["counters"]["build.label_entries"] > 0

    def test_obs_disabled_after_run(self, tmp_path, graph_file):
        import repro.obs as obs

        index_path = tmp_path / "index.json"
        assert main(
            ["build", str(graph_file), str(index_path), "--metrics"]
        ) == 0
        assert not obs.ENABLED


class TestProfile:
    @pytest.fixture
    def built_index(self, tmp_path, graph_file):
        index_path = tmp_path / "index.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        return index_path

    def test_profile_prints_percentiles(self, tmp_path, built_index, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15\n1 14\n# comment line\n2 13\n")
        assert main(
            ["profile", str(built_index), str(pairs_path), "--repeats", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed 3 queries x2 repeats" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out

    def test_profile_with_trace(self, tmp_path, built_index, capsys):
        import json

        from repro.obs import validate_chrome_trace

        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15\n")
        trace_path = tmp_path / "profile-trace.json"
        assert main(
            ["profile", str(built_index), str(pairs_path),
             "--trace", str(trace_path)]
        ) == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        names = {event["name"] for event in payload["traceEvents"]}
        assert "profile.replay" in names

    def test_profile_malformed_pairs_exits_nonzero(self, tmp_path,
                                                   built_index, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15 3\n")
        assert main(["profile", str(built_index), str(pairs_path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_empty_pairs_exits_nonzero(self, tmp_path, built_index):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("# only comments\n")
        assert main(["profile", str(built_index), str(pairs_path)]) == 1


class TestBatchQuery:
    @pytest.fixture
    def built_index(self, tmp_path, graph_file):
        index_path = tmp_path / "index.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        return index_path

    def test_pairs_file_one_line_per_result(self, tmp_path, built_index,
                                            capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15\n3 3\n# comment\n1 14\n")
        assert main(
            ["query", str(built_index), "--pairs", str(pairs_path)]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("Q(0, 15): distance=6")
        assert lines[1] == "Q(3, 3): distance=0 shortest_paths=1"

    def test_pairs_with_disconnected_exit_zero(self, tmp_path, capsys):
        from repro.graph.graph import Graph
        from repro.graph.io import write_json

        g = Graph.from_edges([(0, 1, 1), (2, 3, 1)])
        graph_path = tmp_path / "g.json"
        write_json(g, graph_path)
        index_path = tmp_path / "i.json"
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 3\n0 1\n")
        assert main(["build", str(graph_path), str(index_path)]) == 0
        assert main(
            ["query", str(index_path), "--pairs", str(pairs_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Q(0, 3): disconnected" in out
        assert "Q(0, 1): distance=1" in out

    def test_query_without_pair_or_file_errors(self, built_index, capsys):
        assert main(["query", str(built_index)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_query_with_both_modes_errors(self, tmp_path, built_index,
                                          capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15\n")
        assert main(
            ["query", str(built_index), "0", "15",
             "--pairs", str(pairs_path)]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_vertex_in_pairs_exits_nonzero(self, tmp_path,
                                                   built_index, capsys):
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 9999\n")
        assert main(
            ["query", str(built_index), "--pairs", str(pairs_path)]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestBinaryFormat:
    def test_build_binary_then_query_and_stats(self, tmp_path, graph_file,
                                               capsys):
        index_path = tmp_path / "index.bin"
        assert main(
            ["build", str(graph_file), str(index_path), "--format", "binary"]
        ) == 0
        assert "saved to" in capsys.readouterr().out
        assert index_path.read_bytes()[:8] == b"RSPCIDX4"
        assert main(["query", str(index_path), "0", "15"]) == 0
        assert "shortest_paths=20" in capsys.readouterr().out
        assert main(["stats", str(index_path)]) == 0
        assert "vertices:           16" in capsys.readouterr().out


class TestVerifyIndex:
    @pytest.fixture
    def binary_index(self, tmp_path, graph_file):
        index_path = tmp_path / "index.bin"
        assert main(
            ["build", str(graph_file), str(index_path), "--format", "binary"]
        ) == 0
        return index_path

    def test_clean_index_passes(self, binary_index, capsys):
        assert main(["verify-index", str(binary_index)]) == 0
        out = capsys.readouterr().out
        assert "checksums ok" in out
        for section in ("header", "vertices", "offsets", "dist", "count"):
            assert section in out

    def test_cross_check_against_baseline(self, binary_index, graph_file,
                                          capsys):
        assert main(
            ["verify-index", str(binary_index), "--graph", str(graph_file),
             "--samples", "10"]
        ) == 0
        assert "match the online baseline" in capsys.readouterr().out

    def test_corrupt_index_fails_with_section_report(self, binary_index,
                                                     capsys):
        data = bytearray(binary_index.read_bytes())
        data[len(data) // 2] ^= 0xFF
        binary_index.write_bytes(bytes(data))
        assert main(["verify-index", str(binary_index)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "corrupt sections" in captured.err

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["verify-index", str(tmp_path / "nope.bin")]) == 1


class TestServeFlags:
    def test_fault_and_breaker_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "index.bin",
             "--fault-plan", "scan.fail:0.1,conn.reset:0.05",
             "--fault-seed", "7",
             "--fallback", "online", "--graph", "net.gr",
             "--breaker-threshold", "5", "--breaker-cooldown", "0.5"]
        )
        assert args.fault_plan == "scan.fail:0.1,conn.reset:0.05"
        assert args.fault_seed == 7
        assert args.fallback == "online" and args.graph == "net.gr"
        assert args.breaker_threshold == 5
        assert args.breaker_cooldown == 0.5

    def test_bad_fault_plan_exits_nonzero(self, tmp_path, graph_file,
                                          capsys):
        index_path = tmp_path / "index.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        assert main(
            ["serve", str(index_path), "--fault-plan", "bogus.site:0.5"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_fallback_online_requires_graph(self, tmp_path, graph_file,
                                            capsys):
        index_path = tmp_path / "index.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        assert main(
            ["serve", str(index_path), "--fallback", "online"]
        ) == 1
        assert "--graph" in capsys.readouterr().err


class TestProfileBatch:
    def test_profile_batched_replay(self, tmp_path, graph_file, capsys):
        index_path = tmp_path / "index.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15\n1 14\n2 13\n3 12\n")
        assert main(
            ["profile", str(index_path), str(pairs_path), "--batch", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed 4 queries" in out
        assert "p50=" in out

"""Tests for the repro-spc command line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import grid_graph
from repro.graph.io import write_dimacs


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "net.gr"
    write_dimacs(grid_graph(4, 4), path)
    return path


class TestGenerate:
    def test_generate_road(self, tmp_path, capsys):
        out = tmp_path / "road.gr"
        assert main(["generate", "road", "200", str(out), "--seed", "3"]) == 0
        assert out.exists()
        assert "wrote Graph" in capsys.readouterr().out

    def test_generate_power(self, tmp_path):
        out = tmp_path / "power.gr"
        assert main(["generate", "power", "100", str(out)]) == 0
        assert out.exists()


class TestBuildQueryStats:
    @pytest.mark.parametrize("algorithm", ["tl", "ctl", "ctls"])
    def test_full_cycle(self, tmp_path, graph_file, capsys, algorithm):
        index_path = tmp_path / "index.json"
        assert main(
            ["build", str(graph_file), str(index_path), "--algorithm", algorithm]
        ) == 0
        assert index_path.exists()

        assert main(["query", str(index_path), "0", "15"]) == 0
        out = capsys.readouterr().out
        assert "distance=6" in out
        assert "shortest_paths=20" in out

        assert main(["stats", str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "vertices:           16" in out

    def test_build_with_strategy(self, tmp_path, graph_file):
        index_path = tmp_path / "index.json"
        assert main(
            [
                "build", str(graph_file), str(index_path),
                "--algorithm", "ctls", "--strategy", "pruned",
            ]
        ) == 0

    def test_query_disconnected_exit_code(self, tmp_path):
        from repro.graph.graph import Graph
        from repro.graph.io import write_json

        g = Graph.from_edges([(0, 1, 1), (2, 3, 1)])
        graph_path = tmp_path / "g.json"
        write_json(g, graph_path)
        index_path = tmp_path / "i.json"
        assert main(["build", str(graph_path), str(index_path)]) == 0
        assert main(["query", str(index_path), "0", "3"]) == 1

    def test_edge_list_input(self, tmp_path):
        edge_path = tmp_path / "edges.txt"
        edge_path.write_text("0 1 2\n1 2 2\n")
        index_path = tmp_path / "i.json"
        assert main(["build", str(edge_path), str(index_path)]) == 0
        assert main(["query", str(index_path), "0", "2"]) == 0

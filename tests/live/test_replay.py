"""Delta files and the update-replay streaming client."""

import json

import pytest

from repro.core.ctl import CTLIndex
from repro.exceptions import LiveUpdateError, ParseError
from repro.graph.generators import road_network
from repro.graph.graph import Graph
from repro.live import (
    DeltaBatch,
    UpdateCoordinator,
    read_delta_file,
    stream_deltas,
    synthesize_deltas,
    write_delta_file,
)
from repro.serve import ServeConfig, ServerThread


class TestDeltaFiles:
    def test_round_trip(self, tmp_path):
        batches = [
            DeltaBatch(0.0, ((1, 2, 3),)),
            DeltaBatch(1.5, ((4, 5, 6), (1, 2, 9))),
        ]
        path = tmp_path / "deltas.jsonl"
        write_delta_file(path, batches)
        assert read_delta_file(path) == batches

    def test_sorted_by_offset(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        path.write_text(
            '{"at": 5.0, "updates": [[1, 2, 3]]}\n'
            '{"at": 0.5, "updates": [[4, 5, 6]]}\n'
        )
        batches = read_delta_file(path)
        assert [b.at for b in batches] == [0.5, 5.0]

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "deltas.jsonl"
        path.write_text(
            "# recorded 2026-08-09\n"
            "\n"
            '{"at": 0, "updates": [[1, 2, 3]]}\n'
        )
        assert len(read_delta_file(path)) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2, 3]",
            '{"at": "soon", "updates": [[1, 2, 3]]}',
            '{"at": 0, "updates": []}',
            '{"at": 0, "updates": [[1, 2]]}',
            '{"at": 0}',
        ],
    )
    def test_malformed_lines_raise(self, tmp_path, line):
        path = tmp_path / "deltas.jsonl"
        path.write_text(line + "\n")
        with pytest.raises(ParseError):
            read_delta_file(path)


class TestCliErrors:
    """``repro-spc update-replay`` on a bad file: exit 1, one ``error:``
    line on stderr, no traceback."""

    @pytest.mark.parametrize(
        "content",
        [
            "not json\n",
            # A torn final line, as left by a crashed recorder.
            '{"at": 0, "updates": [[1, 2, 3]]}\n{"at": 1, "upd',
            '{"at": 0, "updates": [[1, 2]]}\n',
        ],
    )
    def test_update_replay_bad_file_exits_one(
        self, tmp_path, capsys, content
    ):
        from repro.cli import main

        path = tmp_path / "deltas.jsonl"
        path.write_text(content)
        assert main(["update-replay", str(path)]) == 1
        err = capsys.readouterr().err.strip().splitlines()
        assert len(err) == 1, err
        assert err[0].startswith("error:")
        assert "Traceback" not in err[0]

    def test_update_replay_missing_file_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["update-replay", str(tmp_path / "absent.jsonl")]) == 1
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:")


class TestSynthesize:
    def test_deterministic(self):
        graph = road_network(60, seed=1)
        a = synthesize_deltas(graph, batches=5, seed=9)
        b = synthesize_deltas(graph, batches=5, seed=9)
        assert a == b
        assert len(a) == 5
        for batch in a:
            for u, v, w in batch.updates:
                assert graph.has_edge(u, v)
                assert w >= 1

    def test_empty_graph_rejected(self):
        with pytest.raises(LiveUpdateError):
            synthesize_deltas(Graph(), batches=1)


class TestStreamDeltas:
    @pytest.fixture(scope="class")
    def live_server(self):
        graph = road_network(80, seed=2)
        index = CTLIndex.build(graph)
        coordinator = UpdateCoordinator(graph, index)
        thread = ServerThread(
            index, ServeConfig(port=0, live_updates=True), updates=coordinator
        )
        host, port = thread.start()
        yield graph, host, port
        thread.stop()

    def test_streams_and_reports_epochs(self, live_server):
        graph, host, port = live_server
        batches = synthesize_deltas(
            graph, batches=4, edges_per_batch=3, interval_s=0.01, seed=3
        )
        report = stream_deltas(host, port, batches, speed=0)
        assert report.ok
        assert report.batches_sent == 4
        assert report.updates_sent == 12
        assert report.last_seqno >= 4
        assert len(report.apply_latencies) == 4

    def test_failed_batches_recorded_not_fatal(self, live_server):
        graph, host, port = live_server
        bad = [DeltaBatch(0.0, ((10**9, 0, 5),))]
        good = synthesize_deltas(graph, batches=1, seed=4)
        report = stream_deltas(host, port, bad + good, speed=0)
        assert not report.ok
        assert report.batches_failed == 1
        assert report.batches_sent == 1
        assert "HTTP" in report.errors[0]

    def test_empty_stream(self):
        assert stream_deltas("127.0.0.1", 1, []).ok

"""Write-ahead log: durability ordering, crash recovery, compaction."""

import os
import random
import struct

import pytest

from repro.core.ctl import CTLIndex
from repro.core.serialize import save_index
from repro.exceptions import LiveUpdateError
from repro.faults import FaultPlan, InjectedFault
from repro.graph.generators import road_network
from repro.live import (
    WAL_MAGIC,
    UpdateCoordinator,
    WalCorruptError,
    WriteAheadLog,
    recover_coordinator,
    scan_wal,
    verify_wal,
)
from repro.search.pairwise import spc_query


@pytest.fixture()
def graph():
    return road_network(36, seed=11)


@pytest.fixture()
def index(graph):
    return CTLIndex.build(graph)


def _random_batches(graph, *, rounds, per_batch=3, seed=0):
    rng = random.Random(seed)
    edges = [(u, v, w) for u, v, w, _ in graph.edges()]
    return [
        [
            (u, v, rng.randint(1, 2 * max(w, 1)))
            for u, v, w in rng.sample(edges, per_batch)
        ]
        for _ in range(rounds)
    ]


def _apply(coordinator, mirror, batch):
    coordinator.apply_batch(batch)
    for a, b, w in batch:
        mirror.add_edge(a, b, w, mirror.count(a, b))


def _assert_parity(coordinator, mirror, *, seed=1, samples=60):
    rng = random.Random(seed)
    vertices = sorted(mirror.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(samples)
    ]
    got = coordinator.live_index.query_batch(pairs)
    for (s, t), result in zip(pairs, got):
        assert tuple(result) == tuple(spc_query(mirror, s, t)), (s, t)


def _overlay_key(coordinator):
    """Full overlay identity: compare with ``==`` for bit-identical."""
    state = coordinator.live_index.state
    return (
        state.epoch,
        state.seqno,
        {v: dict(p) for v, p in state.patches.items()},
        dict(state.min_dirty),
    )


class TestAppend:
    def test_fresh_start_creates_epoch_file(self, tmp_path, graph, index):
        coordinator, report = recover_coordinator(tmp_path, graph, index)
        assert report.fresh
        assert coordinator.wal is not None
        path = coordinator.wal.path
        assert path is not None and path.name == "wal-000001.log"
        assert path.read_bytes().startswith(WAL_MAGIC)
        scan = scan_wal(path)
        assert [r.kind for r in scan.records] == ["base"]
        assert scan.torn is None

    def test_every_batch_appends_one_record(self, tmp_path, graph, index):
        coordinator, _ = recover_coordinator(tmp_path, graph, index)
        batches = _random_batches(graph, rounds=4, seed=3)
        for batch in batches:
            coordinator.apply_batch(batch)
        # A no-op batch (same weights again) still gets a record: the
        # seqno bumps unconditionally, and recovery must see it.
        coordinator.apply_batch(batches[-1])
        scan = scan_wal(coordinator.wal.path)
        kinds = [r.kind for r in scan.records]
        assert kinds == ["base"] + ["batch"] * 5
        assert [r.seqno for r in scan.records] == [0, 1, 2, 3, 4, 5]
        assert coordinator.live_index.state.seqno == 5

    def test_record_framing_is_crc_checked(self, tmp_path, graph, index):
        coordinator, _ = recover_coordinator(tmp_path, graph, index)
        coordinator.apply_batch(next(iter(_random_batches(graph, rounds=1))))
        report = verify_wal(coordinator.wal.path)
        assert report.ok
        assert report.torn_tail is None
        assert report.watermark == (1, 0, 1)
        assert all(row["length"] > 0 for row in report.records)


class TestRecovery:
    def test_round_trip_is_bit_identical(self, tmp_path, graph, index):
        coordinator, _ = recover_coordinator(tmp_path, graph, index)
        mirror = graph.copy()
        for batch in _random_batches(graph, rounds=4, seed=5):
            _apply(coordinator, mirror, batch)
        recovered, report = recover_coordinator(tmp_path, graph, index)
        assert not report.fresh
        assert report.replayed_batches == 4
        assert not report.torn_tail
        assert _overlay_key(recovered) == _overlay_key(coordinator)
        _assert_parity(recovered, mirror, seed=6)
        # The reopened log keeps accepting appends with seqno continuity.
        _apply(recovered, mirror, _random_batches(graph, rounds=1, seed=8)[0])
        assert recovered.live_index.state.seqno == 5
        assert verify_wal(recovered.wal.path).ok

    def test_truncation_at_every_byte_recovers_a_prefix(
        self, tmp_path, graph, index
    ):
        """Satellite 3: cut the log anywhere, recovery is exact.

        For every byte length L of the WAL file, a copy truncated to L
        must recover to the longest acknowledged prefix: the overlay is
        bit-identical to a coordinator that applied exactly the batches
        whose records survived intact, and the epoch/seqno watermark is
        continuous (never skips, never invents).
        """
        source_dir = tmp_path / "source"
        coordinator, _ = recover_coordinator(source_dir, graph, index)
        mirror = graph.copy()
        reference = [_overlay_key(coordinator)]
        mirrors = [graph.copy()]
        for batch in _random_batches(graph, rounds=3, per_batch=2, seed=9):
            _apply(coordinator, mirror, batch)
            reference.append(_overlay_key(coordinator))
            mirrors.append(mirror.copy())
        wal_path = coordinator.wal.path
        data = wal_path.read_bytes()
        record_starts = [r.offset for r in scan_wal(wal_path).records]

        crash_dir = tmp_path / "crash"
        crash_dir.mkdir()
        crash_file = crash_dir / wal_path.name
        for cut in range(len(data) + 1):
            crash_file.write_bytes(data[:cut])
            recovered, report = recover_coordinator(crash_dir, graph, index)
            seqno = recovered.live_index.state.seqno
            # Continuity: the prefix is exactly the records wholly
            # before the cut (minus the base record).
            expected = _expected_batches(record_starts, len(data), cut)
            assert seqno == expected, f"cut at byte {cut}"
            if report.fresh:
                assert expected == 0
            assert _overlay_key(recovered) == reference[seqno], (
                f"cut at byte {cut}"
            )
            _assert_parity(recovered, mirrors[seqno], seed=cut, samples=12)
            recovered.wal.close()  # one open handle per cut adds up

    def test_torn_tail_drops_only_the_unacknowledged_record(
        self, tmp_path, graph, index
    ):
        coordinator, _ = recover_coordinator(tmp_path, graph, index)
        mirror = graph.copy()
        batches = _random_batches(graph, rounds=3, seed=13)
        for batch in batches[:-1]:
            _apply(coordinator, mirror, batch)
        pre_crash = _overlay_key(coordinator)
        coordinator.apply_batch(batches[-1])
        path = coordinator.wal.path
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        recovered, report = recover_coordinator(tmp_path, graph, index)
        assert report.torn_tail
        assert recovered.live_index.state.seqno == 2
        assert _overlay_key(recovered) == pre_crash
        _assert_parity(recovered, mirror, seed=14)
        # Recovery truncated the tail, so the reopened log is clean.
        assert verify_wal(recovered.wal.path).torn_tail is None

    def test_corruption_before_the_tail_is_refused(
        self, tmp_path, graph, index
    ):
        coordinator, _ = recover_coordinator(tmp_path, graph, index)
        for batch in _random_batches(graph, rounds=3, seed=17):
            coordinator.apply_batch(batch)
        path = coordinator.wal.path
        scan = scan_wal(path)
        victim = scan.records[1]  # first batch record: not the tail
        data = bytearray(path.read_bytes())
        flip = victim.offset + struct.calcsize("<II") + 2
        data[flip] ^= 0xFF
        path.write_bytes(bytes(data))
        report = verify_wal(path)
        assert not report.ok
        assert "CRC mismatch" in report.problem
        with pytest.raises(WalCorruptError, match="CRC mismatch"):
            recover_coordinator(tmp_path, graph, index)

    def test_bad_magic_is_refused(self, tmp_path, graph, index):
        path = tmp_path / "wal-000001.log"
        path.write_bytes(b"NOTAWAL1" + b"\x00" * 32)
        with pytest.raises(WalCorruptError, match="bad magic"):
            recover_coordinator(tmp_path, graph, index)


class TestTornWriteFault:
    def test_failed_append_leaves_coordinator_untouched(
        self, tmp_path, graph, index
    ):
        plan = FaultPlan.parse("wal.torn_write:1.0", seed=0)
        coordinator, _ = recover_coordinator(
            tmp_path, graph, index, fault_plan=plan
        )
        batch = _random_batches(graph, rounds=1, seed=19)[0]
        before = _overlay_key(coordinator)
        weights = {(a, b): graph.weight(a, b) for a, b, _w in batch}
        with pytest.raises(InjectedFault):
            coordinator.apply_batch(batch)
        # Durability ordering: the append failed, so neither the graph
        # nor the overlay moved — the batch was never acknowledged.
        assert _overlay_key(coordinator) == before
        for (a, b), w in weights.items():
            assert coordinator.graph.weight(a, b) == w
        # The log is poisoned: later appends refuse rather than leave a
        # seqno gap after the torn record.
        with pytest.raises(LiveUpdateError, match="failed on a previous"):
            coordinator.apply_batch(batch)
        assert coordinator.wal.stats()["failed"]

    def test_torn_write_recovers_to_pre_crash_state(
        self, tmp_path, graph, index
    ):
        plan = FaultPlan.parse("wal.torn_write:0.34", seed=23)
        coordinator, _ = recover_coordinator(
            tmp_path, graph, index, fault_plan=plan
        )
        mirror = graph.copy()
        torn = False
        for batch in _random_batches(graph, rounds=6, seed=23):
            try:
                _apply(coordinator, mirror, batch)
            except InjectedFault:
                torn = True
                break
        assert torn, "fault plan never fired"
        pre_crash = _overlay_key(coordinator)
        recovered, report = recover_coordinator(tmp_path, graph, index)
        assert report.torn_tail
        assert _overlay_key(recovered) == pre_crash
        _assert_parity(recovered, mirror, seed=24)


class TestRotation:
    def test_rebuild_rotates_and_compacts(self, tmp_path, graph, index):
        wal_dir = tmp_path / "wal"
        coordinator, _ = recover_coordinator(wal_dir, graph, index)
        mirror = graph.copy()
        for batch in _random_batches(graph, rounds=3, seed=29):
            _apply(coordinator, mirror, batch)
        new_index, base_seqno = coordinator.rebuild()
        base_path = tmp_path / "base-epoch2.bin"
        save_index(new_index, base_path, format="binary")
        coordinator.adopt_base(new_index, base_seqno, str(base_path))
        # Rotation compacted: only the new epoch file remains.
        files = WriteAheadLog.epoch_files(wal_dir)
        assert [epoch for epoch, _ in files] == [2]
        assert coordinator.live_index.state.epoch == 2

        # Post-rotation batches land in the new file and recovery from
        # the rotated base alone reproduces the exact live state.
        for batch in _random_batches(graph, rounds=2, seed=31):
            _apply(coordinator, mirror, batch)
        recovered, report = recover_coordinator(wal_dir, graph, index)
        assert report.epoch == 2
        assert report.replayed_batches == 2
        assert not report.base_fallback
        assert _overlay_key(recovered) == _overlay_key(coordinator)
        _assert_parity(recovered, mirror, seed=32)

    def test_in_memory_rotation_recovers_without_saved_base(
        self, tmp_path, graph, index
    ):
        """``adopt_base`` without a path: recovery re-derives the full
        diff against the cold-start index instead of reloading."""
        coordinator, _ = recover_coordinator(tmp_path, graph, index)
        mirror = graph.copy()
        for batch in _random_batches(graph, rounds=3, seed=37):
            _apply(coordinator, mirror, batch)
        new_index, base_seqno = coordinator.rebuild()
        coordinator.adopt_base(new_index, base_seqno)
        for batch in _random_batches(graph, rounds=2, seed=41):
            _apply(coordinator, mirror, batch)
        recovered, report = recover_coordinator(tmp_path, graph, index)
        assert report.epoch == 2
        assert report.seqno == coordinator.live_index.state.seqno
        assert not report.base_fallback
        _assert_parity(recovered, mirror, seed=42)

    def test_missing_saved_base_falls_back(self, tmp_path, graph, index):
        wal_dir = tmp_path / "wal"
        coordinator, _ = recover_coordinator(wal_dir, graph, index)
        mirror = graph.copy()
        for batch in _random_batches(graph, rounds=2, seed=43):
            _apply(coordinator, mirror, batch)
        new_index, base_seqno = coordinator.rebuild()
        base_path = tmp_path / "vanished.bin"
        save_index(new_index, base_path, format="binary")
        coordinator.adopt_base(new_index, base_seqno, str(base_path))
        base_path.unlink()
        recovered, report = recover_coordinator(wal_dir, graph, index)
        assert report.base_fallback
        assert report.epoch == 2
        _assert_parity(recovered, mirror, seed=44)


def _expected_batches(record_starts, total, cut):
    """Batch records wholly contained in the first ``cut`` bytes."""
    ends = record_starts[1:] + [total]
    complete = 0
    for start, end in zip(record_starts, ends):
        if end <= cut:
            complete += 1
    return max(0, complete - 1)  # minus the base record

"""Overlay semantics: immutable snapshots, poisoning, patched scans."""

import random

import pytest

from repro.core.ctl import CTLIndex
from repro.exceptions import IndexQueryError
from repro.graph.generators import road_network
from repro.live import LiveIndex, OverlayState, UpdateCoordinator
from repro.live.overlay import CLEAN
from repro.search.pairwise import spc_query


class TestOverlayState:
    def test_initial_is_empty(self):
        state = OverlayState.initial()
        assert state.epoch == 1
        assert state.seqno == 0
        assert state.entries == 0
        assert state.poisoned_vertices == 0
        assert state.pair_clean(3, 7, 99)

    def test_with_batch_merges_per_position(self):
        state = OverlayState.initial()
        one = state.with_batch({4: {0: (10, 2), 3: (7, 1)}})
        two = one.with_batch({4: {0: (9, 1)}, 5: {1: (2, 2)}})
        assert two.seqno == 2
        assert two.patches[4] == {0: (9, 1), 3: (7, 1)}
        assert two.patches[5] == {1: (2, 2)}
        # The older snapshots are untouched (readers may hold them).
        assert one.patches[4] == {0: (10, 2), 3: (7, 1)}
        assert 5 not in one.patches

    def test_none_unpatches_and_drops_empty_vertices(self):
        state = OverlayState.initial().with_batch({4: {0: (10, 2)}})
        cleared = state.with_batch({4: {0: None}})
        assert cleared.entries == 0
        assert 4 not in cleared.patches
        assert cleared.min_dirty.get(4, CLEAN) == CLEAN

    def test_min_dirty_tracks_lowest_patched_position(self):
        state = OverlayState.initial().with_batch({4: {7: (1, 1), 3: (2, 2)}})
        assert state.min_dirty[4] == 3
        # Clean below the dirty prefix, poisoned at or above it.
        assert state.pair_clean(4, 9, prefix=3)
        assert not state.pair_clean(4, 9, prefix=4)
        assert not state.pair_clean(9, 4, prefix=8)

    def test_seqno_bumps_even_for_empty_batch(self):
        state = OverlayState.initial()
        assert state.with_batch({}).seqno == 1


@pytest.fixture(scope="module")
def setting():
    graph = road_network(120, seed=5)
    index = CTLIndex.build(graph)
    coordinator = UpdateCoordinator(graph, index)
    return graph, coordinator


def _apply_some_updates(graph, coordinator, seed=0, rounds=3):
    rng = random.Random(seed)
    edges = [(u, v, w) for u, v, w, _ in graph.edges()]
    mirror = graph.copy()
    for _ in range(rounds):
        batch = [
            (u, v, rng.randint(1, 2 * max(w, 1)))
            for u, v, w in rng.sample(edges, 4)
        ]
        coordinator.apply_batch(batch)
        for a, b, w in batch:
            mirror.add_edge(a, b, w, mirror.count(a, b))
    return mirror


class TestLiveIndex:
    def test_clean_index_delegates(self, setting):
        graph, coordinator = setting
        live = coordinator.live_index
        assert live.name == "CTL+live"
        for s, t in [(0, 1), (5, 80), (3, 3)]:
            assert tuple(live.query(s, t)) == tuple(spc_query(graph, s, t))

    def test_unknown_vertex_raises_like_base(self, setting):
        _, coordinator = setting
        with pytest.raises(IndexQueryError):
            coordinator.live_index.query(0, 10**9)

    def test_patched_scan_matches_dijkstra(self):
        graph = road_network(120, seed=5)
        coordinator = UpdateCoordinator(graph, CTLIndex.build(graph))
        mirror = _apply_some_updates(graph, coordinator, seed=2)
        live = coordinator.live_index
        assert live.state.entries > 0, "updates produced no patches"
        rng = random.Random(3)
        vertices = sorted(graph.vertices())
        poisoned_seen = 0
        for _ in range(200):
            s, t = rng.choice(vertices), rng.choice(vertices)
            poisoned_seen += live.pair_poisoned(s, t)
            assert tuple(live.query(s, t)) == tuple(spc_query(mirror, s, t))
        assert poisoned_seen > 0, "workload never hit a poisoned pair"

    def test_query_batch_mixes_clean_and_poisoned(self):
        graph = road_network(120, seed=5)
        coordinator = UpdateCoordinator(graph, CTLIndex.build(graph))
        mirror = _apply_some_updates(graph, coordinator, seed=4)
        live = coordinator.live_index
        rng = random.Random(5)
        vertices = sorted(graph.vertices())
        pairs = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(300)
        ]
        got = live.query_batch(pairs)
        expected = [spc_query(mirror, s, t) for s, t in pairs]
        assert [tuple(r) for r in got] == [tuple(r) for r in expected]

    def test_query_with_stats_poisoned_path(self):
        graph = road_network(120, seed=5)
        coordinator = UpdateCoordinator(graph, CTLIndex.build(graph))
        mirror = _apply_some_updates(graph, coordinator, seed=6)
        live = coordinator.live_index
        vertices = sorted(graph.vertices())
        for s in vertices[:20]:
            for t in vertices[-5:]:
                stats = live.query_with_stats(s, t)
                assert tuple(stats.result) == tuple(spc_query(mirror, s, t))

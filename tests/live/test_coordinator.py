"""UpdateCoordinator: validation, atomic batches, rebuild-and-swap."""

import random
import time

import pytest

from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import EdgeError, LiveUpdateError
from repro.graph.generators import road_network
from repro.live import MAX_BATCH_LOG, UpdateCoordinator
from repro.search.pairwise import spc_query


@pytest.fixture()
def graph():
    return road_network(100, seed=7)


@pytest.fixture()
def coordinator(graph):
    return UpdateCoordinator(graph, CTLIndex.build(graph))


def _random_batches(graph, *, rounds, per_batch=4, seed=0):
    rng = random.Random(seed)
    edges = [(u, v, w) for u, v, w, _ in graph.edges()]
    for _ in range(rounds):
        yield [
            (u, v, rng.randint(1, 2 * max(w, 1)))
            for u, v, w in rng.sample(edges, per_batch)
        ]


def _assert_parity(coordinator, mirror, *, seed, samples=80):
    rng = random.Random(seed)
    vertices = sorted(mirror.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(samples)
    ]
    got = coordinator.live_index.query_batch(pairs)
    for (s, t), result in zip(pairs, got):
        assert tuple(result) == tuple(spc_query(mirror, s, t)), (s, t)


class TestValidation:
    def test_rejects_non_ctl_index(self, graph):
        with pytest.raises(LiveUpdateError, match="CTL"):
            UpdateCoordinator(graph, CTLSIndex.build(graph))

    def test_rejects_unknown_edge(self, coordinator):
        with pytest.raises(EdgeError):
            coordinator.apply_batch([(0, 10**9, 5)])

    def test_rejects_non_positive_weight(self, coordinator, graph):
        u, v, _w, _c = next(iter(graph.edges()))
        with pytest.raises(EdgeError):
            coordinator.apply_batch([(u, v, 0)])

    def test_rejects_malformed_updates(self, coordinator):
        for bad in [[(1, 2)], [(1, 2, 3, 4)], [(True, 2, 3)], "nope", [17]]:
            with pytest.raises(LiveUpdateError):
                coordinator.validate_batch(bad)

    def test_validation_is_atomic(self, coordinator, graph):
        """One bad update rejects the whole batch before any write."""
        u, v, w, _c = next(iter(graph.edges()))
        before = coordinator.live_index.state.seqno
        with pytest.raises(EdgeError):
            coordinator.apply_batch([(u, v, w + 1), (0, 10**9, 5)])
        assert coordinator.live_index.state.seqno == before
        assert coordinator.graph.weight(u, v) == w


class TestApplyBatch:
    def test_report_fields(self, coordinator, graph):
        u, v, w, _c = next(iter(graph.edges()))
        report = coordinator.apply_batch([(u, v, w + 3), (u, v, w + 3)])
        assert report.seqno == 1
        assert report.epoch == 1
        assert report.submitted_edges == 2
        assert report.updated_edges == 1  # deduplicated no-op second write
        assert report.repaired_nodes > 0
        assert u in report.changed_vertices or v in report.changed_vertices \
            or report.overlay_entries == 0

    def test_noop_batch_still_bumps_seqno(self, coordinator, graph):
        u, v, w, _c = next(iter(graph.edges()))
        report = coordinator.apply_batch([(u, v, w)])
        assert report.updated_edges == 0
        assert report.seqno == 1
        assert report.overlay_entries == 0

    def test_parity_across_stream(self, coordinator, graph):
        mirror = graph.copy()
        for i, batch in enumerate(_random_batches(graph, rounds=5, seed=1)):
            coordinator.apply_batch(batch)
            for a, b, w in batch:
                mirror.add_edge(a, b, w, mirror.count(a, b))
            _assert_parity(coordinator, mirror, seed=100 + i)

    def test_revert_shrinks_overlay(self, coordinator, graph):
        """Undoing a batch un-patches entries instead of stacking them."""
        original = [(u, v, w) for u, v, w, _ in graph.edges()][:4]
        changed = [(u, v, w + 5) for u, v, w in original]
        coordinator.apply_batch(changed)
        grown = coordinator.live_index.state.entries
        assert grown > 0
        coordinator.apply_batch(original)
        assert coordinator.live_index.state.entries == 0
        _assert_parity(coordinator, graph, seed=9)


class TestRebuild:
    def test_rebuild_and_adopt_clears_overlay(self, coordinator, graph):
        mirror = graph.copy()
        for batch in _random_batches(graph, rounds=3, seed=2):
            coordinator.apply_batch(batch)
            for a, b, w in batch:
                mirror.add_edge(a, b, w, mirror.count(a, b))
        assert coordinator.live_index.state.entries > 0
        new_index, base_seqno = coordinator.rebuild()
        info = coordinator.adopt_base(new_index, base_seqno)
        assert info["epoch"] == 2
        assert info["replayed_edges"] == 0
        assert coordinator.live_index.state.entries == 0
        _assert_parity(coordinator, mirror, seed=20)

    def test_adopt_replays_post_snapshot_batches(self, coordinator, graph):
        mirror = graph.copy()
        batches = list(_random_batches(graph, rounds=4, seed=3))
        for batch in batches[:2]:
            coordinator.apply_batch(batch)
            for a, b, w in batch:
                mirror.add_edge(a, b, w, mirror.count(a, b))
        new_index, base_seqno = coordinator.rebuild()
        # Updates landing while the rebuild runs must survive the swap.
        for batch in batches[2:]:
            coordinator.apply_batch(batch)
            for a, b, w in batch:
                mirror.add_edge(a, b, w, mirror.count(a, b))
        info = coordinator.adopt_base(new_index, base_seqno)
        assert info["replayed_edges"] > 0
        assert not info["full_diff"]
        assert coordinator.live_index.state.epoch == 2
        # seqno is continuous across the swap: clients see one timeline.
        assert coordinator.live_index.state.seqno == len(batches)
        _assert_parity(coordinator, mirror, seed=30)

    def test_adopt_falls_back_to_full_diff_past_log_floor(
        self, coordinator, graph
    ):
        new_index, base_seqno = coordinator.rebuild()
        mirror = graph.copy()
        for batch in _random_batches(graph, rounds=2, seed=4):
            coordinator.apply_batch(batch)
            for a, b, w in batch:
                mirror.add_edge(a, b, w, mirror.count(a, b))
        # Simulate log truncation: the snapshot predates the floor.
        coordinator._log_floor = coordinator.live_index.state.seqno + 1
        info = coordinator.adopt_base(new_index, base_seqno)
        assert info["full_diff"]
        _assert_parity(coordinator, mirror, seed=40)

    def test_log_is_bounded(self):
        assert MAX_BATCH_LOG >= 1024

    def test_should_rebuild_threshold(self, graph):
        coordinator = UpdateCoordinator(
            graph, CTLIndex.build(graph), overlay_threshold=1
        )
        assert not coordinator.should_rebuild()
        for batch in _random_batches(graph, rounds=1, seed=5):
            coordinator.apply_batch(batch)
        assert coordinator.should_rebuild()


class TestFreshnessFallback:
    def test_overdue_repair_routes_to_dijkstra(self, graph):
        coordinator = UpdateCoordinator(
            graph, CTLIndex.build(graph), freshness_s=0.001
        )
        live = coordinator.live_index
        assert live.stale_router is not None
        # Force the overdue condition: a pending repair older than the
        # deadline, covering every block.
        coordinator._pending = (time.monotonic() - 1.0, 0)
        assert live.stale_router.overdue()
        vertices = sorted(graph.vertices())
        rng = random.Random(6)
        for _ in range(20):
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert tuple(live.query(s, t)) == tuple(spc_query(graph, s, t))
        coordinator._pending = None
        assert not live.stale_router.overdue()

    def test_stats_shape(self, coordinator):
        stats = coordinator.stats()
        for key in (
            "epoch",
            "seqno",
            "overlay_entries",
            "poisoned_vertices",
            "applied_batches",
            "applied_edges",
            "rebuilds",
            "rebuild_due",
        ):
            assert key in stats

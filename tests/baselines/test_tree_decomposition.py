"""Tests for minimum-degree elimination tree decomposition."""

from repro.baselines.tree_decomposition import minimum_degree_elimination
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.graph import Graph
from repro.search.pairwise import spc_query


class TestElimination:
    def test_path_order_prefers_low_degree(self):
        td = minimum_degree_elimination(path_graph(4))
        # Degree-1 endpoints go first.
        assert td.order[0] in (0, 3)
        assert len(td.order) == 4
        assert set(td.order) == {0, 1, 2, 3}

    def test_bags_reference_later_vertices(self):
        td = minimum_degree_elimination(grid_graph(3, 3))
        for v, bag in td.bags.items():
            for u, _w, _c in bag:
                assert td.order_of[u] > td.order_of[v]

    def test_single_root_for_connected(self):
        td = minimum_degree_elimination(grid_graph(3, 3))
        roots = [v for v in td.order if td.parent[v] is None]
        assert len(roots) == 1
        assert roots[0] == td.order[-1]

    def test_depth_consistency(self):
        td = minimum_degree_elimination(cycle_graph(10))
        for v in td.order:
            p = td.parent[v]
            if p is None:
                assert td.depth[v] == 0
            else:
                assert td.depth[v] == td.depth[p] + 1

    def test_parent_is_first_removed_bag_neighbor(self):
        td = minimum_degree_elimination(grid_graph(3, 3))
        for v, bag in td.bags.items():
            if not bag:
                continue
            expected = min((u for u, _w, _c in bag), key=td.order_of.__getitem__)
            assert td.parent[v] == expected

    def test_disconnected_graph_single_tree(self):
        g = Graph.from_edges([(0, 1, 1), (2, 3, 1)])
        td = minimum_degree_elimination(g)
        roots = [v for v in td.order if td.parent[v] is None]
        assert len(roots) == 1

    def test_height_and_width(self):
        td = minimum_degree_elimination(path_graph(10))
        assert td.width == 2  # paths have treewidth 1
        assert td.height >= 2

    def test_children_map(self):
        td = minimum_degree_elimination(path_graph(4))
        children = td.children()
        total_children = sum(len(c) for c in children.values())
        assert total_children == 3  # n - 1 edges in the vertex tree


class TestContractionPreservesCounts:
    def test_shortcuts_preserve_spc(self, diamond):
        # Eliminate on a copy manually: the bag edges of the first
        # eliminated vertex must keep distances/counts intact between
        # its neighbours.
        td = minimum_degree_elimination(diamond)
        first = td.order[0]
        bag = td.bags[first]
        # Reconstruct the contracted graph after removing `first`.
        contracted = diamond.copy()
        from repro.graph.spc_graph import add_shortcut

        neighbours = bag
        contracted.remove_vertex(first)
        for i, (u, w_u, c_u) in enumerate(neighbours):
            for u2, w_u2, c_u2 in neighbours[i + 1:]:
                add_shortcut(contracted, u, u2, w_u + w_u2, c_u * c_u2)
        for s in contracted.vertices():
            for t in contracted.vertices():
                if s < t:
                    assert tuple(spc_query(contracted, s, t)) == tuple(
                        spc_query(diamond, s, t)
                    )

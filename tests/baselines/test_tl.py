"""Tests for the TL-Index baseline."""

import itertools
import random

import pytest

from repro.baselines.tl import TLIndex
from repro.exceptions import IndexQueryError
from repro.graph.generators import cycle_graph, grid_graph
from repro.graph.graph import Graph
from repro.search.pairwise import spc_query
from repro.types import INF


class TestTLCorrectness:
    def test_exhaustive_small_grid(self):
        g = grid_graph(4, 3)
        index = TLIndex.build(g)
        for s, t in itertools.product(range(12), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_cycle(self):
        g = cycle_graph(9)
        index = TLIndex.build(g)
        for s, t in itertools.product(range(9), repeat=2):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))

    def test_road_network(self, road_graph, road_pairs):
        index = TLIndex.build(road_graph)
        for s, t in road_pairs:
            assert tuple(index.query(s, t)) == tuple(
                spc_query(road_graph, s, t)
            )

    def test_disconnected(self, two_components):
        index = TLIndex.build(two_components)
        result = index.query(0, 3)
        assert result.distance == INF
        assert result.count == 0
        assert tuple(index.query(0, 1)) == (5, 1)

    def test_same_vertex(self, diamond):
        index = TLIndex.build(diamond)
        assert tuple(index.query(2, 2)) == (0, 1)

    def test_unknown_vertex(self, diamond):
        index = TLIndex.build(diamond)
        with pytest.raises(IndexQueryError):
            index.query(0, 77)
        with pytest.raises(IndexQueryError):
            index.query(77, 77)


class TestTLStats:
    def test_stats_shape(self, road_graph):
        index = TLIndex.build(road_graph)
        st = index.stats()
        assert st.num_vertices == road_graph.num_vertices
        assert st.height >= 1
        assert st.width >= 2
        assert st.total_label_entries > road_graph.num_vertices
        assert st.size_bytes == 8 * st.total_label_entries
        assert index.build_stats.seconds > 0

    def test_visited_labels_counts_prefix(self, road_graph, road_pairs):
        index = TLIndex.build(road_graph)
        for s, t in road_pairs[:20]:
            if s == t:
                continue
            stats = index.query_with_stats(s, t)
            assert stats.visited_labels >= 1
            assert stats.visited_labels <= index.stats().height

    def test_distance_and_count_helpers(self, diamond):
        index = TLIndex.build(diamond)
        assert index.distance(0, 3) == 2
        assert index.count(0, 3) == 2

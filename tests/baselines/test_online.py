"""Tests for the index-free online baseline."""

import pytest

from repro.baselines.online import OnlineSPC
from repro.exceptions import IndexQueryError
from repro.search.pairwise import spc_query
from repro.types import INF


class TestOnlineSPC:
    def test_matches_oracle(self, diamond):
        online = OnlineSPC.build(diamond)
        assert tuple(online.query(0, 3)) == (2, 2)
        assert tuple(online.query(1, 1)) == (0, 1)

    def test_disconnected(self, two_components):
        online = OnlineSPC.build(two_components)
        result = online.query(0, 2)
        assert result.distance == INF and result.count == 0

    def test_stats_are_zero_index(self, diamond):
        online = OnlineSPC.build(diamond)
        st = online.stats()
        assert st.size_bytes == 0
        assert st.total_label_entries == 0

    def test_visited_counts_settled(self, road_graph, road_pairs):
        online = OnlineSPC.build(road_graph)
        s, t = road_pairs[0]
        stats = online.query_with_stats(s, t)
        assert tuple(stats.result) == tuple(spc_query(road_graph, s, t))
        if s != t:
            assert stats.visited_labels >= 1

    def test_unknown_vertex(self, diamond):
        online = OnlineSPC.build(diamond)
        with pytest.raises(IndexQueryError):
            online.query(0, 99)

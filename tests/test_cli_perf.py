"""CLI tests for the performance-telemetry surface.

Covers the observability additions to ``repro-spc``: ``build
--progress`` (live phase lines + embedded build provenance), ``stats``
provenance reporting, ``profile --flame``, ``bench-report`` exit
codes, and ``top --once`` failing fast with a one-line error when the
target is unreachable or not speaking HTTP.
"""

import socket
import threading

import pytest

from repro.cli import main
from repro.graph.generators import grid_graph
from repro.graph.io import write_dimacs
from repro.obs.perf import PerfSuite


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "net.gr"
    write_dimacs(grid_graph(4, 4), path)
    return path


class TestBuildProgress:
    def test_progress_prints_nodes_and_phases(
        self, tmp_path, graph_file, capsys
    ):
        index_path = tmp_path / "idx.json"
        assert main(
            ["build", str(graph_file), str(index_path), "--progress"]
        ) == 0
        out = capsys.readouterr().out
        assert "[build] node" in out
        assert "[build] load-graph" in out
        assert "[build] build" in out
        assert "[build] serialize" in out
        assert "partition" in out  # fine-span phase breakdown

    def test_build_embeds_provenance_for_stats(
        self, tmp_path, graph_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GIT_SHA", "0123456789abcdef")
        index_path = tmp_path / "idx.bin"
        assert main(
            ["build", str(graph_file), str(index_path), "--format", "binary"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "v4" in out
        assert "section bytes:" in out
        assert "built:" in out and "ctls in" in out
        assert "0123456789ab" in out  # truncated sha
        assert "label throughput:" in out


class TestProfileFlame:
    def test_flame_writes_collapsed_stacks(
        self, tmp_path, graph_file, capsys
    ):
        index_path = tmp_path / "idx.json"
        assert main(["build", str(graph_file), str(index_path)]) == 0
        pairs_path = tmp_path / "pairs.txt"
        pairs_path.write_text("0 15\n3 12\n1 14\n")
        flame_path = tmp_path / "profile.collapsed"
        assert main(
            [
                "profile", str(index_path), str(pairs_path),
                "--repeats", "50", "--flame", str(flame_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert str(flame_path) in out
        text = flame_path.read_text()
        for line in text.strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and frames


class TestBenchReport:
    def _write_suite(self, directory, value):
        suite = PerfSuite("demo")
        suite.record("q", [value], unit="us", dataset="NY")
        suite.write(directory)

    def test_identical_run_passes(self, tmp_path, capsys):
        current, baseline = tmp_path / "cur", tmp_path / "base"
        current.mkdir(), baseline.mkdir()
        self._write_suite(current, 10.0)
        self._write_suite(baseline, 10.0)
        assert main(
            [
                "bench-report",
                "--current", str(current),
                "--baseline", str(baseline),
            ]
        ) == 0
        assert "ok" in capsys.readouterr().out

    def test_double_latency_fails(self, tmp_path, capsys):
        current, baseline = tmp_path / "cur", tmp_path / "base"
        current.mkdir(), baseline.mkdir()
        self._write_suite(current, 20.0)
        self._write_suite(baseline, 10.0)
        assert main(
            [
                "bench-report",
                "--current", str(current),
                "--baseline", str(baseline),
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "FAIL" in out

    def test_missing_baseline_dir_is_an_error(self, tmp_path, capsys):
        current = tmp_path / "cur"
        current.mkdir()
        self._write_suite(current, 10.0)
        assert main(
            [
                "bench-report",
                "--current", str(current),
                "--baseline", str(tmp_path / "nope"),
            ]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_bench_files_is_an_error(self, tmp_path, capsys):
        current, baseline = tmp_path / "cur", tmp_path / "base"
        current.mkdir(), baseline.mkdir()
        self._write_suite(baseline, 10.0)
        assert main(
            [
                "bench-report",
                "--current", str(current),
                "--baseline", str(baseline),
            ]
        ) == 1
        assert "error:" in capsys.readouterr().err


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestTopUnreachable:
    def test_connection_refused_exits_one_with_message(self, capsys):
        port = _free_port()  # bound then released: nothing listens
        assert main(["top", "--port", str(port), "--once"]) == 1
        err = capsys.readouterr().err
        assert "cannot reach" in err
        assert err.count("\n") == 1, "one-line error expected"

    def test_non_http_peer_exits_one_with_message(self, capsys):
        # A port that accepts TCP but does not speak HTTP: the client
        # raises BadStatusLine (an http.client.HTTPException), which
        # must produce the same one-line error, not a traceback.
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def garbage_peer():
            conn, _ = server.accept()
            conn.sendall(b"I AM NOT HTTP\n")
            conn.close()

        worker = threading.Thread(target=garbage_peer, daemon=True)
        worker.start()
        try:
            assert main(["top", "--port", str(port), "--once"]) == 1
            err = capsys.readouterr().err
            assert "cannot reach" in err
        finally:
            server.close()

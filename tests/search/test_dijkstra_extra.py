"""Additional SSSPC behaviours: target stopping, weight shapes, ties."""

import itertools

from repro.graph.graph import Graph
from repro.search.dijkstra import dijkstra, ssspc


class TestTargetStop:
    def test_count_final_at_target(self):
        # Multiple equal predecessors must all be folded in before the
        # target is reported, even with early exit.
        g = Graph()
        for middle in (1, 2, 3):
            g.add_edge(0, middle, 1)
            g.add_edge(middle, 4, 1)
        g.add_edge(4, 5, 10)  # beyond the target
        dist, count = ssspc(g, 0, target=4)
        assert dist[4] == 2
        assert count[4] == 3

    def test_stop_does_not_expand_past_target(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        dist = dijkstra(g, 0, target=1)
        assert 3 not in dist


class TestTieShapes:
    def test_long_tie_chain(self):
        # Two parallel routes of equal total weight but different hop
        # counts must both be counted.
        g = Graph.from_edges(
            [(0, 1, 1), (1, 2, 1), (2, 5, 1), (0, 3, 2), (3, 5, 1)]
        )
        dist, count = ssspc(g, 0)
        assert dist[5] == 3
        assert count[5] == 2

    def test_asymmetric_weights_no_false_ties(self):
        g = Graph.from_edges([(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 4)])
        _dist, count = ssspc(g, 0)
        assert count[3] == 1  # 4 < 5

    def test_all_pairs_symmetry(self):
        g = Graph.from_edges(
            [(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 0, 2), (0, 2, 3)]
        )
        for s, t in itertools.combinations(range(4), 2):
            ds, cs = ssspc(g, s)
            dt, ct = ssspc(g, t)
            assert ds[t] == dt[s]
            assert cs[t] == ct[s]


class TestMixedWeightTypes:
    def test_int_and_float_weights(self):
        g = Graph()
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 0.5)
        dist, count = ssspc(g, 0)
        assert dist[2] == 1.5
        assert count[2] == 1

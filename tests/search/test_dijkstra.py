"""Tests for Dijkstra and the SSSPC counting search."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.search.dijkstra import (
    dijkstra,
    shortest_path_tree_edges,
    ssspc,
    ssspc_multi_target,
)


class TestDijkstra:
    def test_distances_on_path(self, path5):
        dist = dijkstra(path5, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_absent(self, two_components):
        dist = dijkstra(two_components, 0)
        assert 2 not in dist and 3 not in dist

    def test_missing_source(self, path5):
        with pytest.raises(VertexNotFoundError):
            dijkstra(path5, 99)

    def test_excluded_vertices(self, cycle6):
        dist = dijkstra(cycle6, 0, excluded={1})
        # Forced to go the long way around.
        assert dist[2] == 4

    def test_target_early_exit(self, path5):
        dist = dijkstra(path5, 0, target=2)
        assert dist[2] == 2

    def test_weighted_choice(self, triangle):
        dist = dijkstra(triangle, 0)
        assert dist[2] == 2  # both the direct edge and via 1


class TestSSSPC:
    def test_counts_on_diamond(self, diamond):
        dist, count = ssspc(diamond, 0)
        assert dist[3] == 2
        assert count[3] == 2

    def test_counts_on_triangle_tie(self, triangle):
        dist, count = ssspc(triangle, 0)
        assert dist[2] == 2
        assert count[2] == 2  # direct edge (2) and via vertex 1 (1+1)

    def test_grid_binomial_counts(self):
        g = grid_graph(4, 4)
        _dist, count = ssspc(g, 0)
        assert count[15] == 20  # C(6, 3)

    def test_count_weights_multiply(self):
        g = Graph()
        g.add_edge(0, 1, 1, count=3)
        g.add_edge(1, 2, 1, count=2)
        _dist, count = ssspc(g, 0)
        assert count[2] == 6

    def test_count_weights_add_on_tie(self):
        g = Graph()
        g.add_edge(0, 1, 2, count=3)
        g.add_edge(0, 2, 1)
        g.add_edge(2, 1, 1, count=4)
        _dist, count = ssspc(g, 0)
        assert count[1] == 7

    def test_excluded_affect_counts(self, diamond):
        _dist, count = ssspc(diamond, 0, excluded={1})
        assert count[3] == 1

    def test_terminal_vertices_not_traversed(self, path5):
        dist, _count = ssspc(path5, 0, terminal={2})
        assert dist[2] == 2  # reachable
        assert 3 not in dist  # but not traversed

    def test_terminal_source_still_expands(self, path5):
        dist, _count = ssspc(path5, 2, terminal={2})
        assert dist == {0: 2, 1: 1, 2: 0, 3: 1, 4: 2}

    def test_source_label(self, path5):
        dist, count = ssspc(path5, 3)
        assert dist[3] == 0
        assert count[3] == 1


class TestSSSPCMultiTarget:
    def test_stops_after_targets(self, path5):
        dist, count = ssspc_multi_target(path5, 0, targets=[1, 2])
        assert dist[1] == 1 and dist[2] == 2
        assert count[2] == 1

    def test_counts_final_at_stop(self, diamond):
        _dist, count = ssspc_multi_target(diamond, 0, targets=[3])
        assert count[3] == 2

    def test_empty_targets(self, path5):
        dist, _count = ssspc_multi_target(path5, 0, targets=[])
        assert dist[0] == 0

    def test_unreachable_target_terminates(self, two_components):
        dist, _count = ssspc_multi_target(two_components, 0, targets=[3])
        assert 3 not in dist


class TestShortestPathTree:
    def test_predecessors_on_diamond(self, diamond):
        parents = shortest_path_tree_edges(diamond, 0)
        assert sorted(parents[3]) == [1, 2]
        assert parents[0] == []

"""Tests for pairwise queries and the brute-force oracle."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph
from repro.search.pairwise import (
    all_pairs_spc,
    count_paths_bruteforce,
    distance_query,
    enumerate_shortest_paths,
    spc_query,
)
from repro.types import INF


class TestSpcQuery:
    def test_same_vertex(self, diamond):
        assert tuple(spc_query(diamond, 1, 1)) == (0, 1)

    def test_diamond(self, diamond):
        assert tuple(spc_query(diamond, 0, 3)) == (2, 2)

    def test_disconnected(self, two_components):
        result = spc_query(two_components, 0, 3)
        assert result.distance == INF
        assert result.count == 0
        assert not result.connected

    def test_missing_vertices(self, diamond):
        with pytest.raises(VertexNotFoundError):
            spc_query(diamond, 0, 99)
        with pytest.raises(VertexNotFoundError):
            spc_query(diamond, 99, 0)

    def test_distance_query(self, diamond, two_components):
        assert distance_query(diamond, 0, 3) == 2
        assert distance_query(diamond, 2, 2) == 0
        assert distance_query(two_components, 0, 2) == INF


class TestBruteforceOracle:
    def test_matches_ssspc_on_grid(self):
        g = grid_graph(3, 3)
        for s in range(9):
            for t in range(9):
                assert tuple(count_paths_bruteforce(g, s, t)) == tuple(
                    spc_query(g, s, t)
                )

    def test_respects_count_weights(self):
        g = Graph()
        g.add_edge(0, 1, 1, count=3)
        g.add_edge(1, 2, 1, count=2)
        assert tuple(count_paths_bruteforce(g, 0, 2)) == (2, 6)

    def test_disconnected(self, two_components):
        result = count_paths_bruteforce(two_components, 0, 2)
        assert result.count == 0

    def test_missing_vertex(self, diamond):
        with pytest.raises(VertexNotFoundError):
            count_paths_bruteforce(diamond, 0, 42)


class TestAllPairs:
    def test_covers_all_sources(self, diamond):
        table = all_pairs_spc(diamond)
        assert set(table) == {0, 1, 2, 3}
        dist, count = table[0]
        assert dist[3] == 2 and count[3] == 2


class TestEnumeratePaths:
    def test_diamond_paths(self, diamond):
        paths = sorted(enumerate_shortest_paths(diamond, 0, 3))
        assert paths == [[0, 1, 3], [0, 2, 3]]

    def test_limit(self, diamond):
        paths = list(enumerate_shortest_paths(diamond, 0, 3, limit=1))
        assert len(paths) == 1

    def test_unreachable_yields_nothing(self, two_components):
        assert list(enumerate_shortest_paths(two_components, 0, 3)) == []

    def test_single_path(self, path5):
        assert list(enumerate_shortest_paths(path5, 0, 4)) == [[0, 1, 2, 3, 4]]

"""Tests for double-sweep diameter heuristics."""

import pytest

from repro.graph.generators import path_graph, road_network
from repro.graph.graph import Graph
from repro.search.sweep import approximate_diameter, distant_endpoints, farthest_vertex


class TestFarthestVertex:
    def test_path_end(self, path5):
        far, dist = farthest_vertex(path5, 0)
        assert (far, dist) == (4, 4)

    def test_middle_source(self, path5):
        far, dist = farthest_vertex(path5, 2)
        assert dist == 2
        assert far in (0, 4)


class TestDistantEndpoints:
    def test_path_finds_diameter(self):
        g = path_graph(30)
        a, b, dist = distant_endpoints(g)
        assert dist == 29
        assert {a, b} == {0, 29}

    def test_singleton(self):
        g = Graph()
        g.add_vertex(7)
        assert distant_endpoints(g) == (7, 7, 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            distant_endpoints(Graph())

    def test_deterministic(self):
        g = road_network(300, seed=1)
        assert distant_endpoints(g) == distant_endpoints(g)


class TestApproximateDiameter:
    def test_lower_bound_close_on_roads(self):
        g = road_network(300, seed=1)
        estimate = approximate_diameter(g)
        assert estimate > 0
        # The double sweep is a lower bound, so it never exceeds the
        # sum of all weights (a crude upper bound).
        assert estimate <= sum(w for _u, _v, w, _c in g.edges())

"""Cross-tests: CSR-based SSSPC must agree with the dict reference."""

import random

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, power_grid_network, road_network
from repro.search.dijkstra import ssspc
from repro.search.fast import ssspc_csr, ssspc_csr_arrays
from repro.types import INF


@pytest.mark.parametrize(
    "graph_factory",
    [
        lambda: grid_graph(5, 5),
        lambda: road_network(300, seed=2),
        lambda: power_grid_network(200, seed=3),
    ],
    ids=["grid", "road", "power"],
)
class TestAgainstReference:
    def test_plain_search(self, graph_factory):
        g = graph_factory()
        csr = CSRGraph(g)
        for source in sorted(g.vertices())[::37]:
            want = ssspc(g, source)
            got = ssspc_csr(csr, source)
            assert got == want

    def test_excluded(self, graph_factory):
        g = graph_factory()
        csr = CSRGraph(g)
        rng = random.Random(1)
        vertices = sorted(g.vertices())
        excluded = set(rng.sample(vertices, len(vertices) // 10))
        source = next(v for v in vertices if v not in excluded)
        assert ssspc_csr(csr, source, excluded=excluded) == ssspc(
            g, source, excluded=excluded
        )

    def test_terminal(self, graph_factory):
        g = graph_factory()
        csr = CSRGraph(g)
        rng = random.Random(2)
        vertices = sorted(g.vertices())
        terminal = set(rng.sample(vertices, len(vertices) // 8))
        source = vertices[0]
        assert ssspc_csr(csr, source, terminal=terminal) == ssspc(
            g, source, terminal=terminal
        )


class TestArraysVariant:
    def test_matches_map_variant(self):
        g = road_network(200, seed=4)
        csr = CSRGraph(g)
        source = sorted(g.vertices())[0]
        dist_map, count_map = ssspc_csr(csr, source)
        dist, count = ssspc_csr_arrays(csr, csr.dense_id(source))
        for idx, v in enumerate(csr.vertices):
            if v in dist_map:
                assert dist[idx] == dist_map[v]
                assert count[idx] == count_map[v]
            else:
                assert dist[idx] is None

    def test_banned_mask(self, diamond):
        csr = CSRGraph(diamond)
        banned = [False] * csr.num_vertices
        banned[csr.dense_id(1)] = True
        dist, count = ssspc_csr_arrays(csr, csr.dense_id(0), banned=banned)
        assert dist[csr.dense_id(3)] == 2
        assert count[csr.dense_id(3)] == 1
        assert dist[csr.dense_id(1)] is None


class TestEngineParity:
    def test_ctl_engines_identical(self):
        from repro.core.ctl import CTLIndex

        g = road_network(250, seed=6)
        a = CTLIndex.build(g, engine="dict")
        b = CTLIndex.build(g, engine="csr")
        assert a.labels.dist == b.labels.dist
        assert a.labels.count == b.labels.count

    @pytest.mark.parametrize("strategy", ["basic", "pruned", "cutsearch"])
    def test_ctls_engines_identical(self, strategy):
        from repro.core.ctls import CTLSIndex

        g = road_network(250, seed=6)
        a = CTLSIndex.build(g, engine="dict", strategy=strategy)
        b = CTLSIndex.build(g, engine="csr", strategy=strategy)
        assert a.labels.dist == b.labels.dist
        assert a.labels.count == b.labels.count

    def test_unknown_engine_rejected(self, diamond):
        from repro.core.ctl import CTLIndex
        from repro.core.ctls import CTLSIndex
        from repro.exceptions import IndexBuildError

        with pytest.raises(IndexBuildError):
            CTLIndex.build(diamond, engine="gpu")
        with pytest.raises(IndexBuildError):
            CTLSIndex.build(diamond, engine="gpu")

"""Tests for BalancedCut and region growing."""

import pytest

from repro.graph.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    road_network,
)
from repro.graph.graph import Graph
from repro.partition.balanced_cut import balanced_cut
from repro.partition.grow import closed_neighborhood, grow_region


def assert_valid_partition(graph, part):
    left, cut, right = set(part.left), set(part.cut), set(part.right)
    # Disjoint cover.
    assert not (left & cut) and not (left & right) and not (cut & right)
    assert left | cut | right == set(graph.vertices())
    # No edge crosses L-R directly.
    for u, v, _w, _c in graph.edges():
        assert not ((u in left and v in right) or (u in right and v in left))


class TestGrowRegion:
    def test_grows_nearest(self, path5):
        region = grow_region(path5, 0, 3)
        assert region == {0, 1, 2}

    def test_respects_forbidden(self, path5):
        region = grow_region(path5, 0, 5, forbidden={2})
        assert region == {0, 1}

    def test_forbidden_source(self, path5):
        assert grow_region(path5, 0, 3, forbidden={0}) == set()

    def test_closed_neighborhood(self, path5):
        assert closed_neighborhood(path5, {1}) == {0, 1, 2}


class TestBalancedCut:
    def test_invalid_beta(self, path5):
        with pytest.raises(ValueError):
            balanced_cut(path5, beta=0.9)
        with pytest.raises(ValueError):
            balanced_cut(path5, beta=0)

    def test_tiny_graph_degenerate(self):
        g = path_graph(3)
        part = balanced_cut(g, leaf_size=4)
        assert part.is_degenerate
        assert set(part.cut) == {0, 1, 2}

    def test_path_partition(self):
        g = path_graph(40)
        part = balanced_cut(g)
        assert_valid_partition(g, part)
        assert len(part.cut) == 1
        assert min(len(part.left), len(part.right)) >= 4

    def test_grid_partition(self):
        g = grid_graph(10, 10)
        part = balanced_cut(g)
        assert_valid_partition(g, part)
        assert len(part.cut) <= 12
        assert min(len(part.left), len(part.right)) >= 10

    def test_road_network_partition(self):
        g = road_network(500, seed=2)
        part = balanced_cut(g)
        assert_valid_partition(g, part)
        assert len(part.cut) < 30

    def test_complete_graph_degenerates(self):
        g = complete_graph(8)
        part = balanced_cut(g, leaf_size=4)
        # No useful vertex cut exists; every vertex lands in the cut
        # or the partition is still structurally valid.
        assert_valid_partition(g, part)

    def test_disconnected_input(self):
        g = Graph.from_edges(
            [(i, i + 1, 1) for i in range(20)]
            + [(100 + i, 101 + i, 1) for i in range(10)]
        )
        part = balanced_cut(g)
        assert_valid_partition(g, part)
        # The small component must land wholly on one side.
        small = {100 + i for i in range(11)}
        assert small <= set(part.left) or small <= set(part.right)

    def test_deterministic(self):
        g = road_network(300, seed=9)
        assert balanced_cut(g) == balanced_cut(g)

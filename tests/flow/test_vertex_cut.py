"""Tests for minimum vertex cuts via vertex splitting."""

import pytest

from repro.flow.vertex_cut import (
    min_vertex_cut_between_regions,
    min_vertex_cut_pair,
)
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.graph import Graph
from repro.search.dijkstra import dijkstra


class TestPairCut:
    def test_path_cut_is_single_vertex(self):
        g = path_graph(5)
        cut = min_vertex_cut_pair(g, 0, 4)
        assert len(cut) == 1

    def test_cycle_cut_is_two(self):
        cut = min_vertex_cut_pair(cycle_graph(8), 0, 4)
        assert len(cut) == 2

    def test_grid_corner_cut_is_its_neighbors(self):
        g = grid_graph(3, 5)
        cut = min_vertex_cut_pair(g, 0, 14)
        assert cut == [1, 5]  # the corner's two neighbours

    def test_adjacent_vertices_rejected(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            min_vertex_cut_pair(g, 0, 1)

    def test_cut_disconnects(self):
        g = grid_graph(4, 4)
        cut = min_vertex_cut_pair(g, 0, 15)
        dist = dijkstra(g, 0, excluded=set(cut))
        assert 15 not in dist


class TestRegionCut:
    def test_regions_with_middle(self):
        g = path_graph(7)
        cut = min_vertex_cut_between_regions(g, [0, 1], [5, 6], [2, 3, 4])
        assert len(cut) == 1
        assert cut[0] in (2, 3, 4)

    def test_adjacent_regions_raise(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            min_vertex_cut_between_regions(g, [0, 1], [2, 3], [])

    def test_disconnected_regions_zero_cut(self):
        g = Graph.from_edges([(0, 1, 1), (2, 3, 1)])
        cut = min_vertex_cut_between_regions(g, [0, 1], [2, 3], [])
        assert cut == []

    def test_cut_is_minimum(self):
        # Two disjoint 0-..-9 routes => min cut 2.
        g = Graph.from_edges(
            [
                (0, 1, 1), (1, 2, 1), (2, 9, 1),
                (0, 3, 1), (3, 4, 1), (4, 9, 1),
            ]
        )
        cut = min_vertex_cut_between_regions(g, [0], [9], [1, 2, 3, 4])
        assert len(cut) == 2

"""Tests for the flow network and Dinitz max-flow."""

import pytest

from repro.flow.dinitz import max_flow, residual_reachable
from repro.flow.network import FlowNetwork


def test_node_ids_are_stable():
    net = FlowNetwork()
    a = net.node_id("a")
    assert net.node_id("a") == a
    assert net.has_node("a")
    assert not net.has_node("b")
    assert net.num_nodes == 1


def test_negative_capacity_rejected():
    net = FlowNetwork()
    with pytest.raises(ValueError):
        net.add_edge("a", "b", -1)


def test_single_edge_flow():
    net = FlowNetwork()
    net.add_edge("s", "t", 5)
    assert max_flow(net, "s", "t") == 5


def test_bottleneck():
    net = FlowNetwork()
    net.add_edge("s", "m", 10)
    net.add_edge("m", "t", 3)
    assert max_flow(net, "s", "t") == 3


def test_parallel_paths():
    net = FlowNetwork()
    net.add_edge("s", "a", 2)
    net.add_edge("a", "t", 2)
    net.add_edge("s", "b", 3)
    net.add_edge("b", "t", 3)
    assert max_flow(net, "s", "t") == 5


def test_classic_augmenting_case():
    # The diamond with a cross edge that tempts a greedy algorithm.
    net = FlowNetwork()
    net.add_edge("s", "a", 1)
    net.add_edge("s", "b", 1)
    net.add_edge("a", "b", 1)
    net.add_edge("a", "t", 1)
    net.add_edge("b", "t", 1)
    assert max_flow(net, "s", "t") == 2


def test_no_path_gives_zero():
    net = FlowNetwork()
    net.node_id("s")
    net.node_id("t")
    assert max_flow(net, "s", "t") == 0


def test_residual_reachable_is_min_cut_side():
    net = FlowNetwork()
    net.add_edge("s", "a", 2)
    net.add_edge("a", "t", 1)
    max_flow(net, "s", "t")
    reachable = residual_reachable(net, "s")
    assert net.node_id("s") in reachable
    assert net.node_id("a") in reachable  # s->a not saturated (2 > 1)
    assert net.node_id("t") not in reachable


def test_push_updates_residual():
    net = FlowNetwork()
    e = net.add_edge("s", "t", 4)
    net.push(e, 3)
    assert net.residual(e) == 1
    assert net.residual(e ^ 1) == 3

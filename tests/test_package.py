"""Tests for the top-level package facade."""

import repro


class TestFacade:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_quickstart_works(self):
        graph = repro.road_network(200, seed=7)
        index = repro.CTLSIndex.build(graph)
        vertices = sorted(graph.vertices())
        distance, count = index.query(vertices[0], vertices[-1])
        assert count >= 1
        assert distance < repro.INF

    def test_exceptions_exported(self):
        assert issubclass(repro.ReproError, Exception)


class TestLabelAlignment:
    """The invariant behind every query: label arrays line up."""

    def test_common_prefix_positions_name_same_ancestors(self):
        graph = repro.road_network(200, seed=3)
        index = repro.CTLIndex.build(graph)
        tree = index.tree
        vertices = sorted(graph.vertices())
        for s, t in [(vertices[0], vertices[-1]), (vertices[3], vertices[7])]:
            k = tree.common_prefix_length(s, t)
            ancestors_s = tree.ancestor_vertices(s)
            ancestors_t = tree.ancestor_vertices(t)
            assert ancestors_s[:k] == ancestors_t[:k]

    def test_label_arrays_have_tree_lengths(self):
        graph = repro.road_network(200, seed=3)
        for index in (
            repro.CTLIndex.build(graph),
            repro.CTLSIndex.build(graph),
        ):
            for v in graph.vertices():
                assert index.labels.label_length(v) == index.tree.label_length(v)

    def test_self_label_is_zero_one(self):
        graph = repro.road_network(150, seed=4)
        index = repro.CTLSIndex.build(graph)
        for v in graph.vertices():
            dist, count = index.labels.entry(
                v, index.labels.label_length(v) - 1
            )
            assert (dist, count) == (0, 1)

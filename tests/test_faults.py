"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro.exceptions import ReproError
from repro.faults import (
    ENV_PLAN,
    ENV_SEED,
    FaultPlan,
    FaultPlanError,
    FaultyIndex,
    InjectedFault,
)
from repro.obs import Recorder


def test_parse_grammar():
    plan = FaultPlan.parse(
        "scan.fail:0.5, scan.slow:1@250ms, conn.reset:0.25x3", seed=1
    )
    snap = plan.snapshot()
    assert snap["scan.fail"]["probability"] == 0.5
    assert snap["scan.slow"]["delay_ms"] == 250.0
    assert snap["conn.reset"]["max_fires"] == 3
    assert plan.active
    assert plan.targets("scan.fail", "flush.fail")
    assert not plan.targets("flush.fail")


def test_empty_spec_is_inactive():
    plan = FaultPlan.parse("  ")
    assert not plan.active
    assert not plan.should_fire("scan.fail")


@pytest.mark.parametrize(
    "spec",
    [
        "scan.fail",
        "scan.fail:2.0",
        "scan.fail:-0.1",
        "bogus.site:0.5",
        "scan.fail:half",
        "scan.slow:0.1@soon",
        "conn.reset:0.1xfew",
        "scan.fail:0.1,scan.fail:0.2",
    ],
)
def test_bad_specs_rejected(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(spec)


def test_fault_plan_error_is_repro_error():
    assert issubclass(FaultPlanError, ReproError)


def test_injected_fault_is_not_a_repro_error():
    # Injected faults model infrastructure crashes: the server must
    # treat them as 500s (and breaker strikes), never as client 400s.
    assert not issubclass(InjectedFault, ReproError)


def _draws(seed, n=200):
    plan = FaultPlan.parse("scan.fail:0.3", seed=seed)
    return [plan.should_fire("scan.fail") for _ in range(n)]


def test_firing_is_deterministic_per_seed():
    assert _draws(7) == _draws(7)
    assert _draws(7) != _draws(8)
    assert 0 < sum(_draws(7)) < 200  # actually probabilistic


def test_sites_draw_independently():
    # Adding a rule for one site must not shift another site's
    # sequence — the property that keeps chaos tests reproducible as
    # plans grow.
    solo = FaultPlan.parse("scan.fail:0.3", seed=5)
    combo = FaultPlan.parse("scan.fail:0.3,conn.reset:0.9", seed=5)
    solo_seq, combo_seq = [], []
    for _ in range(100):
        combo.should_fire("conn.reset")
        solo_seq.append(solo.should_fire("scan.fail"))
        combo_seq.append(combo.should_fire("scan.fail"))
    assert solo_seq == combo_seq


def test_max_fires_caps_injection():
    plan = FaultPlan.parse("scan.fail:1.0x3")
    fired = sum(plan.should_fire("scan.fail") for _ in range(10))
    assert fired == 3
    assert plan.fired("scan.fail") == 3
    assert not plan.active  # the only site is exhausted


def test_check_raises_with_site():
    plan = FaultPlan.parse("flush.fail:1.0")
    with pytest.raises(InjectedFault) as excinfo:
        plan.check("flush.fail")
    assert excinfo.value.site == "flush.fail"
    plan.check("scan.fail")  # no rule: never fires


def test_from_env():
    assert FaultPlan.from_env({}) is None
    assert FaultPlan.from_env({ENV_PLAN: "   "}) is None
    plan = FaultPlan.from_env({ENV_PLAN: "scan.fail:0.5", ENV_SEED: "9"})
    assert plan.seed == 9 and plan.targets("scan.fail")
    with pytest.raises(FaultPlanError):
        FaultPlan.from_env({ENV_PLAN: "scan.fail:0.5", ENV_SEED: "nine"})


def test_recorder_counts_checks_and_fires():
    rec = Recorder()
    plan = FaultPlan.parse("scan.fail:1.0", recorder=rec)
    plan.should_fire("scan.fail")
    counters = rec.metrics_snapshot()["counters"]
    assert counters["faults.checked.scan.fail"] == 1
    assert counters["faults.fired.scan.fail"] == 1


class _Stub:
    def query(self, source, target):
        return (source, target)

    def query_batch(self, pairs):
        return list(pairs)

    def stats(self):
        return "stats"


def test_faulty_index_injects_then_delegates():
    plan = FaultPlan.parse("scan.fail:1.0x1")
    faulty = FaultyIndex(_Stub(), plan)
    with pytest.raises(InjectedFault):
        faulty.query(1, 2)
    # the single permitted fire is spent: scans work again
    assert faulty.query(1, 2) == (1, 2)
    assert faulty.query_batch([(1, 2)]) == [(1, 2)]


def test_faulty_index_passes_diagnostics_through():
    # Chaos corrupts availability, never the reference values tests
    # compare against: stats() and attribute reads are untouched.
    plan = FaultPlan.parse("scan.fail:1.0")
    faulty = FaultyIndex(_Stub(), plan)
    assert faulty.stats() == "stats"


def test_faulty_index_slow_site_counts():
    plan = FaultPlan.parse("scan.slow:1.0@0x2")
    faulty = FaultyIndex(_Stub(), plan)
    faulty.query(1, 2)
    faulty.query_batch([(3, 4)])
    assert plan.fired("scan.slow") == 2

"""Tests for shared value types."""

from repro.types import INF, Partition, QueryResult, QueryStats


class TestQueryResult:
    def test_unpacking(self):
        dist, count = QueryResult(5, 3)
        assert (dist, count) == (5, 3)

    def test_connected(self):
        assert QueryResult(5, 3).connected
        assert not QueryResult(INF, 0).connected

    def test_equality_and_hash(self):
        assert QueryResult(1, 2) == QueryResult(1, 2)
        assert hash(QueryResult(1, 2)) == hash(QueryResult(1, 2))


class TestQueryStats:
    def test_unpacking(self):
        result, visited = QueryStats(QueryResult(1, 1), 7)
        assert visited == 7
        assert tuple(result) == (1, 1)


class TestPartition:
    def test_unpacking(self):
        left, cut, right = Partition((0,), (1,), (2,))
        assert (left, cut, right) == ((0,), (1,), (2,))

    def test_degenerate(self):
        assert Partition((), (0, 1), ()).is_degenerate
        assert not Partition((0,), (1,), ()).is_degenerate

"""Tests for the CutTree structure."""

import pytest

from repro.exceptions import IndexBuildError
from repro.tree.cut_tree import CutTree


def build_sample():
    """Root {1, 5}; left child {2}; right child {3, 4}; grandchild {6}."""
    tree = CutTree()
    root = tree.add_node([5, 1])  # stored sorted: (1, 5)
    left = tree.add_node([2], parent=root)
    right = tree.add_node([4, 3], parent=root)
    tree.add_node([6], parent=left)
    tree.finalize()
    return tree, root, left, right


class TestConstruction:
    def test_vertices_sorted_in_node(self):
        tree, root, _l, right = build_sample()
        assert tree.node(root).vertices == (1, 5)
        assert tree.node(right).vertices == (3, 4)

    def test_empty_node_rejected(self):
        tree = CutTree()
        with pytest.raises(IndexBuildError):
            tree.add_node([])

    def test_duplicate_vertex_rejected(self):
        tree = CutTree()
        tree.add_node([1])
        with pytest.raises(IndexBuildError):
            tree.add_node([1])

    def test_third_child_rejected(self):
        tree = CutTree()
        root = tree.add_node([0])
        tree.add_node([1], parent=root)
        tree.add_node([2], parent=root)
        with pytest.raises(IndexBuildError):
            tree.add_node([3], parent=root)

    def test_counts(self):
        tree, *_ = build_sample()
        assert tree.num_nodes == 4
        assert tree.num_vertices == 6
        assert tree.width == 2
        assert tree.height == 4  # path root(2) -> left(1) -> grandchild(1)

    def test_validate_passes(self):
        tree, *_ = build_sample()
        tree.validate()


class TestOffsets:
    def test_block_offsets(self):
        tree, root, left, right = build_sample()
        assert tree.node(root).block_start == 0
        assert tree.node(root).block_end == 2
        assert tree.node(left).block_end == 3
        assert tree.node(right).block_end == 4

    def test_label_lengths(self):
        tree, *_ = build_sample()
        assert tree.label_length(1) == 1  # rank 0 in root
        assert tree.label_length(5) == 2
        assert tree.label_length(2) == 3
        assert tree.label_length(3) == 3  # root block + own position
        assert tree.label_length(4) == 4
        assert tree.label_length(6) == 4

    def test_ancestor_vertices(self):
        tree, *_ = build_sample()
        assert tree.ancestor_vertices(6) == [1, 5, 2, 6]
        assert tree.ancestor_vertices(4) == [1, 5, 3, 4]
        assert tree.ancestor_vertices(5) == [1, 5]
        assert tree.ancestor_vertices(1) == [1]


class TestQueries:
    def test_lca_node(self):
        tree, root, left, right = build_sample()
        assert tree.lca_node(6, 4).index == root
        assert tree.lca_node(2, 6).index == left
        assert tree.lca_node(3, 4).index == right
        assert tree.lca_node(1, 6).index == root

    def test_lca_before_finalize_raises(self):
        tree = CutTree()
        tree.add_node([0, 1])
        with pytest.raises(IndexBuildError):
            tree.lca_node(0, 1)

    def test_common_prefix_cross_branch(self):
        tree, *_ = build_sample()
        # 6 (left branch) vs 4 (right branch): LCA is the root block.
        assert tree.common_prefix_length(6, 4) == 2

    def test_common_prefix_ancestor_relation(self):
        tree, *_ = build_sample()
        # 2's node is an ancestor of 6's node: prefix = A(2).
        assert tree.common_prefix_length(2, 6) == 3
        assert tree.common_prefix_length(6, 2) == 3

    def test_common_prefix_same_node(self):
        tree, *_ = build_sample()
        # 3 and 4 share a node: truncate at min rank.
        assert tree.common_prefix_length(3, 4) == 3
        assert tree.common_prefix_length(1, 5) == 1

    def test_lca_block_range_cross_branch(self):
        tree, root, _l, right = build_sample()
        assert tree.lca_block_range(6, 4) == (0, 2)

    def test_lca_block_range_same_node(self):
        tree, *_ = build_sample()
        assert tree.lca_block_range(3, 4) == (2, 3)

    def test_lca_block_range_ancestor(self):
        tree, *_ = build_sample()
        # LCA node is 2's own node; end truncates at 2's label length.
        assert tree.lca_block_range(2, 6) == (2, 3)

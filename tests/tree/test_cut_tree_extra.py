"""Additional CutTree behaviours: ancestors, validation, big trees."""

import pytest

from repro.exceptions import IndexBuildError
from repro.tree.cut_tree import CutTree


def build_path_tree(depth: int) -> CutTree:
    tree = CutTree()
    at = tree.add_node([0])
    for v in range(1, depth):
        at = tree.add_node([v], parent=at)
    tree.finalize()
    return tree


class TestAncestors:
    def test_root_first_order(self):
        tree = build_path_tree(5)
        chain = [node.vertices[0] for node in tree.ancestors(4)]
        assert chain == [0, 1, 2, 3, 4]

    def test_single_node(self):
        tree = build_path_tree(1)
        assert [n.index for n in tree.ancestors(0)] == [0]

    def test_deep_tree_no_recursion(self):
        tree = build_path_tree(3000)
        assert tree.label_length(2999) == 3000
        assert tree.lca_node(0, 2999).index == 0
        assert tree.common_prefix_length(1500, 2999) == 1501


class TestValidate:
    def test_detects_broken_child_link(self):
        tree = CutTree()
        root = tree.add_node([0])
        child = tree.add_node([1], parent=root)
        tree.nodes[child].parent = child  # corrupt
        with pytest.raises(IndexBuildError):
            tree.validate()

    def test_detects_too_many_children(self):
        tree = CutTree()
        root = tree.add_node([0])
        tree.add_node([1], parent=root)
        tree.add_node([2], parent=root)
        tree.nodes[root].children.append(99)
        with pytest.raises(IndexBuildError):
            tree.validate()


class TestNodeAccessors:
    def test_node_of_and_rank(self):
        tree = CutTree()
        tree.add_node([7, 3, 9])
        tree.finalize()
        assert tree.node_of(7).vertices == (3, 7, 9)
        assert tree.rank_in_node(3) == 0
        assert tree.rank_in_node(7) == 1
        assert tree.rank_in_node(9) == 2

    def test_width_height_empty(self):
        tree = CutTree()
        assert tree.width == 0
        assert tree.height == 0

"""Tests for the Euler-tour sparse-table LCA."""

import random

from repro.tree.lca import LCATable


def brute_lca(parents, a, b):
    def ancestors(x):
        chain = []
        while x >= 0:
            chain.append(x)
            x = parents[x]
        return chain

    chain_a = ancestors(a)
    set_b = set(ancestors(b))
    for node in chain_a:
        if node in set_b:
            return node
    raise AssertionError("no common ancestor")


class TestLCATable:
    def test_single_node(self):
        table = LCATable([-1])
        assert table.lca(0, 0) == 0
        assert table.depth == [0]

    def test_small_tree(self):
        #      0
        #     / \
        #    1   2
        #   / \
        #  3   4
        parents = [-1, 0, 0, 1, 1]
        table = LCATable(parents)
        assert table.lca(3, 4) == 1
        assert table.lca(3, 2) == 0
        assert table.lca(1, 3) == 1
        assert table.lca(0, 4) == 0

    def test_path_tree(self):
        parents = [-1] + list(range(19))
        table = LCATable(parents)
        assert table.lca(19, 5) == 5
        assert table.lca(10, 10) == 10
        assert table.depth[19] == 19

    def test_deep_tree_no_recursion_error(self):
        n = 5000
        parents = [-1] + list(range(n - 1))
        table = LCATable(parents)
        assert table.lca(n - 1, 0) == 0

    def test_matches_bruteforce_random_trees(self):
        rng = random.Random(5)
        for _trial in range(5):
            n = 60
            parents = [-1] + [rng.randrange(i) for i in range(1, n)]
            table = LCATable(parents)
            for _q in range(100):
                a, b = rng.randrange(n), rng.randrange(n)
                assert table.lca(a, b) == brute_lca(parents, a, b)

    def test_is_ancestor(self):
        parents = [-1, 0, 1, 2]
        table = LCATable(parents)
        assert table.is_ancestor(0, 3)
        assert table.is_ancestor(3, 3)
        assert not table.is_ancestor(3, 0)

"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DisconnectedError,
    EdgeError,
    GraphError,
    IndexBuildError,
    IndexQueryError,
    ParseError,
    ReproError,
    SerializationError,
    VertexNotFoundError,
    WorkloadError,
)


ALL_ERRORS = [
    DisconnectedError(0, 1),
    EdgeError("x"),
    GraphError("x"),
    IndexBuildError("x"),
    IndexQueryError("x"),
    ParseError("x"),
    SerializationError("x"),
    VertexNotFoundError(3),
    WorkloadError("x"),
]


@pytest.mark.parametrize("error", ALL_ERRORS, ids=lambda e: type(e).__name__)
def test_all_derive_from_repro_error(error):
    assert isinstance(error, ReproError)


def test_vertex_not_found_payload():
    err = VertexNotFoundError(42)
    assert err.vertex == 42
    assert "42" in str(err)


def test_parse_error_line_numbers():
    assert "line 3" in str(ParseError("bad", line_number=3))
    assert ParseError("bad").line_number is None


def test_disconnected_payload():
    err = DisconnectedError(1, 2)
    assert (err.source, err.target) == (1, 2)

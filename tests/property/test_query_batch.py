"""Property test: ``query_batch`` ≡ ``query``, pair for pair.

Random generator graphs are indexed by all three index types; the batch
API must return exactly the per-pair answers (including self pairs and
disconnected pairs) in input order.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.tl import TLIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.graph.graph import Graph


@st.composite
def random_graphs(draw, max_vertices: int = 14):
    """Random weighted graphs, sometimes split into two components."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    density = draw(st.floats(min_value=0.1, max_value=0.6))
    split = draw(st.booleans())
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    # A random spanning tree per component keeps counts interesting;
    # `split` leaves a disconnected half so INF answers are exercised.
    boundary = n // 2 if split and n >= 4 else 0
    for v in range(1, n):
        if v == boundary:
            continue
        u = rng.randrange(boundary, v) if v > boundary else rng.randrange(v)
        g.add_edge(u, v, rng.choice((1, 1, 2, 2, 3)))
    for u in range(n):
        for v in range(u + 1, n):
            if split and (u < boundary) != (v < boundary):
                continue
            if not g.has_edge(u, v) and rng.random() < density:
                g.add_edge(u, v, rng.choice((1, 2, 2, 3, 4)))
    return g


common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_batch_matches(index, graph, rng):
    vertices = sorted(graph.vertices())
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(40)
    ]
    pairs.append((vertices[0], vertices[0]))
    expected = [index.query(s, t) for s, t in pairs]
    assert index.query_batch(pairs) == expected


@common_settings
@given(graph=random_graphs(), seed=st.integers(min_value=0, max_value=999))
def test_ctl_batch_matches_query(graph, seed):
    _assert_batch_matches(
        CTLIndex.build(graph, leaf_size=2), graph, random.Random(seed)
    )


@common_settings
@given(graph=random_graphs(), seed=st.integers(min_value=0, max_value=999))
def test_ctls_batch_matches_query(graph, seed):
    _assert_batch_matches(
        CTLSIndex.build(graph, leaf_size=2), graph, random.Random(seed)
    )


@common_settings
@given(graph=random_graphs(), seed=st.integers(min_value=0, max_value=999))
def test_tl_batch_matches_query(graph, seed):
    _assert_batch_matches(TLIndex.build(graph), graph, random.Random(seed))

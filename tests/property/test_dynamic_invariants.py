"""Property tests: dynamic maintenance stays exact under random updates."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicCTL
from repro.graph.graph import Graph
from repro.search.pairwise import spc_query


@st.composite
def graph_and_updates(draw):
    """A small random graph plus a sequence of edge weight updates."""
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.integers(min_value=4, max_value=12))
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.choice((1, 2, 3)))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < 0.3:
                g.add_edge(u, v, rng.choice((1, 2, 3, 4)))
    edges = sorted((u, v) for u, v, _w, _c in g.edges())
    num_updates = draw(st.integers(min_value=1, max_value=5))
    updates = [
        (edges[draw(st.integers(min_value=0, max_value=len(edges) - 1))],
         draw(st.sampled_from((1, 2, 3, 5, 8))))
        for _ in range(num_updates)
    ]
    return g, updates


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=graph_and_updates())
def test_dynamic_ctl_exact_after_every_update(data):
    graph, updates = data
    dynamic = DynamicCTL(graph)
    vertices = sorted(graph.vertices())
    for (u, v), new_weight in updates:
        dynamic.update_weight(u, v, new_weight)
        # Exhaustive check on these small graphs.
        for s in vertices:
            for t in vertices:
                assert tuple(dynamic.query(s, t)) == tuple(
                    spc_query(dynamic.graph, s, t)
                ), (s, t, updates)

"""Property tests on structural substrates: TD, serialization, LCA."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.tree_decomposition import minimum_degree_elimination
from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.graph.graph import Graph
from repro.graph.spc_graph import is_spc_graph_of
from repro.graph.subgraph import boundary_graph, border_vertices
from repro.tree.lca import LCATable

common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, max_vertices: int = 14):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=9_999))
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.choice((1, 2, 3)))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < 0.25:
                g.add_edge(u, v, rng.choice((1, 2, 3, 4)))
    return g


@common_settings
@given(graph=small_graphs())
def test_tree_decomposition_invariants(graph):
    td = minimum_degree_elimination(graph)
    # Every vertex eliminated exactly once.
    assert sorted(td.order) == sorted(graph.vertices())
    # Bags reference only later-eliminated vertices; parents belong to
    # the bag; contraction preserved counts is covered elsewhere.
    for v, bag in td.bags.items():
        members = [u for u, _w, _c in bag]
        assert all(td.order_of[u] > td.order_of[v] for u in members)
        if members:
            assert td.parent[v] in members
    # Original edges are covered: each edge appears in the bag of its
    # earlier-eliminated endpoint with the original (or shorter) weight.
    for u, v, w, _c in graph.edges():
        first, second = (u, v) if td.order_of[u] < td.order_of[v] else (v, u)
        bag_targets = {t: bw for t, bw, _bc in td.bags[first]}
        assert second in bag_targets
        assert bag_targets[second] <= w


@common_settings
@given(graph=small_graphs())
def test_serialize_round_trip_property(graph):
    import tempfile
    from pathlib import Path

    index = CTLSIndex.build(graph, leaf_size=2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.json"
        save_index(index, path)
        loaded = load_index(path)
    vertices = sorted(graph.vertices())
    for s in vertices[:5]:
        for t in vertices[-5:]:
            assert tuple(loaded.query(s, t)) == tuple(index.query(s, t))


@common_settings
@given(graph=small_graphs())
def test_boundary_graph_partition_of_edges(graph):
    """Every edge is inside G[L] xor in the boundary graph of L."""
    vertices = sorted(graph.vertices())
    part = set(vertices[: len(vertices) // 2])
    bg = boundary_graph(graph, part)
    inner = graph.induced_subgraph(part)
    for u, v, _w, _c in graph.edges():
        in_inner = inner.has_edge(u, v)
        in_bg = bg.has_edge(u, v)
        assert in_inner != in_bg
    # Border vertices appear in the boundary graph (unless isolated).
    for b in border_vertices(graph, part):
        assert bg.has_vertex(b)


@common_settings
@given(
    seed=st.integers(min_value=0, max_value=9_999),
    n=st.integers(min_value=1, max_value=60),
)
def test_lca_matches_bruteforce(seed, n):
    rng = random.Random(seed)
    parents = [-1] + [rng.randrange(i) for i in range(1, n)]
    table = LCATable(parents)

    def chain(x):
        out = []
        while x >= 0:
            out.append(x)
            x = parents[x]
        return out

    for _ in range(10):
        a, b = rng.randrange(n), rng.randrange(n)
        chain_b = set(chain(b))
        expected = next(x for x in chain(a) if x in chain_b)
        assert table.lca(a, b) == expected


@common_settings
@given(graph=small_graphs(max_vertices=10))
def test_identity_spc_graph(graph):
    """Sanity: every graph is an SPC-Graph of itself."""
    assert is_spc_graph_of(graph, graph)

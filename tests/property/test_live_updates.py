"""Property tests: live overlay answers stay exact under random streams.

The streaming analogue of ``test_dynamic_invariants``: random delta
sequences — increases, decreases, duplicates, and no-ops — flow through
an :class:`~repro.live.UpdateCoordinator` and after every batch each
pair's ``(distance, count)`` must be bit-identical to a fresh counting
Dijkstra on the current weights.  A mid-stream rebuild-and-swap must
preserve the same contract, including batches that land between the
snapshot and the adoption.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ctl import CTLIndex
from repro.graph.graph import Graph
from repro.live import UpdateCoordinator, recover_coordinator, verify_wal
from repro.search.pairwise import spc_query


@st.composite
def graph_and_batches(draw):
    """A small random graph plus a stream of delta batches."""
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.integers(min_value=4, max_value=12))
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v, rng.choice((1, 2, 3)))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < 0.3:
                g.add_edge(u, v, rng.choice((1, 2, 3, 4)))
    edges = sorted((u, v) for u, v, _w, _c in g.edges())
    num_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    for _ in range(num_batches):
        size = draw(st.integers(min_value=1, max_value=4))
        batch = []
        for _ in range(size):
            u, v = edges[
                draw(st.integers(min_value=0, max_value=len(edges) - 1))
            ]
            if draw(st.booleans()):
                weight = g.weight(u, v)  # deliberate no-op
            else:
                weight = draw(st.sampled_from((1, 2, 3, 5, 8)))
            batch.append((u, v, weight))
        # Duplicates within one batch: last write wins, exactly once.
        if batch and draw(st.booleans()):
            batch.append(batch[0])
        batches.append(batch)
    rebuild_after = draw(
        st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=num_batches - 1),
        )
    )
    return g, batches, rebuild_after


def _assert_exact(coordinator, mirror):
    vertices = sorted(mirror.vertices())
    pairs = [(s, t) for s in vertices for t in vertices]
    got = coordinator.live_index.query_batch(pairs)
    for (s, t), result in zip(pairs, got):
        assert tuple(result) == tuple(spc_query(mirror, s, t)), (s, t)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=graph_and_batches())
def test_live_overlay_exact_after_every_batch(data):
    graph, batches, rebuild_after = data
    coordinator = UpdateCoordinator(graph, CTLIndex.build(graph))
    mirror = graph.copy()
    staged = None
    for i, batch in enumerate(batches):
        coordinator.apply_batch(batch)
        for a, b, w in batch:
            mirror.add_edge(a, b, w, mirror.count(a, b))
        _assert_exact(coordinator, mirror)
        if rebuild_after == i:
            # Snapshot here; later batches land on the old base and
            # must be replayed onto the new one at adoption time.
            staged = coordinator.rebuild()
    if staged is not None:
        coordinator.adopt_base(*staged)
        assert coordinator.live_index.state.epoch == 2
        _assert_exact(coordinator, mirror)


def _overlay_key(coordinator):
    state = coordinator.live_index.state
    return (
        state.epoch,
        state.seqno,
        {v: dict(p) for v, p in state.patches.items()},
        dict(state.min_dirty),
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=graph_and_batches(), cut_point=st.integers(min_value=0))
def test_wal_crash_recovery_restores_an_exact_prefix(data, cut_point):
    """A WAL truncated anywhere recovers an acknowledged prefix.

    The stream flows through a WAL-backed coordinator; the log is then
    cut at an arbitrary byte (a simulated ``kill -9`` mid-write) and a
    fresh coordinator recovers from the stump.  The recovered state
    must be bit-identical to the reference coordinator at some
    already-acknowledged seqno ``k`` — never a partial batch, never an
    invented one — and its answers must match a counting Dijkstra on
    the first ``k`` batches.
    """
    graph, batches, _rebuild_after = data
    index = CTLIndex.build(graph)
    with tempfile.TemporaryDirectory() as workdir:
        wal_dir = Path(workdir) / "wal"
        coordinator, report = recover_coordinator(wal_dir, graph, index)
        assert report.fresh
        mirror = graph.copy()
        reference = [_overlay_key(coordinator)]
        mirrors = [graph.copy()]
        for batch in batches:
            coordinator.apply_batch(batch)
            for a, b, w in batch:
                mirror.add_edge(a, b, w, mirror.count(a, b))
            reference.append(_overlay_key(coordinator))
            mirrors.append(mirror.copy())
        wal_path = coordinator.wal.path
        coordinator.wal.close()
        data_bytes = wal_path.read_bytes()
        cut = cut_point % (len(data_bytes) + 1)

        crash_dir = Path(workdir) / "crash"
        crash_dir.mkdir()
        (crash_dir / wal_path.name).write_bytes(data_bytes[:cut])
        recovered, rec = recover_coordinator(crash_dir, graph, index)
        k = recovered.live_index.state.seqno
        assert 0 <= k <= len(batches)
        assert _overlay_key(recovered) == reference[k]
        _assert_exact(recovered, mirrors[k])
        # The reopened log is a valid, continuous prefix: the torn tail
        # was truncated away and the watermark runs 0..k without gaps.
        report = verify_wal(recovered.wal.path)
        assert report.ok
        assert report.torn_tail is None
        assert report.watermark == (1, 0, k)
        recovered.wal.close()

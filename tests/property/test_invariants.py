"""Property-based tests (hypothesis) on core invariants.

Random small weighted graphs are generated and every index is checked
against the SSSPC oracle, plus structural invariants of partitions,
SPC-Graphs and trees.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.tl import TLIndex
from repro.obs import Recorder
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.core.spc_graph_build import BlockOutDist, build_spc_graph_cutsearch
from repro.graph.graph import Graph
from repro.graph.spc_graph import is_spc_graph_of
from repro.partition.balanced_cut import balanced_cut
from repro.search.dijkstra import ssspc
from repro.search.pairwise import spc_query
from repro.types import INF


@st.composite
def random_graphs(draw, max_vertices: int = 14):
    """Connected-ish random weighted graphs with tie-prone weights."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    density = draw(st.floats(min_value=0.1, max_value=0.6))
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    # A random spanning tree keeps things mostly connected.
    for v in range(1, n):
        u = rng.randrange(v)
        g.add_edge(u, v, rng.choice((1, 1, 2, 2, 3)))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < density:
                g.add_edge(u, v, rng.choice((1, 2, 2, 3, 4)))
    return g


common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common_settings
@given(graph=random_graphs(), data=st.data())
def test_ctl_matches_oracle(graph, data):
    index = CTLIndex.build(graph, leaf_size=2)
    n = graph.num_vertices
    s = data.draw(st.integers(min_value=0, max_value=n - 1))
    t = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert tuple(index.query(s, t)) == tuple(spc_query(graph, s, t))


@common_settings
@given(graph=random_graphs(), strategy=st.sampled_from(["basic", "pruned", "cutsearch"]),
       data=st.data())
def test_ctls_matches_oracle(graph, strategy, data):
    index = CTLSIndex.build(graph, leaf_size=2, strategy=strategy)
    n = graph.num_vertices
    s = data.draw(st.integers(min_value=0, max_value=n - 1))
    t = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert tuple(index.query(s, t)) == tuple(spc_query(graph, s, t))


@common_settings
@given(graph=random_graphs(), data=st.data())
def test_tl_matches_oracle(graph, data):
    index = TLIndex.build(graph)
    n = graph.num_vertices
    s = data.draw(st.integers(min_value=0, max_value=n - 1))
    t = data.draw(st.integers(min_value=0, max_value=n - 1))
    assert tuple(index.query(s, t)) == tuple(spc_query(graph, s, t))


@common_settings
@given(graph=random_graphs(max_vertices=20))
def test_balanced_cut_is_valid_partition(graph):
    part = balanced_cut(graph, leaf_size=2)
    left, cut, right = set(part.left), set(part.cut), set(part.right)
    assert not (left & right) and not (left & cut) and not (right & cut)
    assert left | cut | right == set(graph.vertices())
    for u, v, _w, _c in graph.edges():
        crosses = (u in left and v in right) or (u in right and v in left)
        assert not crosses


@common_settings
@given(graph=random_graphs(max_vertices=12))
def test_cutsearch_spc_graph_preserved(graph):
    part = balanced_cut(graph, leaf_size=2)
    if part.is_degenerate:
        return
    work = graph.copy()
    blocks = {v: [] for v in graph.vertices()}
    for c in part.cut:
        dist, _count = ssspc(work, c)
        for v in sorted(work.vertices()):
            blocks[v].append(dist.get(v, INF))
        work.remove_vertex(c)
    through = BlockOutDist(blocks)
    for side in (part.left, part.right):
        if not side:
            continue
        spc = build_spc_graph_cutsearch(
            graph, side, part.cut, through, Recorder()
        )
        assert is_spc_graph_of(spc, graph)


@common_settings
@given(graph=random_graphs())
def test_query_symmetry(graph):
    """Q(s, t) == Q(t, s) for every index (undirected graphs)."""
    ctls = CTLSIndex.build(graph, leaf_size=2)
    vertices = sorted(graph.vertices())
    for s in vertices[:4]:
        for t in vertices[-4:]:
            assert tuple(ctls.query(s, t)) == tuple(ctls.query(t, s))


@common_settings
@given(graph=random_graphs(), data=st.data())
def test_triangle_inequality_of_index_distances(graph, data):
    index = CTLIndex.build(graph, leaf_size=2)
    n = graph.num_vertices
    a = data.draw(st.integers(min_value=0, max_value=n - 1))
    b = data.draw(st.integers(min_value=0, max_value=n - 1))
    c = data.draw(st.integers(min_value=0, max_value=n - 1))
    dab = index.query(a, b).distance
    dbc = index.query(b, c).distance
    dac = index.query(a, c).distance
    if dab < INF and dbc < INF:
        assert dac <= dab + dbc

"""Tests for POI recommendation."""

from repro.apps.poi import recommend_pois
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph
from repro.graph.graph import Graph


def build_index(graph):
    return CTLSIndex.build(graph)


class TestRecommendPois:
    def test_orders_by_distance(self, path5):
        index = build_index(path5)
        recs = recommend_pois(index, 0, [1, 2, 3, 4], k=3)
        assert [r.vertex for r in recs] == [1, 2, 3]

    def test_count_breaks_exact_ties(self):
        # Vertex 0 is at distance 2 of both 3 (two routes) and 4 (one).
        g = Graph.from_edges(
            [(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1), (0, 5, 1), (5, 4, 1)]
        )
        index = build_index(g)
        recs = recommend_pois(index, 0, [3, 4], k=2)
        assert [r.vertex for r in recs] == [3, 4]
        assert recs[0].route_count == 2

    def test_unreachable_dropped(self, two_components):
        index = build_index(two_components)
        recs = recommend_pois(index, 0, [1, 2, 3], k=5)
        assert [r.vertex for r in recs] == [1]

    def test_source_excluded(self, path5):
        index = build_index(path5)
        recs = recommend_pois(index, 2, [2, 1, 3], k=5)
        assert all(r.vertex != 2 for r in recs)

    def test_k_zero(self, path5):
        index = build_index(path5)
        assert recommend_pois(index, 0, [1, 2], k=0) == []

    def test_k_limits(self, path5):
        index = build_index(path5)
        recs = recommend_pois(index, 0, [1, 2, 3, 4], k=2)
        assert len(recs) == 2

    def test_tolerance_prefers_flexible_routes(self):
        g = grid_graph(4, 4)
        index = build_index(g)
        # POI 5 (diagonal neighbour, distance 2, two routes) vs POI 2
        # (straight, distance 2, one route): both distance 2.  POI 12
        # is distance 3.
        recs = recommend_pois(index, 0, [2, 5, 12], k=3, tolerance=0.6)
        # Within the 0.6 band (distances 2..3.2), route count dominates:
        # 0->5 has 2 routes, 0->12 has 1, 0->2 has 1.
        assert recs[0].vertex == 5
        assert recs[0].route_count == 2

    def test_results_have_fields(self, path5):
        index = build_index(path5)
        rec = recommend_pois(index, 0, [3], k=1)[0]
        assert rec.vertex == 3
        assert rec.distance == 3
        assert rec.route_count == 1

"""Tests for betweenness centrality applications."""

import itertools

import pytest

from repro.apps.betweenness import (
    betweenness_exact,
    betweenness_sampled,
    pair_dependency,
)
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph, path_graph, star_graph
from repro.graph.graph import Graph


class TestExactBrandes:
    def test_path_center_dominates(self):
        g = path_graph(5)
        bc = betweenness_exact(g)
        # Middle vertex lies on all 2*... pairs: positions 1,2,3 carry load.
        assert bc[2] > bc[1] > bc[0]
        assert bc[0] == 0.0

    def test_path_values_exact(self):
        g = path_graph(4)
        bc = betweenness_exact(g)
        # Vertex 1 is on paths (0,2), (0,3): 2 pairs.
        assert bc[1] == 2.0
        assert bc[2] == 2.0

    def test_star_center(self):
        g = star_graph(4)
        bc = betweenness_exact(g)
        assert bc[0] == 6.0  # C(4,2) leaf pairs
        assert all(bc[leaf] == 0.0 for leaf in range(1, 5))

    def test_tie_splitting_on_diamond(self, diamond):
        bc = betweenness_exact(diamond)
        # Pair (0,3) has two shortest paths, one through each middle.
        assert bc[1] == pytest.approx(0.5)
        assert bc[2] == pytest.approx(0.5)

    def test_normalized(self):
        g = path_graph(4)
        bc = betweenness_exact(g, normalized=True)
        assert bc[1] == pytest.approx(2.0 / 3.0)

    def test_matches_definition_by_pair_dependency(self):
        """Brandes equals the direct sum over pairs of dependencies."""
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        bc = betweenness_exact(g)
        for v in g.vertices():
            direct = sum(
                pair_dependency(index, v, s, t)
                for s, t in itertools.combinations(sorted(g.vertices()), 2)
            )
            assert bc[v] == pytest.approx(direct)


class TestPairDependency:
    def test_on_path(self):
        g = path_graph(4)
        index = CTLSIndex.build(g)
        assert pair_dependency(index, 1, 0, 3) == 1.0
        assert pair_dependency(index, 1, 2, 3) == 0.0

    def test_endpoints_excluded(self, diamond):
        index = CTLSIndex.build(diamond)
        assert pair_dependency(index, 0, 0, 3) == 0.0

    def test_fractional_on_diamond(self, diamond):
        index = CTLSIndex.build(diamond)
        assert pair_dependency(index, 1, 0, 3) == pytest.approx(0.5)

    def test_disconnected_pair(self, two_components):
        index = CTLSIndex.build(two_components)
        assert pair_dependency(index, 1, 0, 3) == 0.0

    def test_off_path_vertex(self):
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        # Vertex 6 (bottom-left corner) is on no shortest 0->2 path.
        assert pair_dependency(index, 6, 0, 2) == 0.0


class TestSampledBetweenness:
    def test_explicit_pairs_match_average(self):
        g = path_graph(5)
        index = CTLSIndex.build(g)
        scores = betweenness_sampled(
            index, vertices=[2], pairs=[(0, 4), (1, 3), (0, 1)]
        )
        assert scores[2] == pytest.approx(2 / 3)

    def test_sampling_is_deterministic(self):
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        a = betweenness_sampled(index, vertices=[4], num_samples=50, seed=1,
                                population=sorted(g.vertices()))
        b = betweenness_sampled(index, vertices=[4], num_samples=50, seed=1,
                                population=sorted(g.vertices()))
        assert a == b

    def test_center_ranks_highest(self):
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        scores = betweenness_sampled(
            index,
            vertices=sorted(g.vertices()),
            num_samples=300,
            seed=2,
        )
        assert max(scores, key=scores.get) == 4  # grid centre

    def test_empty_pairs(self):
        g = path_graph(3)
        index = CTLSIndex.build(g)
        scores = betweenness_sampled(index, vertices=[1], pairs=[(0, 0)])
        assert scores == {1: 0.0}

"""Tests for edge dependency and edge betweenness estimation."""

import pytest

from repro.apps.betweenness import edge_betweenness_sampled, edge_dependency
from repro.core.ctls import CTLSIndex
from repro.graph.generators import grid_graph, path_graph


class TestEdgeDependency:
    def test_bridge_edge_carries_everything(self):
        g = path_graph(4)
        index = CTLSIndex.build(g)
        assert edge_dependency(index, 1, 2, 1, 0, 3) == 1.0
        assert edge_dependency(index, 2, 1, 1, 0, 3) == 1.0  # orientation-free

    def test_off_path_edge(self):
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        # Edge (6, 7) is on no shortest 0 -> 2 path (top row pair).
        assert edge_dependency(index, 6, 7, 1, 0, 2) == 0.0

    def test_fractional_split(self, diamond):
        index = CTLSIndex.build(diamond)
        # Two shortest 0->3 paths; edge (0, 1) carries one of them.
        assert edge_dependency(index, 0, 1, 1, 0, 3) == pytest.approx(0.5)

    def test_disconnected(self, two_components):
        index = CTLSIndex.build(two_components)
        assert edge_dependency(index, 0, 1, 5, 0, 3) == 0.0


class TestEdgeBetweennessSampled:
    def test_bridge_dominates(self):
        g = path_graph(5)
        index = CTLSIndex.build(g)
        edges = [(u, v, w) for u, v, w, _c in g.edges()]
        scores = edge_betweenness_sampled(
            index, edges, population=list(range(5)), num_samples=300, seed=1
        )
        # The central edge (2, 3)/(1, 2) should outrank the end edges.
        assert scores[(1, 2)] > scores[(0, 1)]
        assert scores[(2, 3)] > scores[(3, 4)]

    def test_deterministic(self):
        g = grid_graph(3, 3)
        index = CTLSIndex.build(g)
        edges = [(u, v, w) for u, v, w, _c in g.edges()][:4]
        kwargs = dict(population=sorted(g.vertices()), num_samples=50, seed=2)
        assert edge_betweenness_sampled(index, edges, **kwargs) == (
            edge_betweenness_sampled(index, edges, **kwargs)
        )

"""Tests for the packed label arena."""

import random

import pytest

from repro.core.ctls import CTLSIndex
from repro.graph.graph import Graph
from repro.labels.arena import (
    COUNT_OVERFLOW,
    INF_ENCODED,
    MAX_INT_DIST,
    LabelArena,
    record_layout_gauges,
)
from repro.labels.store import LabelStore
from repro.obs import Recorder
from repro.types import INF


def diamond_chain(k: int) -> Graph:
    """A chain of ``k`` diamonds: spc(0, end) = 2**k."""
    g = Graph()
    at = 0
    for _ in range(k):
        a, b, c, d = at, at + 1, at + 2, at + 3
        g.add_edge(a, b, 1)
        g.add_edge(a, c, 1)
        g.add_edge(b, d, 1)
        g.add_edge(c, d, 1)
        at = d
    return g


@pytest.fixture
def simple_lists():
    order = [3, 7, 9]
    dist = {3: [0, 2, INF], 7: [1, 0], 9: []}
    count = {3: [1, 4, 0], 7: [2, 1], 9: []}
    return order, dist, count


class TestPacking:
    def test_pack_unpack_round_trip(self, simple_lists):
        order, dist, count = simple_lists
        arena = LabelArena.from_lists(order, dist, count)
        dist_back, count_back = arena.to_lists()
        assert dist_back == dist
        assert count_back == count

    def test_dense_ids_follow_order(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        assert arena.vertices == [3, 7, 9]
        assert arena.vertex_ids == {3: 0, 7: 1, 9: 2}
        assert list(arena.offsets) == [0, 3, 5, 5]

    def test_inf_is_encoded_not_stored(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        assert arena.dist.typecode == "q"
        assert arena.dist[2] == INF_ENCODED
        assert arena.decode_dist(arena.dist[2]) == INF
        assert arena.entry(3, 2) == (INF, 0)

    def test_float_weights_fall_back_to_doubles(self):
        arena = LabelArena.from_lists(
            [0, 1], {0: [0.5, INF], 1: [1.25]}, {0: [1, 0], 1: [3]}
        )
        assert arena.dist.typecode == "d"
        assert arena.entry(0, 1) == (INF, 0)
        dist_back, count_back = arena.to_lists()
        assert dist_back == {0: [0.5, INF], 1: [1.25]}
        assert count_back == {0: [1, 0], 1: [3]}

    def test_huge_int_distance_falls_back_to_doubles(self):
        arena = LabelArena.from_lists(
            [0], {0: [MAX_INT_DIST + 1]}, {0: [1]}
        )
        assert arena.dist.typecode == "d"

    def test_from_store_uses_sorted_vertex_order(self):
        store = LabelStore([9, 2, 5])
        for v in (2, 5, 9):
            store.append(v, v, 1)
        arena = LabelArena.from_store(store)
        assert arena.vertices == [2, 5, 9]
        assert store.seal().vertices == [2, 5, 9]

    def test_to_store_round_trip(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        store = arena.to_store()
        assert store.dist == simple_lists[1]
        assert store.count == simple_lists[2]
        assert LabelArena.from_store(store, order=arena.vertices) == arena


class TestOverflowLane:
    def test_counts_beyond_64_bits_survive(self):
        big = 2 ** 200 + 17
        arena = LabelArena.from_lists(
            [0, 1], {0: [0, 1], 1: [0]}, {0: [1, big], 1: [big ** 2]}
        )
        assert arena.count[1] == COUNT_OVERFLOW
        assert arena.entry(0, 1) == (1, big)
        assert arena.entry(1, 0) == (0, big ** 2)
        _, count_back = arena.to_lists()
        assert count_back == {0: [1, big], 1: [big ** 2]}

    def test_scan_reads_overflow_counts(self):
        big = 2 ** 100
        arena = LabelArena.from_lists(
            [0, 1], {0: [3], 1: [4]}, {0: [big], 1: [big]}
        )
        assert arena.scan(0, 1, 0, 1) == (7, big * big)

    def test_index_query_overflows_exactly(self):
        # Deep enough that single *labels* (not just the final product)
        # carry counts beyond 63 bits and land in the overflow lane.
        k = 140
        g = diamond_chain(k)
        index = CTLSIndex.build(g)
        end = 3 * k
        result = index.query(0, end)
        assert result.count == 2 ** k
        assert result.count > 2 ** 63 - 1
        assert len(index.arena.overflow_positions) > 0
        assert index.query_batch([(0, end)]) == [result]


class TestScan:
    def test_scan_matches_reference(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        # Position 0: 0+1=1 with count 1*2=2; position 1: 2+0=2 loses.
        assert arena.scan(0, 1, 0, 2) == (1, 2)

    def test_scan_disconnected_is_inf(self):
        arena = LabelArena.from_lists(
            [0, 1], {0: [INF], 1: [2]}, {0: [0], 1: [1]}
        )
        assert arena.scan(0, 1, 0, 1) == (INF, 0)

    def test_scan_empty_range(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        assert arena.scan(0, 1, 0, 0) == (INF, 0)

    def test_scan_batch_matches_scalar(self):
        rng = random.Random(11)
        order = list(range(12))
        dist = {}
        count = {}
        for v in order:
            n = rng.randrange(0, 8)
            dist[v] = [
                INF if rng.random() < 0.2 else rng.randrange(0, 50)
                for _ in range(n)
            ]
            count[v] = [
                0 if d == INF else rng.randrange(1, 9) for d in dist[v]
            ]
        arena = LabelArena.from_lists(order, dist, count)
        offsets = arena.offsets
        starts_a, starts_b, lengths, expected = [], [], [], []
        for _ in range(100):
            a = rng.randrange(12)
            b = rng.randrange(12)
            n = min(len(dist[a]), len(dist[b]))
            n = rng.randrange(0, n + 1)
            starts_a.append(offsets[a])
            starts_b.append(offsets[b])
            lengths.append(n)
            expected.append(arena.scan(a, b, 0, n))
        assert arena.scan_batch(starts_a, starts_b, lengths) == expected

    def test_scan_batch_without_numpy(self, simple_lists, monkeypatch):
        # The vectorised kernel is optional; the scalar fallback must
        # produce identical answers when numpy is unavailable.
        import repro.labels.arena as arena_module

        arena = LabelArena.from_lists(*simple_lists)
        windows = ([0, 0, 3, 0], [3, 0, 0, 3], [2, 3, 2, 0])
        with_numpy = arena.scan_batch(*windows)
        monkeypatch.setattr(arena_module, "_np", None)
        assert arena.scan_batch(*windows) == with_numpy

    def test_scan_batch_small_batches_and_empty(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        assert arena.scan_batch([], [], []) == []
        assert arena.scan_batch([0], [3], [2]) == [arena.scan(0, 1, 0, 2)]

    def test_scan_batch_overflow_counts(self):
        big = 2 ** 90
        arena = LabelArena.from_lists(
            [0, 1], {0: [3, 5], 1: [4, 1]}, {0: [big, 2], 1: [big, 3]}
        )
        windows = ([0, 0, 0, 0, 0], [2, 2, 2, 2, 2], [1, 2, 1, 2, 0])
        assert arena.scan_batch(*windows) == [
            arena.scan(0, 1, 0, 1),
            arena.scan(0, 1, 0, 2),
            arena.scan(0, 1, 0, 1),
            arena.scan(0, 1, 0, 2),
            (INF, 0),
        ]


class TestShapeAndAccounting:
    def test_lengths_and_totals(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        assert arena.num_vertices == 3
        assert arena.total_entries == 5
        assert arena.label_length(3) == 3
        assert arena.label_length(9) == 0
        assert arena.max_label_length() == 3

    def test_nbytes_counts_buffers(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        # offsets: 4 * 8, dist: 5 * 8, count: 5 * 8, no overflow.
        assert arena.nbytes() == 32 + 40 + 40
        assert arena.size_bytes() == 2 * 4 * 5

    def test_dict_layout_dominates_arena(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        modelled = LabelArena.dict_layout_bytes(
            arena.num_vertices, arena.total_entries
        )
        assert modelled > arena.nbytes()

    def test_equality_is_bit_for_bit(self, simple_lists):
        a = LabelArena.from_lists(*simple_lists)
        b = LabelArena.from_lists(*simple_lists)
        assert a == b
        order, dist, count = simple_lists
        count = {v: list(c) for v, c in count.items()}
        count[7][0] += 1
        assert a != LabelArena.from_lists(order, dist, count)
        assert a.__eq__(object()) is NotImplemented

    def test_record_layout_gauges(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        rec = Recorder()
        record_layout_gauges(rec, arena)
        snapshot = rec.metrics_snapshot()["gauges"]
        assert snapshot["labels.arena_bytes"] == arena.nbytes()
        assert snapshot["labels.dict_bytes"] > snapshot["labels.arena_bytes"]
        assert snapshot["labels.overflow_entries"] == 0

    def test_repr_mentions_shape(self, simple_lists):
        arena = LabelArena.from_lists(*simple_lists)
        assert "n=3" in repr(arena)
        assert "entries=5" in repr(arena)

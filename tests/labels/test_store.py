"""Tests for the label store."""

from repro.labels.store import LabelStore


class TestLabelStore:
    def test_initial_state(self):
        store = LabelStore([0, 1, 2])
        assert store.num_vertices == 3
        assert store.total_entries == 0
        assert store.label_length(1) == 0

    def test_append_and_entry(self):
        store = LabelStore([0, 1])
        store.append(0, 5, 2)
        store.append(0, 7, 1)
        assert store.entry(0, 0) == (5, 2)
        assert store.entry(0, 1) == (7, 1)
        assert store.label_length(0) == 2
        assert store.total_entries == 2

    def test_accepts_iterator_of_vertices(self):
        store = LabelStore(iter([0, 1, 2]))
        assert store.num_vertices == 3
        store.append(2, 1, 1)
        assert store.count[2] == [1]

    def test_size_bytes_model(self):
        store = LabelStore([0])
        store.append(0, 5, 2)
        store.append(0, 7, 1)
        # Two entries, two 32-bit elements each.
        assert store.size_bytes() == 16
        assert store.size_bytes(bytes_per_element=8) == 32

    def test_max_label_length(self):
        store = LabelStore([0, 1])
        assert store.max_label_length() == 0
        store.append(0, 1, 1)
        store.append(0, 2, 1)
        store.append(1, 3, 1)
        assert store.max_label_length() == 2

    def test_exact_big_counts(self):
        store = LabelStore([0])
        huge = 2**80
        store.append(0, 1, huge)
        assert store.entry(0, 0)[1] == huge

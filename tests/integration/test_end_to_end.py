"""Integration tests: whole-library flows across modules."""

import random

import pytest

from repro import (
    CTLIndex,
    CTLSIndex,
    DynamicCTL,
    OnlineSPC,
    TLIndex,
    load_index,
    road_network,
    save_index,
    spc_query,
)
from repro.apps.betweenness import betweenness_exact, betweenness_sampled
from repro.apps.poi import recommend_pois
from repro.bench.workloads import distance_binned_queries, random_pairs
from repro.graph.io import read_dimacs, write_dimacs


@pytest.fixture(scope="module")
def network():
    return road_network(350, seed=21)


@pytest.fixture(scope="module")
def all_indexes(network):
    return {
        "TL": TLIndex.build(network),
        "CTL": CTLIndex.build(network),
        "CTLS-basic": CTLSIndex.build(network, strategy="basic"),
        "CTLS-pruned": CTLSIndex.build(network, strategy="pruned"),
        "CTLS-cutsearch": CTLSIndex.build(network, strategy="cutsearch"),
        "online": OnlineSPC.build(network),
    }


class TestAllIndexesAgree:
    def test_random_queries(self, network, all_indexes):
        pairs = random_pairs(network, 150, seed=9)
        for s, t in pairs:
            expected = tuple(spc_query(network, s, t))
            for name, index in all_indexes.items():
                assert tuple(index.query(s, t)) == expected, (name, s, t)

    def test_distance_binned_queries(self, network, all_indexes):
        groups = distance_binned_queries(
            network, per_bin=5, seed=2, max_sources=80
        )
        for group in groups:
            for s, t in group.pairs:
                expected = tuple(spc_query(network, s, t))
                for name, index in all_indexes.items():
                    assert tuple(index.query(s, t)) == expected, (name, s, t)


class TestFileRoundTrips:
    def test_dimacs_then_index(self, tmp_path, network):
        path = tmp_path / "net.gr"
        write_dimacs(network, path)
        again = read_dimacs(path)
        index = CTLSIndex.build(again)
        s, t = 0, network.num_vertices - 1
        assert tuple(index.query(s, t)) == tuple(spc_query(network, s, t))

    def test_save_load_query(self, tmp_path, all_indexes, network):
        pairs = random_pairs(network, 20, seed=4)
        for name in ("TL", "CTL", "CTLS-cutsearch"):
            index = all_indexes[name]
            path = tmp_path / f"{name}.json"
            save_index(index, path)
            loaded = load_index(path)
            for s, t in pairs:
                assert tuple(loaded.query(s, t)) == tuple(index.query(s, t))


class TestApplicationsOnIndexes:
    def test_betweenness_estimate_correlates_with_exact(self, network, all_indexes):
        exact = betweenness_exact(network)
        top_exact = sorted(exact, key=exact.get, reverse=True)[:5]
        estimated = betweenness_sampled(
            all_indexes["CTLS-cutsearch"],
            vertices=top_exact + sorted(network.vertices())[:5],
            num_samples=400,
            population=sorted(network.vertices()),
            seed=11,
        )
        # The globally best vertex should score well in the estimate.
        best = top_exact[0]
        assert estimated[best] > 0

    def test_poi_agrees_between_indexes(self, network, all_indexes):
        rng = random.Random(2)
        vertices = sorted(network.vertices())
        candidates = rng.sample(vertices, 12)
        source = vertices[0]
        results = {
            name: [r.vertex for r in recommend_pois(idx, source, candidates, k=5)]
            for name, idx in all_indexes.items()
        }
        baseline = results["online"]
        for name, ranking in results.items():
            assert ranking == baseline, name


class TestDynamicFlow:
    def test_traffic_update_sequence(self, network):
        dyn = DynamicCTL(network, seed=1)
        rng = random.Random(6)
        edges = sorted((u, v) for u, v, _w, _c in network.edges())
        vertices = sorted(network.vertices())
        for _round in range(3):
            u, v = edges[rng.randrange(len(edges))]
            old = dyn.graph.weight(u, v)
            dyn.update_weight(u, v, old * 2)  # congestion doubles time
            s, t = rng.choice(vertices), rng.choice(vertices)
            assert tuple(dyn.query(s, t)) == tuple(spc_query(dyn.graph, s, t))

"""The Exp-3 mechanism, tested without timing noise.

Fig. 10's trends are driven by *how many labels* each algorithm scans
at a given query distance: TL/CTL scan root-to-LCA prefixes that
shrink as pairs get farther apart (shallower LCAs), while CTLS scans
LCA node blocks that grow (wider cuts near the root).  Visited-label
counters expose this deterministically.
"""

import pytest

from repro.baselines.tl import TLIndex
from repro.bench.measure import average_visited_labels
from repro.bench.workloads import distance_binned_queries
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.graph.generators import road_network


@pytest.fixture(scope="module")
def setup():
    graph = road_network(900, seed=33)
    groups = [
        g
        for g in distance_binned_queries(
            graph, per_bin=60, seed=2, max_sources=300
        )
        if len(g.pairs) >= 30
    ]
    assert len(groups) >= 4, "workload generation must fill several bins"
    indexes = {
        "TL": TLIndex.build(graph),
        "CTL": CTLIndex.build(graph),
        "CTLS": CTLSIndex.build(graph),
    }
    return groups, indexes


def visits_by_bin(index, groups):
    return [average_visited_labels(index, g.pairs) for g in groups]


class TestFig10Mechanism:
    def test_tl_and_ctl_visits_shrink_with_distance(self, setup):
        groups, indexes = setup
        for name in ("TL", "CTL"):
            visits = visits_by_bin(indexes[name], groups)
            # Compare the first filled bins against the last: long-range
            # pairs meet at shallow LCAs -> much shorter prefixes.
            assert visits[0] > visits[-1], (name, visits)

    def test_ctls_visits_grow_with_distance(self, setup):
        groups, indexes = setup
        visits = visits_by_bin(indexes["CTLS"], groups)
        assert visits[0] < visits[-1], visits

    def test_ctls_dominates_short_distance(self, setup):
        groups, indexes = setup
        short = groups[0].pairs
        ctls = average_visited_labels(indexes["CTLS"], short)
        tl = average_visited_labels(indexes["TL"], short)
        # The paper's short-distance headline (up to 16x) comes from
        # exactly this gap.
        assert ctls * 2 < tl, (ctls, tl)

"""Smoke tests: the shipped examples must run end to end.

Each example is importable with a ``main()`` entry point; the heaviest
ones are exercised through smaller stand-ins of their core flow to keep
the suite fast, while ``quickstart`` runs verbatim.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "betweenness_analysis.py",
        "poi_recommendation.py",
        "dynamic_traffic.py",
        "build_and_save_index.py",
        "profile_query_workload.py",
    } <= present


def test_examples_have_main():
    for path in EXAMPLES.glob("*.py"):
        source = path.read_text()
        assert "def main(" in source, path.name
        assert '__name__ == "__main__"' in source, path.name


def test_quickstart_runs(capsys):
    module = runpy.run_path(str(EXAMPLES / "quickstart.py"))
    module["main"]()
    out = capsys.readouterr().out
    assert "MISMATCH" not in out
    assert "CTLS-Index" in out


def test_build_and_save_index_runs(tmp_path, capsys, monkeypatch):
    from repro.graph.generators import road_network
    from repro.graph.io import write_dimacs

    network = tmp_path / "tiny.gr"
    write_dimacs(road_network(300, seed=1), network)
    module = runpy.run_path(str(EXAMPLES / "build_and_save_index.py"))
    monkeypatch.setattr(sys, "argv", ["build_and_save_index.py", str(network)])
    module["main"]()
    out = capsys.readouterr().out
    assert "us/query" in out
    assert (tmp_path / "tiny.spc-index.json").exists()


def test_profile_query_workload_runs(capsys, monkeypatch):
    # A small vertex count keeps the generate/build/profile loop fast.
    module = runpy.run_path(str(EXAMPLES / "profile_query_workload.py"))
    monkeypatch.setattr(sys, "argv", ["profile_query_workload.py", "300"])
    module["main"]()
    out = capsys.readouterr().out
    assert "trace written to" in out
    assert "p50=" in out and "p99=" in out
    assert "ctls.build" in out
    assert "ui.perfetto.dev" in out

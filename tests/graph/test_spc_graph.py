"""Tests for shortcut merge semantics and SPC-Graph validation."""

from repro.graph.graph import Graph
from repro.graph.spc_graph import add_shortcut, is_spc_graph_of, union_with_shortcuts


class TestAddShortcut:
    def test_creates_missing_edge(self):
        g = Graph.from_edges([(0, 1, 1)])
        g.add_vertex(2)
        add_shortcut(g, 0, 2, 5, 3)
        assert g.weight(0, 2) == 5
        assert g.count(0, 2) == 3

    def test_shorter_replaces(self):
        g = Graph()
        g.add_edge(0, 1, 10, count=2)
        add_shortcut(g, 0, 1, 4, 7)
        assert g.weight(0, 1) == 4
        assert g.count(0, 1) == 7

    def test_equal_merges_counts(self):
        g = Graph()
        g.add_edge(0, 1, 10, count=2)
        add_shortcut(g, 0, 1, 10, 5)
        assert g.weight(0, 1) == 10
        assert g.count(0, 1) == 7

    def test_longer_is_noop(self):
        g = Graph()
        g.add_edge(0, 1, 3, count=2)
        add_shortcut(g, 0, 1, 9, 5)
        assert g.weight(0, 1) == 3
        assert g.count(0, 1) == 2

    def test_zero_count_is_noop(self):
        g = Graph()
        g.add_vertex(0)
        g.add_vertex(1)
        add_shortcut(g, 0, 1, 3, 0)
        assert not g.has_edge(0, 1)


class TestUnionWithShortcuts:
    def test_base_untouched(self):
        base = Graph.from_edges([(0, 1, 2)])
        merged = union_with_shortcuts(base, [(0, 1, 2, 4)])
        assert base.count(0, 1) == 1
        assert merged.count(0, 1) == 5


class TestIsSpcGraphOf:
    def test_identity_is_spc_graph(self, diamond):
        assert is_spc_graph_of(diamond, diamond)

    def test_detects_distance_change(self, diamond):
        broken = diamond.copy()
        broken.add_edge(0, 3, 1)  # introduces a shorter path
        assert not is_spc_graph_of(broken, diamond)

    def test_detects_count_change(self, diamond):
        broken = diamond.copy()
        broken.add_edge(0, 3, 2)  # same distance, extra path
        assert not is_spc_graph_of(broken, diamond)

    def test_proper_shortcut_subgraph(self, diamond):
        # Removing vertex 2 and adding shortcut (0,3) with count 1
        # preserves distance/count between the remaining vertices.
        reduced = diamond.induced_subgraph([0, 1, 3])
        add_shortcut(reduced, 0, 3, 2, 1)
        assert is_spc_graph_of(reduced, diamond)

    def test_sample_pairs(self, diamond):
        reduced = diamond.induced_subgraph([0, 1, 3])
        add_shortcut(reduced, 0, 3, 2, 1)
        assert is_spc_graph_of(reduced, diamond, sample_pairs=[(0, 3)])

    def test_extra_vertex_rejected(self, diamond):
        other = diamond.copy()
        other.add_edge(3, 9, 1)
        assert not is_spc_graph_of(other, diamond)

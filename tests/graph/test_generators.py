"""Tests for synthetic network generators."""

import pytest

from repro.graph.components import is_connected
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    grid_road_network,
    path_graph,
    power_grid_network,
    random_geometric_network,
    road_network,
    star_graph,
)
from repro.graph.validation import check_graph


class TestElementaryGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.num_edges == 4

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.coordinates is not None


class TestRoadNetworks:
    def test_deterministic(self):
        a = road_network(500, seed=5)
        b = road_network(500, seed=5)
        assert a == b

    def test_seed_changes_graph(self):
        a = road_network(500, seed=5)
        b = road_network(500, seed=6)
        assert a != b

    def test_connected_dense_ids(self):
        g = road_network(500, seed=5)
        assert is_connected(g)
        assert sorted(g.vertices()) == list(range(g.num_vertices))

    def test_size_near_target(self):
        g = road_network(1000, seed=1)
        assert 700 <= g.num_vertices <= 1300

    def test_invariants(self):
        assert check_graph(road_network(300, seed=2)) == []

    def test_aspect(self):
        g = road_network(500, seed=5, aspect=2.0)
        xs = [x for x, _y in g.coordinates.values()]
        ys = [y for _x, y in g.coordinates.values()]
        assert max(xs) > max(ys)  # stretched horizontally

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            road_network(2)

    def test_hole_fraction_validated(self):
        with pytest.raises(ValueError):
            grid_road_network(5, 5, hole_fraction=1.5)


class TestOtherGenerators:
    def test_power_grid(self):
        g = power_grid_network(300, seed=1)
        assert g.num_vertices == 300
        assert is_connected(g)
        avg_degree = 2 * g.num_edges / g.num_vertices
        assert 2.0 <= avg_degree <= 4.0
        assert check_graph(g) == []

    def test_random_geometric(self):
        g = random_geometric_network(300, seed=1)
        assert is_connected(g)
        assert g.num_vertices > 200
        assert check_graph(g) == []

    def test_random_geometric_deterministic(self):
        assert random_geometric_network(200, seed=3) == random_geometric_network(
            200, seed=3
        )

"""Tests for graph invariant checking."""

import pytest

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.graph.validation import check_graph, validate_graph


class TestCheckGraph:
    def test_sound_graph(self, diamond):
        assert check_graph(diamond) == []

    def test_validate_passes(self, diamond):
        validate_graph(diamond)  # no exception

    def test_detects_asymmetry(self):
        g = Graph.from_edges([(0, 1, 2)])
        g._adj[0][1] = (3, 1)  # corrupt one direction
        problems = check_graph(g)
        assert any("asymmetric" in p for p in problems)

    def test_detects_missing_reverse(self):
        g = Graph.from_edges([(0, 1, 2)])
        del g._adj[1][0]
        problems = check_graph(g)
        assert any("reverse" in p for p in problems)

    def test_detects_bad_weight(self):
        g = Graph.from_edges([(0, 1, 2)])
        g._adj[0][1] = g._adj[1][0] = (-1, 1)
        assert any("non-positive" in p for p in check_graph(g))

    def test_detects_bad_count(self):
        g = Graph.from_edges([(0, 1, 2)])
        g._adj[0][1] = g._adj[1][0] = (2, 0)
        assert any("count" in p for p in check_graph(g))

    def test_detects_stale_edge_count(self):
        g = Graph.from_edges([(0, 1, 2)])
        g._num_edges = 5
        assert any("cached edge count" in p for p in check_graph(g))

    def test_validate_raises(self):
        g = Graph.from_edges([(0, 1, 2)])
        g._num_edges = 5
        with pytest.raises(GraphError):
            validate_graph(g)

"""Tests for border vertices and boundary graphs (Definition 4.4)."""

from repro.graph.graph import Graph
from repro.graph.subgraph import border_vertices, boundary_graph, crossing_edges


def _sample():
    # L = {0, 1, 2}; 2 is interior (only edges inside L); 0, 1 are border.
    g = Graph.from_edges(
        [
            (0, 1, 1),
            (0, 2, 1),
            (1, 2, 1),
            (0, 3, 2),
            (1, 4, 2),
            (3, 4, 1),
        ]
    )
    return g


class TestBorderVertices:
    def test_identifies_border(self):
        assert border_vertices(_sample(), [0, 1, 2]) == [0, 1]

    def test_no_border_when_isolated_part(self, two_components):
        assert border_vertices(two_components, [0, 1]) == []

    def test_all_border(self, cycle6):
        assert border_vertices(cycle6, [0, 3]) == [0, 3]


class TestBoundaryGraph:
    def test_excludes_internal_edges(self):
        bg = boundary_graph(_sample(), [0, 1, 2])
        assert not bg.has_edge(0, 1)
        assert not bg.has_edge(0, 2)
        assert bg.has_edge(0, 3)
        assert bg.has_edge(1, 4)
        assert bg.has_edge(3, 4)

    def test_drops_isolated_interior(self):
        bg = boundary_graph(_sample(), [0, 1, 2])
        assert not bg.has_vertex(2)

    def test_preserves_counts(self):
        g = Graph()
        g.add_edge(0, 1, 1, count=5)
        g.add_edge(1, 2, 1)
        bg = boundary_graph(g, [0])
        assert bg.count(0, 1) == 5


class TestCrossingEdges:
    def test_exactly_one_endpoint(self):
        crossing = sorted(
            (u, v) for u, v, _w, _c in crossing_edges(_sample(), [0, 1, 2])
        )
        assert crossing == [(0, 3), (1, 4)]

"""Tests for graph readers and writers."""

import pytest

from repro.exceptions import ParseError
from repro.graph.graph import Graph
from repro.graph.io import (
    read_dimacs,
    read_edge_list,
    read_json,
    write_dimacs,
    write_edge_list,
    write_json,
)


@pytest.fixture
def dimacs_file(tmp_path):
    path = tmp_path / "toy.gr"
    path.write_text(
        "c a toy road network\n"
        "p sp 4 6\n"
        "a 1 2 10\n"
        "a 2 1 10\n"
        "a 2 3 5\n"
        "a 3 2 5\n"
        "a 3 4 2\n"
        "a 4 3 2\n"
    )
    return path


class TestDimacs:
    def test_read(self, dimacs_file):
        g = read_dimacs(dimacs_file)
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.weight(0, 1) == 10
        assert g.weight(2, 3) == 2

    def test_read_keeps_min_weight_of_duplicates(self, tmp_path):
        path = tmp_path / "dup.gr"
        path.write_text("p sp 2 2\na 1 2 9\na 2 1 4\n")
        g = read_dimacs(path)
        assert g.weight(0, 1) == 4

    def test_read_skips_self_loops(self, tmp_path):
        path = tmp_path / "loop.gr"
        path.write_text("p sp 2 2\na 1 1 3\na 1 2 3\n")
        g = read_dimacs(path)
        assert g.num_edges == 1

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("a 1 2 3\n")
        with pytest.raises(ParseError):
            read_dimacs(path)

    def test_bad_arc_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(ParseError) as err:
            read_dimacs(path)
        assert err.value.line_number == 2

    def test_negative_weight(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 2 -4\n")
        with pytest.raises(ParseError):
            read_dimacs(path)

    def test_unknown_tag(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\nz 1 2 3\n")
        with pytest.raises(ParseError):
            read_dimacs(path)

    def test_round_trip(self, tmp_path, diamond):
        path = tmp_path / "out.gr"
        write_dimacs(diamond, path, comment="diamond")
        again = read_dimacs(path)
        assert again == diamond

    def test_write_requires_dense_ids(self, tmp_path):
        g = Graph.from_edges([(0, 5, 1)])
        with pytest.raises(ParseError):
            write_dimacs(g, tmp_path / "x.gr")


class TestEdgeList:
    def test_round_trip_with_counts(self, tmp_path):
        g = Graph()
        g.add_edge(0, 1, 3, count=2)
        g.add_edge(1, 2, 4)
        path = tmp_path / "edges.txt"
        write_edge_list(g, path)
        again = read_edge_list(path)
        assert again == g

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0 1 5\n")
        g = read_edge_list(path)
        assert g.weight(0, 1) == 5

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        with pytest.raises(ParseError):
            read_edge_list(path)


class TestJson:
    def test_round_trip_with_coordinates(self, tmp_path):
        g = Graph()
        g.add_edge(0, 1, 3, count=7)
        g.add_vertex(2)
        g.coordinates = {0: (0.0, 0.0), 1: (1.0, 0.5), 2: (2.0, 2.0)}
        path = tmp_path / "graph.json"
        write_json(g, path)
        again = read_json(path)
        assert again == g
        assert again.coordinates == g.coordinates

    def test_round_trip_without_coordinates(self, tmp_path, diamond):
        path = tmp_path / "graph.json"
        write_json(diamond, path)
        assert read_json(path) == diamond

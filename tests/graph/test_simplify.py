"""Tests for count-preserving graph simplification."""

import pytest

from repro.graph.generators import cycle_graph, path_graph, road_network
from repro.graph.graph import Graph
from repro.graph.simplify import contract_degree_two, prune_degree_one
from repro.graph.spc_graph import is_spc_graph_of
from repro.search.pairwise import spc_query


class TestContractDegreeTwo:
    def test_chain_collapses_to_edge(self):
        g = path_graph(6, weight=2)
        simplified, removed = contract_degree_two(g)
        assert sorted(simplified.vertices()) == [0, 5]
        assert simplified.weight(0, 5) == 10
        assert simplified.count(0, 5) == 1
        assert set(removed) == {1, 2, 3, 4}

    def test_keep_vertices_survive(self):
        g = path_graph(6)
        simplified, _removed = contract_degree_two(g, keep=[3])
        assert simplified.has_vertex(3)
        assert simplified.weight(0, 3) == 3
        assert simplified.weight(3, 5) == 2

    def test_parallel_chains_merge_counts(self):
        # Two disjoint 3-hop chains between 0 and 9.
        g = Graph.from_edges(
            [
                (0, 1, 1), (1, 2, 1), (2, 9, 1),
                (0, 3, 1), (3, 4, 1), (4, 9, 1),
            ]
        )
        simplified, _removed = contract_degree_two(g, keep=[0, 9])
        assert simplified.count(0, 9) == 2
        assert simplified.weight(0, 9) == 3

    def test_unequal_chains_keep_shorter(self):
        g = Graph.from_edges(
            [
                (0, 1, 1), (1, 9, 1),          # length 2
                (0, 2, 2), (2, 3, 2), (3, 9, 2),  # length 6
            ]
        )
        simplified, _removed = contract_degree_two(g, keep=[0, 9])
        assert simplified.weight(0, 9) == 2
        assert simplified.count(0, 9) == 1

    def test_ring_collapses(self):
        g = cycle_graph(8)
        simplified, _removed = contract_degree_two(g, keep=[0, 4])
        # Antipodal survivors: two equal 4-hop arcs merge into count 2.
        assert sorted(simplified.vertices()) == [0, 4]
        assert simplified.weight(0, 4) == 4
        assert simplified.count(0, 4) == 2

    def test_is_spc_graph_of_original(self):
        g = road_network(250, seed=7)
        junctions = [v for v in g.vertices() if g.degree(v) != 2]
        simplified, _removed = contract_degree_two(g)
        assert set(simplified.vertices()) >= set(junctions)
        assert is_spc_graph_of(
            simplified,
            g,
            sample_pairs=[
                (junctions[i], junctions[-1 - i]) for i in range(10)
            ],
        )

    def test_index_on_simplified_graph_is_exact(self):
        from repro.core.ctls import CTLSIndex

        g = road_network(250, seed=7)
        simplified, _removed = contract_degree_two(g)
        index = CTLSIndex.build(simplified)
        survivors = sorted(simplified.vertices())
        for s, t in zip(survivors[:12], survivors[-12:]):
            assert tuple(index.query(s, t)) == tuple(spc_query(g, s, t))


class TestPruneDegreeOne:
    def test_spur_removed(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1)])
        pruned, removed = prune_degree_one(g)
        assert removed == [3]
        assert sorted(pruned.vertices()) == [0, 1, 2]

    def test_cascading_removal(self):
        g = path_graph(5)
        pruned, removed = prune_degree_one(g, keep=[0])
        # The whole path unravels from the far end, sparing vertex 0.
        assert sorted(pruned.vertices()) == [0]
        assert len(removed) == 4

    def test_queries_between_survivors_unchanged(self):
        g = road_network(250, seed=8)
        pruned, removed = prune_degree_one(g)
        removed_set = set(removed)
        survivors = sorted(pruned.vertices())
        for s, t in zip(survivors[:8], survivors[-8:]):
            assert (s in removed_set) is False
            assert tuple(spc_query(pruned, s, t)) == tuple(spc_query(g, s, t))

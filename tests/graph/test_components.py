"""Tests for connectivity utilities."""

from repro.graph.components import (
    bfs_order,
    component_of,
    connected_components,
    is_connected,
    largest_component,
    relabel_to_dense,
)
from repro.graph.graph import Graph


class TestBfsOrder:
    def test_starts_at_source(self, path5):
        order = bfs_order(path5, 2)
        assert order[0] == 2
        assert set(order) == {0, 1, 2, 3, 4}

    def test_only_reachable(self, two_components):
        assert set(bfs_order(two_components, 0)) == {0, 1}


class TestConnectedComponents:
    def test_single_component(self, path5):
        comps = connected_components(path5)
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2, 3, 4]

    def test_two_components(self, two_components):
        comps = connected_components(two_components)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_within_restriction(self, path5):
        # Removing vertex 2 splits the path.
        comps = connected_components(path5, within=[0, 1, 3, 4])
        assert sorted(sorted(c) for c in comps) == [[0, 1], [3, 4]]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []


class TestIsConnected:
    def test_empty_and_singleton(self):
        assert is_connected(Graph())
        g = Graph()
        g.add_vertex(0)
        assert is_connected(g)

    def test_connected(self, path5):
        assert is_connected(path5)

    def test_disconnected(self, two_components):
        assert not is_connected(two_components)


class TestLargestComponent:
    def test_picks_bigger(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (5, 6, 1)])
        big = largest_component(g)
        assert sorted(big.vertices()) == [0, 1, 2]


class TestComponentOf:
    def test_respects_removed(self, path5):
        assert component_of(path5, 0, removed={2}) == {0, 1}
        assert component_of(path5, 4, removed={2}) == {3, 4}

    def test_removed_vertex_is_empty(self, path5):
        assert component_of(path5, 2, removed={2}) == set()


class TestRelabel:
    def test_dense_ids(self):
        g = Graph.from_edges([(10, 20, 3), (20, 40, 5)])
        dense, mapping = relabel_to_dense(g)
        assert sorted(dense.vertices()) == [0, 1, 2]
        assert mapping == {10: 0, 20: 1, 40: 2}
        assert dense.weight(0, 1) == 3

    def test_preserves_counts_and_coords(self):
        g = Graph()
        g.add_edge(3, 9, 2, count=4)
        g.coordinates = {3: (0.5, 0.5), 9: (1.0, 1.0)}
        dense, mapping = relabel_to_dense(g)
        assert dense.count(mapping[3], mapping[9]) == 4
        assert dense.coordinates[mapping[3]] == (0.5, 0.5)

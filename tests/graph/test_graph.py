"""Unit tests for the core Graph structure."""

import pytest

from repro.exceptions import EdgeError, VertexNotFoundError
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_add_vertex(self):
        g = Graph()
        g.add_vertex(5)
        assert g.has_vertex(5)
        assert g.num_vertices == 1
        assert g.degree(5) == 0

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.num_vertices == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2, 10)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 10
        assert g.count(1, 2) == 1

    def test_add_edge_symmetric(self):
        g = Graph()
        g.add_edge(1, 2, 10, count=3)
        assert g.weight(2, 1) == 10
        assert g.count(2, 1) == 3

    def test_add_edge_overwrites(self):
        g = Graph()
        g.add_edge(1, 2, 10)
        g.add_edge(1, 2, 4, count=2)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 4
        assert g.count(1, 2) == 2

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(EdgeError):
            g.add_edge(1, 1, 5)

    @pytest.mark.parametrize("weight", [0, -1, -0.5])
    def test_non_positive_weight_rejected(self, weight):
        g = Graph()
        with pytest.raises(EdgeError):
            g.add_edge(1, 2, weight)

    @pytest.mark.parametrize("count", [0, -1])
    def test_bad_count_rejected(self, count):
        g = Graph()
        with pytest.raises(EdgeError):
            g.add_edge(1, 2, 5, count=count)

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1, 2), (1, 2, 3)], vertices=[7])
        assert g.num_vertices == 4
        assert g.has_vertex(7)
        assert g.degree(7) == 0


class TestRemoval:
    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        assert g.has_vertex(0)

    def test_remove_missing_edge(self):
        g = Graph.from_edges([(0, 1, 1)])
        with pytest.raises(EdgeError):
            g.remove_edge(0, 2)

    def test_remove_vertex(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 1)])
        g.remove_vertex(1)
        assert not g.has_vertex(1)
        assert g.num_edges == 1
        assert g.has_edge(0, 2)
        assert 1 not in list(g.adj(0))

    def test_remove_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(9)

    def test_remove_vertex_updates_coordinates(self):
        g = Graph.from_edges([(0, 1, 1)])
        g.coordinates = {0: (0.0, 0.0), 1: (1.0, 1.0)}
        g.remove_vertex(1)
        assert g.coordinates == {0: (0.0, 0.0)}


class TestInspection:
    def test_edges_reported_once(self):
        g = Graph.from_edges([(0, 1, 2), (1, 2, 3), (0, 2, 4)])
        edges = sorted(g.edges())
        assert edges == [(0, 1, 2, 1), (0, 2, 4, 1), (1, 2, 3, 1)]

    def test_weight_of_missing_edge(self):
        g = Graph.from_edges([(0, 1, 1)])
        with pytest.raises(EdgeError):
            g.weight(0, 2)

    def test_adj_of_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.adj(3)

    def test_neighbors_and_degree(self):
        g = Graph.from_edges([(0, 1, 1), (0, 2, 1), (0, 3, 1)])
        assert sorted(g.neighbors(0)) == [1, 2, 3]
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_max_degree(self):
        g = Graph.from_edges([(0, 1, 1), (0, 2, 1)])
        assert g.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_dunder_protocols(self):
        g = Graph.from_edges([(0, 1, 1)])
        assert 0 in g
        assert 5 not in g
        assert len(g) == 2
        assert sorted(g) == [0, 1]
        assert "n=2" in repr(g)

    def test_equality(self):
        a = Graph.from_edges([(0, 1, 2)])
        b = Graph.from_edges([(0, 1, 2)])
        c = Graph.from_edges([(0, 1, 3)])
        assert a == b
        assert a != c
        assert a != "not a graph"


class TestDerivation:
    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1, 1)])
        clone = g.copy()
        clone.add_edge(1, 2, 5)
        assert g.num_vertices == 2
        assert clone.num_vertices == 3

    def test_copy_preserves_coordinates(self):
        g = Graph.from_edges([(0, 1, 1)])
        g.coordinates = {0: (0, 0), 1: (1, 0)}
        clone = g.copy()
        clone.coordinates[0] = (9, 9)
        assert g.coordinates[0] == (0, 0)

    def test_induced_subgraph(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 1)])
        sub = g.induced_subgraph([0, 1, 2])
        assert sorted(sub.vertices()) == [0, 1, 2]
        assert sub.num_edges == 2
        assert not sub.has_edge(0, 3)

    def test_induced_subgraph_unknown_vertex(self):
        g = Graph.from_edges([(0, 1, 1)])
        with pytest.raises(VertexNotFoundError):
            g.induced_subgraph([0, 9])

    def test_induced_subgraph_keeps_counts(self):
        g = Graph()
        g.add_edge(0, 1, 2, count=4)
        sub = g.induced_subgraph([0, 1])
        assert sub.count(0, 1) == 4

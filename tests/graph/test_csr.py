"""Tests for packed-adjacency graph snapshots."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, road_network
from repro.graph.graph import Graph


class TestCSRGraph:
    def test_counts_match_source(self):
        g = road_network(200, seed=5)
        csr = CSRGraph(g)
        assert csr.num_vertices == g.num_vertices
        assert csr.num_edges == g.num_edges

    def test_dense_ids_are_sorted_originals(self):
        g = Graph.from_edges([(10, 30, 1), (30, 20, 2)])
        csr = CSRGraph(g)
        assert csr.vertices == [10, 20, 30]
        assert csr.dense_id(20) == 1

    def test_unknown_vertex(self):
        csr = CSRGraph(Graph.from_edges([(0, 1, 1)]))
        with pytest.raises(VertexNotFoundError):
            csr.dense_id(9)

    def test_neighbors_preserve_weights_and_counts(self):
        g = Graph()
        g.add_edge(0, 1, 7, count=3)
        csr = CSRGraph(g)
        assert csr.neighbors[0] == ((1, 7, 3),)
        assert csr.neighbors[1] == ((0, 7, 3),)

    def test_degree(self):
        g = grid_graph(3, 3)
        csr = CSRGraph(g)
        assert csr.degree(csr.dense_id(4)) == 4  # grid centre

    def test_empty_graph(self):
        csr = CSRGraph(Graph())
        assert csr.num_vertices == 0
        assert csr.num_edges == 0

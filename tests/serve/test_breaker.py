"""Unit tests for the scan-path circuit breaker."""

import pytest

from repro.serve.breaker import CircuitBreaker


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_trips_after_consecutive_failures():
    breaker = CircuitBreaker(3, 5.0, clock=_Clock())
    assert not breaker.open
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True  # the trip
    assert breaker.open
    assert breaker.trips == 1
    assert breaker.record_failure() is False  # already open: no re-trip


def test_success_resets_the_streak():
    breaker = CircuitBreaker(3, clock=_Clock())
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    # Isolated faults interleaved with successes never trip it.
    assert breaker.record_failure() is False
    assert not breaker.open


def test_probe_once_per_cooldown():
    clock = _Clock()
    breaker = CircuitBreaker(1, 5.0, clock=clock)
    breaker.record_failure()
    assert breaker.open
    assert breaker.prefer_fallback() is True  # still cooling down
    clock.now = 6.0
    assert breaker.prefer_fallback() is False  # the probe
    assert breaker.prefer_fallback() is True  # only one per window
    breaker.record_success()  # the probe came back healthy
    assert not breaker.open
    assert breaker.prefer_fallback() is False


def test_threshold_zero_disables():
    breaker = CircuitBreaker(0)
    for _ in range(100):
        breaker.record_failure()
    assert not breaker.enabled
    assert not breaker.open
    assert breaker.prefer_fallback() is False


def test_snapshot_shape():
    breaker = CircuitBreaker(2)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap["state"] == "closed"
    assert snap["consecutive_failures"] == 1
    assert snap["threshold"] == 2
    breaker.record_failure()
    assert breaker.snapshot()["state"] == "open"


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(-1)
    with pytest.raises(ValueError):
        CircuitBreaker(1, -0.5)

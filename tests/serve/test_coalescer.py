"""MicroBatcher semantics: windows, flush triggers, error isolation."""

import asyncio

import pytest

from repro.exceptions import IndexQueryError
from repro.serve.coalescer import MicroBatcher
from repro.types import QueryResult


class FakeIndex:
    """Counts batch calls; vertex ids < 0 are 'unindexed'."""

    def __init__(self):
        self.batch_calls = []
        self.scalar_calls = 0

    def query(self, source, target):
        self.scalar_calls += 1
        if source < 0 or target < 0:
            raise IndexQueryError(f"vertex {min(source, target)}")
        return QueryResult(source + target, 1)

    def query_batch(self, pairs):
        self.batch_calls.append(list(pairs))
        results = []
        for source, target in pairs:
            if source < 0 or target < 0:
                raise IndexQueryError(f"vertex {min(source, target)}")
            results.append(QueryResult(source + target, 1))
        return results


def test_concurrent_submissions_form_one_batch():
    index = FakeIndex()

    async def scenario():
        batcher = MicroBatcher(index, max_batch=64)
        futures = [batcher.submit(i, i + 1) for i in range(10)]
        results = await asyncio.gather(*futures)
        await batcher.drain()
        return results

    results = asyncio.run(scenario())
    assert results == [QueryResult(2 * i + 1, 1) for i in range(10)]
    # all ten landed in a single batch scan
    assert len(index.batch_calls) == 1
    assert len(index.batch_calls[0]) == 10


def test_full_window_flushes_immediately():
    index = FakeIndex()

    async def scenario():
        batcher = MicroBatcher(index, max_batch=4)
        futures = [batcher.submit(i, i) for i in range(10)]
        await asyncio.gather(*futures)
        await batcher.drain()
        return batcher

    batcher = asyncio.run(scenario())
    assert batcher.queries_batched == 10
    # 4 + 4 + 2 under max_batch=4
    sizes = sorted(len(call) for call in index.batch_calls)
    assert sizes == [2, 4, 4]


def test_lone_submission_resolves_quickly():
    index = FakeIndex()

    async def scenario():
        batcher = MicroBatcher(index, max_batch=64, max_wait_us=10_000_000)
        # must resolve via the idle flush, far before the backstop timer
        result = await asyncio.wait_for(batcher.submit(2, 3), timeout=1.0)
        await batcher.drain()
        return result

    assert asyncio.run(scenario()) == QueryResult(5, 1)


def test_bad_pair_fails_only_its_future():
    index = FakeIndex()

    async def scenario():
        batcher = MicroBatcher(index, max_batch=64)
        good = batcher.submit(1, 2)
        bad = batcher.submit(-7, 2)
        also_good = batcher.submit(3, 4)
        results = await asyncio.gather(
            good, bad, also_good, return_exceptions=True
        )
        await batcher.drain()
        return results

    first, second, third = asyncio.run(scenario())
    assert first == QueryResult(3, 1)
    assert isinstance(second, IndexQueryError)
    assert third == QueryResult(7, 1)


def test_cancelled_waiter_does_not_break_batch_mates():
    index = FakeIndex()

    async def scenario():
        batcher = MicroBatcher(index, max_batch=64)
        doomed = batcher.submit(1, 1)
        survivor = batcher.submit(2, 2)
        doomed.cancel()
        result = await survivor
        await batcher.drain()
        return result

    assert asyncio.run(scenario()) == QueryResult(4, 1)


def test_drain_flushes_pending_window():
    index = FakeIndex()

    async def scenario():
        # huge backstop: only drain (or idle) can flush
        batcher = MicroBatcher(index, max_batch=64, max_wait_us=10_000_000)
        future = batcher.submit(5, 6)
        await batcher.drain()
        assert batcher.pending_count == 0
        return await future

    assert asyncio.run(scenario()) == QueryResult(11, 1)


def test_rejects_bad_max_batch():
    with pytest.raises(ValueError):
        MicroBatcher(FakeIndex(), max_batch=0)

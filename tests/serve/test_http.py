"""HTTP/1.1 framing: request/response round-trips over asyncio pipes."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HTTPProtocolError,
    parse_request,
    read_request,
    read_response,
    response_bytes,
)


def _feed(payload: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


def _run(coro):
    return asyncio.run(coro)


def test_get_request_round_trip():
    async def scenario():
        reader = _feed(
            b"GET /query?source=3&target=9 HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        return await read_request(reader)

    request = _run(scenario())
    assert request.method == "GET"
    assert request.path == "/query"
    assert request.params == {"source": "3", "target": "9"}
    assert request.keep_alive


def test_post_request_with_body():
    body = json.dumps({"source": 1, "target": 2}).encode()
    async def scenario():
        reader = _feed(
            b"POST /query HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        return await read_request(reader)

    request = _run(scenario())
    assert request.method == "POST"
    assert request.json() == {"source": 1, "target": 2}


def test_clean_eof_returns_none():
    async def scenario():
        return await read_request(_feed(b""))

    assert _run(scenario()) is None


def test_mid_head_eof_raises():
    async def scenario():
        return await read_request(_feed(b"GET /query HT"))

    with pytest.raises(HTTPProtocolError):
        _run(scenario())


@pytest.mark.parametrize(
    "raw",
    [
        b"NONSENSE\r\n\r\n",
        b"GET /x HTTP/1.1\r\nBroken-header-no-colon\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
    ],
)
def test_malformed_requests_raise(raw):
    async def scenario():
        return await read_request(_feed(raw))

    with pytest.raises(HTTPProtocolError):
        _run(scenario())


def test_http10_defaults_to_close():
    async def scenario():
        return await parse_request(
            b"GET / HTTP/1.0\r\n\r\n", _feed(b"")
        )

    assert not _run(scenario()).keep_alive


def test_connection_close_honoured():
    async def scenario():
        return await read_request(
            _feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        )

    assert not _run(scenario()).keep_alive


def test_response_round_trip():
    payload = {"distance": 4, "count": 2}
    raw = response_bytes(200, payload, keep_alive=True)

    async def scenario():
        return await read_response(_feed(raw))

    status, headers, decoded = _run(scenario())
    assert status == 200
    assert headers["connection"] == "keep-alive"
    assert decoded == payload


def test_response_bytes_passthrough_body():
    """Pre-serialized bytes payloads are written verbatim."""
    body = b'{"source":1,"target":2,"distance":3,"count":4}'
    raw = response_bytes(200, body, keep_alive=False)

    async def scenario():
        return await read_response(_feed(raw))

    status, headers, decoded = _run(scenario())
    assert status == 200
    assert headers["connection"] == "close"
    assert decoded == json.loads(body)


def test_response_extra_headers():
    raw = response_bytes(
        503, {"error": "overloaded"}, extra_headers=(("Retry-After", "1"),)
    )

    async def scenario():
        return await read_response(_feed(raw))

    status, headers, _ = _run(scenario())
    assert status == 503
    assert headers["retry-after"] == "1"

"""The ``serve --workers N`` fleet: routing, aggregation, chaos, reload.

The router's contract mirrors the single server's, scaled out:

* every answer a client receives is **bit-identical** to the direct
  index answer, whatever worker the consistent-hash ring picked and
  however a ``pairs`` batch was scattered;
* symmetric keys — ``Q(s, t)`` and ``Q(t, s)`` — land on the same
  worker, so the per-worker LRU caches never duplicate entries;
* ``/metrics`` and ``/health`` aggregate the whole fleet;
* the chaos bar set for the single server (double-digit scan-failure
  and connection-reset rates) holds against the fleet;
* ``/admin/reload`` is two-phase: all workers swap or none do, with
  the old index serving throughout.

Worker processes start via the multiprocessing ``spawn`` context, so
each test fleet costs a couple of seconds — the fleets are shared
module-wide where the tests allow it.
"""

import http.client
import json
import os
import random
import signal
import threading
import time

import pytest

from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.core.serialize import save_index
from repro.graph.generators import road_network
from repro.graph.io import write_json
from repro.live import synthesize_deltas
from repro.search.pairwise import spc_query
from repro.serve import (
    FleetThread,
    HashRing,
    RetryPolicy,
    ServeConfig,
    merge_metrics_snapshots,
    replay,
)
from repro.types import INF


@pytest.fixture(scope="module")
def graph():
    return road_network(200, seed=3)


@pytest.fixture(scope="module")
def index(graph):
    return CTLSIndex.build(graph)


@pytest.fixture(scope="module")
def index_path(tmp_path_factory, index):
    path = tmp_path_factory.mktemp("fleet") / "index.bin"
    save_index(index, path, format="binary")
    return path


@pytest.fixture(scope="module")
def workload(graph):
    vertices = list(graph.vertices())
    rng = random.Random(17)
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(300)
    ]


@pytest.fixture(scope="module")
def fleet(index_path):
    thread = FleetThread(index_path, 2, ServeConfig(port=0))
    host, port = thread.start()
    yield host, port
    thread.stop()


def _http(host, port, method, path, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _assert_no_wrong_answers(results, index):
    wrong = []
    for source, target, status, distance, count in results:
        if status != 200:
            continue
        expected = index.query(source, target)
        wire = None if expected.distance == INF else expected.distance
        if (distance, count) != (wire, expected.count):
            wrong.append((source, target))
    assert not wrong, f"fleet answered {len(wrong)} queries wrong: {wrong[:5]}"


# ----------------------------------------------------------------------
# the hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic(self):
        first = HashRing([0, 1, 2])
        second = HashRing([0, 1, 2])
        for key in range(500):
            assert first.owner(str(key)) == second.owner(str(key))

    def test_symmetric_pairs_share_an_owner(self):
        ring = HashRing([0, 1, 2, 3])
        for s in range(40):
            for t in range(40):
                assert ring.owner_of_pair(s, t) == ring.owner_of_pair(t, s)

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing([0, 1, 2])
        hits = {0: 0, 1: 0, 2: 0}
        for key in range(3000):
            hits[ring.owner(str(key))] += 1
        for worker, count in hits.items():
            assert count > 3000 * 0.15, (worker, hits)

    def test_single_worker_owns_everything(self):
        ring = HashRing([7])
        assert {ring.owner(str(key)) for key in range(100)} == {7}

    def test_removing_a_worker_only_moves_its_keys(self):
        # The property consistent hashing buys: keys owned by the
        # surviving workers stay put.
        full = HashRing([0, 1, 2])
        reduced = HashRing([0, 1])
        for key in range(1000):
            before = full.owner(str(key))
            if before != 2:
                assert reduced.owner(str(key)) == before


# ----------------------------------------------------------------------
# metrics aggregation (pure function)
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_metrics_snapshots([
            {"counters": {"a": 2, "b": 1}, "gauges": {"depth": 3}},
            {"counters": {"a": 5}, "gauges": {"depth": 4}},
        ])
        assert merged["counters"] == {"a": 7, "b": 1}
        assert merged["gauges"] == {"depth": 7}

    def test_histograms_merge_bucketwise(self):
        part = {
            "count": 10, "sum": 30.0, "min": 1.0, "max": 9.0,
            "mean": 3.0, "p50": 2.0, "p95": 8.0, "p99": 9.0,
            "buckets": {"<= 5": 8, "> 5": 2},
        }
        other = {
            "count": 2, "sum": 14.0, "min": 6.0, "max": 8.0,
            "mean": 7.0, "p50": 7.0, "p95": 8.0, "p99": 8.0,
            "buckets": {"<= 5": 0, "> 5": 2},
        }
        merged = merge_metrics_snapshots([
            {"histograms": {"latency": part}},
            {"histograms": {"latency": other}},
        ])["histograms"]["latency"]
        assert merged["count"] == 12
        assert merged["sum"] == 44.0
        assert merged["min"] == 1.0
        assert merged["max"] == 9.0
        assert merged["buckets"] == {"<= 5": 8, "> 5": 4}
        assert merged["p50"] == 5.0  # bucket upper bound estimate

    def test_empty_worker_does_not_poison_the_merge(self):
        live = {
            "count": 4, "sum": 8.0, "min": 1.0, "max": 3.0,
            "mean": 2.0, "p50": 2.0, "p95": 3.0, "p99": 3.0,
            "buckets": {"<= 5": 4},
        }
        empty = {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "buckets": {},
        }
        merged = merge_metrics_snapshots([
            {"histograms": {"latency": empty}},
            {"histograms": {"latency": live}},
        ])["histograms"]["latency"]
        assert merged["count"] == 4
        assert merged["min"] == 1.0


# ----------------------------------------------------------------------
# the live fleet
# ----------------------------------------------------------------------
class TestFleetServing:
    def test_replay_matches_direct_index(self, fleet, index, workload):
        host, port = fleet
        report = replay(
            host, port, workload, concurrency=4, collect_results=True
        )
        assert report.availability == 1.0
        _assert_no_wrong_answers(report.results, index)

    def test_batch_pairs_scattered_and_reassembled_in_order(
        self, fleet, index, workload
    ):
        host, port = fleet
        pairs = workload[:40]
        status, body = _http(
            host, port, "POST", "/query",
            {"pairs": [[s, t] for s, t in pairs]},
        )
        assert status == 200
        results = json.loads(body)["results"]
        assert len(results) == len(pairs)
        for (source, target), row in zip(pairs, results):
            assert row["source"] == source and row["target"] == target
            expected = index.query(source, target)
            wire = None if expected.distance == INF else expected.distance
            assert (row["distance"], row["count"]) == (wire, expected.count)

    def test_health_reports_every_worker(self, fleet):
        host, port = fleet
        status, body = _http(host, port, "GET", "/health")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["healthy_workers"] == 2
        assert len(payload["workers"]) == 2

    def test_metrics_aggregate_the_fleet(self, fleet):
        host, port = fleet
        status, body = _http(host, port, "GET", "/metrics")
        assert status == 200
        payload = json.loads(body)
        assert payload["fleet"] == {"workers": 2, "reporting": 2}
        assert payload["counters"].get("serve.requests", 0) > 0

    def test_prometheus_rendering_survives_aggregation(self, fleet):
        host, port = fleet
        status, body = _http(
            host, port, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        text = body.decode()
        assert "serve_requests" in text

    def test_stats_carry_a_fleet_block(self, fleet):
        host, port = fleet
        status, body = _http(host, port, "GET", "/stats")
        assert status == 200
        payload = json.loads(body)
        assert payload["fleet"]["workers"] == 2

    def test_unknown_path_404s(self, fleet):
        host, port = fleet
        status, _ = _http(host, port, "GET", "/nope")
        assert status == 404


class TestFleetChaos:
    def test_chaos_replay_correct_and_available(
        self, index_path, index, workload
    ):
        thread = FleetThread(
            index_path, 2,
            ServeConfig(port=0, cache_size=0, breaker_threshold=10),
            fault_spec="scan.fail:0.15,conn.reset:0.1",
            fault_seed=13,
        )
        try:
            host, port = thread.start()
            report = replay(
                host, port, workload, concurrency=4,
                collect_results=True,
                retry=RetryPolicy(
                    max_attempts=4, base_delay_s=0.001,
                    max_delay_s=0.01, seed=3,
                ),
            )
        finally:
            thread.stop()
        _assert_no_wrong_answers(report.results, index)
        assert report.availability >= 0.9


class TestFleetReload:
    def test_reload_under_load_drops_nothing(
        self, tmp_path, index, index_path, workload
    ):
        next_path = tmp_path / "next.bin"
        save_index(index, next_path, format="binary")
        thread = FleetThread(index_path, 2, ServeConfig(port=0))
        try:
            host, port = thread.start()
            outcome = {}

            def hammer():
                outcome["report"] = replay(
                    host, port, workload, concurrency=4,
                    collect_results=True,
                )

            load = threading.Thread(target=hammer)
            load.start()
            status, body = _http(
                host, port, "POST", "/admin/reload",
                {"path": str(next_path)},
            )
            load.join()
        finally:
            thread.stop()
        payload = json.loads(body)
        assert status == 200 and payload["reloaded"] is True
        assert payload["workers"] == 2
        report = outcome["report"]
        assert report.availability == 1.0, "reload dropped requests"
        _assert_no_wrong_answers(report.results, index)

    def test_corrupt_reload_rejected_fleet_wide(
        self, tmp_path, index, index_path, workload
    ):
        corrupt = tmp_path / "corrupt.bin"
        corrupt.write_bytes(b"RSPCIDX4" + b"\x00" * 64)
        thread = FleetThread(index_path, 2, ServeConfig(port=0))
        try:
            host, port = thread.start()
            status, body = _http(
                host, port, "POST", "/admin/reload",
                {"path": str(corrupt)},
            )
            assert status == 409
            assert json.loads(body)["reloaded"] is False
            # every worker kept the old index and keeps answering
            report = replay(
                host, port, workload[:60], concurrency=2,
                collect_results=True,
            )
        finally:
            thread.stop()
        assert report.availability == 1.0
        _assert_no_wrong_answers(report.results, index)

    def test_get_reload_rejected_405(self, fleet):
        host, port = fleet
        status, _ = _http(host, port, "GET", "/admin/reload")
        assert status == 405


class TestFleetLifecycle:
    def test_stop_is_clean_and_idempotent(self, index_path, workload):
        thread = FleetThread(index_path, 2, ServeConfig(port=0))
        host, port = thread.start()
        replay(host, port, workload[:20], concurrency=2)
        thread.stop()
        thread.stop()  # second stop is a no-op, not an error
        with pytest.raises(OSError):
            http.client.HTTPConnection(
                host, port, timeout=2.0
            ).request("GET", "/health")


class TestFleetTracing:
    """The acceptance criterion: one merged Chrome trace for the fleet
    in which a router span parents a worker-side span across process
    boundaries."""

    def test_merged_trace_links_router_to_worker_spans(
        self, fleet, workload
    ):
        from repro.obs import cross_process_links, validate_chrome_trace

        host, port = fleet
        # Client stamps every request with a sampled traceparent, so
        # tracing is deterministic regardless of head-sampling knobs.
        replay(host, port, workload[:40], concurrency=4, trace_every=1)
        status, body = _http(
            host, port, "POST", "/admin/trace?format=chrome&clear=1"
        )
        assert status == 200
        payload = json.loads(body)
        assert validate_chrome_trace(payload) == []
        assert payload["fleet"] == {"workers": 2, "reporting": 2}
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        roles = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "router" in roles
        assert {"worker-0", "worker-1"} & roles
        by_span_id = {s["args"]["span_id"]: s for s in spans}
        links = cross_process_links(payload)
        assert links, "no cross-process parent/child link in the trace"
        # At least one link must be the router's request span parenting
        # the worker-side request span of the same trace.
        router_to_worker = [
            (parent, child)
            for parent, child in links
            if parent["name"] == "fleet.request"
            and child["name"] == "serve.request"
            and parent["args"]["trace_id"] == child["args"]["trace_id"]
        ]
        assert router_to_worker, links[:3]
        parent, child = router_to_worker[0]
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert parent["pid"] != child["pid"]
        # The worker's scan span hangs off its request span in turn.
        scans = [s for s in spans if s["name"] == "serve.scan_batch"]
        assert any(
            by_span_id.get(s["args"]["parent_id"], {}).get("name")
            == "serve.request"
            for s in scans
        )

    def test_fragment_format_returns_router_fragment(self, fleet):
        host, port = fleet
        status, body = _http(
            host, port, "POST", "/admin/trace?format=fragment"
        )
        assert status == 200
        fragment = json.loads(body)
        assert fragment["role"] == "router"
        assert "wall_at_epoch" in fragment

    def test_trace_capture_requires_post(self, fleet):
        host, port = fleet
        status, _ = _http(host, port, "GET", "/admin/trace")
        assert status == 405


# ----------------------------------------------------------------------
# self-healing: supervision, respawn, WAL catch-up
# ----------------------------------------------------------------------
def _http_with_headers(host, port, method, path, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def _healing_fleet_thread(tmp_path, graph, workers=2, **overrides):
    """A live-update fleet with supervision, respawn, and a WAL."""
    index_path = tmp_path / "index.bin"
    graph_path = tmp_path / "graph.json"
    save_index(CTLIndex.build(graph), index_path, format="binary")
    write_json(graph, graph_path)
    settings = dict(
        port=0,
        live_updates=True,
        wal_dir=str(tmp_path / "wal"),
        respawn=True,
        probe_interval_s=0.2,
        respawn_backoff_s=0.05,
        respawn_backoff_max_s=0.2,
    )
    settings.update(overrides)
    return FleetThread(
        index_path, workers, ServeConfig(**settings),
        live_graph_path=str(graph_path),
    )


def _wait_for(predicate, *, deadline_s, interval_s=0.1):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    return None


class TestFleetSelfHealing:
    """The pinned crash bar: ``kill -9`` one of two workers under a
    sustained query replay *and* a live-update stream.  Zero wrong
    answers, availability >= 0.9, and the respawned worker rejoins at
    the fleet's current epoch/seqno via WAL replay (verified through
    the ``/stats`` per-worker lag rows)."""

    def test_kill_nine_under_load_heals_with_no_wrong_answers(
        self, tmp_path
    ):
        graph = road_network(120, seed=9)
        rng = random.Random(33)
        vertices = sorted(graph.vertices())
        query_pool = [
            (rng.choice(vertices), rng.choice(vertices)) for _ in range(40)
        ]
        batches = synthesize_deltas(graph, batches=4, seed=33)
        mirror = graph.copy()
        snapshots = [graph.copy()]  # every state a query may observe

        def push_batch(host, port, batch):
            status, body = _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            assert status == 200, body
            for a, b, w in batch.updates:
                mirror.add_edge(a, b, w, mirror.count(a, b))
            snapshots.append(mirror.copy())
            return json.loads(body)

        results = []
        stop = threading.Event()

        def hammer(host, port):
            while not stop.is_set():
                s, t = query_pool[len(results) % len(query_pool)]
                try:
                    status, body = _http(
                        host, port, "GET",
                        f"/query?source={s}&target={t}",
                    )
                except OSError:
                    results.append((s, t, 599, None, None))
                    continue
                if status == 200:
                    row = json.loads(body)
                    results.append(
                        (s, t, status, row["distance"], row["count"])
                    )
                else:
                    results.append((s, t, status, None, None))

        thread = _healing_fleet_thread(tmp_path, graph)
        try:
            host, port = thread.start()
            push_batch(host, port, batches[0])
            load = threading.Thread(target=hammer, args=(host, port))
            load.start()
            time.sleep(0.3)

            victim = thread.router.workers[1]
            os.kill(victim.process.pid, signal.SIGKILL)
            # The stream keeps flowing while the worker is down: the
            # router ejects the corpse and applies on the survivor.
            for batch in batches[1:3]:
                push_batch(host, port, batch)

            def healed():
                status, body = _http(host, port, "GET", "/stats")
                if status != 200:
                    return None
                supervisor = json.loads(body)["fleet"]["supervisor"]
                if (
                    supervisor["respawns"] >= 1
                    and supervisor["workers_down"] == 0
                ):
                    return supervisor
                return None

            supervisor = _wait_for(healed, deadline_s=30.0)
            assert supervisor is not None, "worker never respawned"
            assert supervisor["workers"][1]["generation"] >= 1

            # Post-recovery: the next batch reaches both workers and
            # nobody lags the fleet watermark — the respawned worker
            # replayed its WAL and caught up to the missed batches.
            payload = push_batch(host, port, batches[3])
            assert payload["workers"] == 2
            status, body = _http(host, port, "GET", "/stats")
            assert status == 200
            rows = json.loads(body)["fleet"]["per_worker"]
            assert len(rows) == 2
            for row in rows:
                assert row["epoch_lag"] == 0, rows
                assert row["seqno_lag"] == 0, rows
                assert row["seqno"] == len(batches), rows
            stop.set()
            load.join()

            # Every worker answers with the final weights.
            for s, t in query_pool[:20]:
                status, body = _http(
                    host, port, "GET", f"/query?source={s}&target={t}"
                )
                assert status == 200
                row = json.loads(body)
                expect = spc_query(mirror, s, t)
                wire = None if expect.distance >= INF else expect.distance
                assert (row["distance"], row["count"]) == (
                    wire, expect.count,
                ), (s, t)
        finally:
            stop.set()
            thread.stop()

        # Availability: the single kill -9 may fail in-flight requests
        # once, but the ring rebuild keeps the fleet serving.
        ok = sum(1 for r in results if r[2] == 200)
        assert results, "query hammer never ran"
        assert ok / len(results) >= 0.9, (
            f"availability {ok}/{len(results)}"
        )

        # Zero wrong answers: every 200 matches counting Dijkstra on
        # one of the graph states the fleet actually passed through.
        allowed = {}
        for s, t, status, distance, count in results:
            if status != 200:
                continue
            if (s, t) not in allowed:
                answers = set()
                for snapshot in snapshots:
                    expect = spc_query(snapshot, s, t)
                    wire = (
                        None if expect.distance >= INF else expect.distance
                    )
                    answers.add((wire, expect.count))
                allowed[(s, t)] = answers
            assert (distance, count) in allowed[(s, t)], (
                s, t, distance, count, sorted(allowed[(s, t)]),
            )

    def test_flap_circuit_keeps_a_crash_looping_worker_down(
        self, tmp_path
    ):
        graph = road_network(80, seed=5)
        thread = _healing_fleet_thread(
            tmp_path, graph, flap_max_restarts=1
        )
        try:
            host, port = thread.start()
            victim = thread.router.workers[0]
            os.kill(victim.process.pid, signal.SIGKILL)

            def tripped():
                status, body = _http(host, port, "GET", "/stats")
                if status != 200:
                    return None
                supervisor = json.loads(body)["fleet"]["supervisor"]
                row = supervisor["workers"][0]
                return supervisor if row["circuit_open"] else None

            supervisor = _wait_for(tripped, deadline_s=15.0)
            assert supervisor is not None, "flap circuit never tripped"
            assert supervisor["respawns"] == 0  # flapped, not respawned
            status, headers, body = _http_with_headers(
                host, port, "GET", "/health"
            )
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "degraded"
            assert payload["workers_down"] == 1
            assert payload["workers"][0]["status"] == "flapped"
            # The survivor keeps answering alone.
            vertices = sorted(graph.vertices())
            status, _ = _http(
                host, port, "GET",
                f"/query?source={vertices[0]}&target={vertices[-1]}",
            )
            assert status == 200
        finally:
            thread.stop()


class TestFleetAllWorkersDown:
    """Satellite: every worker dead => 503 + ``Retry-After``, and
    ``/health`` reports the outage instead of hanging."""

    def test_query_is_503_with_retry_after(self, index_path):
        thread = FleetThread(
            index_path, 2,
            ServeConfig(port=0, probe_interval_s=0.2, respawn=False),
        )
        try:
            host, port = thread.start()
            for worker in thread.router.workers:
                os.kill(worker.process.pid, signal.SIGKILL)

            def all_down():
                status, body = _http(host, port, "GET", "/health")
                payload = json.loads(body)
                return payload if payload["workers_down"] == 2 else None

            payload = _wait_for(all_down, deadline_s=15.0)
            assert payload is not None, "supervisor never ejected corpses"
            assert payload["status"] == "down"
            assert all(
                row["status"] == "down" for row in payload["workers"]
            )

            status, headers, body = _http_with_headers(
                host, port, "GET", "/query?source=0&target=1"
            )
            assert status == 503
            assert "Retry-After" in headers
            assert int(headers["Retry-After"]) >= 1
            assert "no live workers" in json.loads(body)["error"]

            # Batch scatter takes the same branch.
            status, headers, _ = _http_with_headers(
                host, port, "POST", "/query",
                {"pairs": [[0, 1], [2, 3]]},
            )
            assert status == 503
            assert "Retry-After" in headers
        finally:
            thread.stop()


class TestFleetAnalytics:
    def test_stats_carry_per_worker_rows_and_merged_top_pairs(
        self, fleet, workload
    ):
        host, port = fleet
        hot = workload[0]
        for _ in range(25):
            _http(
                host, port, "GET",
                f"/query?source={hot[0]}&target={hot[1]}",
            )
        status, body = _http(host, port, "GET", "/stats")
        assert status == 200
        payload = json.loads(body)
        fleet_block = payload["fleet"]
        assert fleet_block["workers"] == 2
        rows = fleet_block["per_worker"]
        assert len(rows) == fleet_block["reporting"]
        for row in rows:
            assert {"worker", "requests", "qps", "p99_ms",
                    "cache_hit_rate"} <= set(row)
        top = payload["top_pairs"]
        assert top["sketch"]["total"] > 0
        hot_key = sorted(hot)
        assert hot_key in [entry["pair"] for entry in top["top"]]
        attribution = top["cache_attribution"]
        assert attribution["hot"]["hits"] + attribution["hot"][
            "misses"
        ] > 0

"""Chaos suite: the real server under an injected :class:`FaultPlan`.

The fault-tolerance contract these tests pin, with double-digit
scan-failure and connection-reset rates injected:

* every 200 the client receives is **bit-identical** to the direct
  index answer — chaos may cost availability, never correctness;
* availability stays above the floor (retries + isolate-and-retry);
* the circuit breaker trips on a genuinely broken index, routes to the
  degraded-mode fallback, and closes itself once the index heals;
* hot reload swaps a validated index atomically and refuses a corrupt
  one;
* graceful drain completes fault-slowed in-flight requests.
"""

import asyncio
import json
import random

import pytest

from repro.baselines.online import OnlineSPC
from repro.baselines.tl import TLIndex
from repro.core.serialize import save_index
from repro.faults import FaultPlan
from repro.graph.generators import road_network
from repro.serve import RetryPolicy, ServeConfig, ServerThread, replay
from repro.serve.http import read_response
from repro.types import INF


@pytest.fixture(scope="module")
def graph():
    return road_network(220, seed=11)


@pytest.fixture(scope="module")
def index(graph):
    return TLIndex.build(graph)


@pytest.fixture(scope="module")
def workload(graph):
    vertices = list(graph.vertices())
    rng = random.Random(29)
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(400)
    ]


def _request(host, port, raw: bytes):
    async def scenario():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        response = await read_response(reader)
        writer.close()
        return response

    return asyncio.run(scenario())


def _get(host, port, path):
    return _request(
        host, port, f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
    )


def _post(host, port, path, payload):
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    return _request(host, port, head + body)


def _assert_no_wrong_answers(report, index):
    for source, target, status, distance, count in report.results:
        if status != 200:
            continue
        expected = index.query(source, target)
        wire = None if expected.distance == INF else expected.distance
        assert (distance, count) == (wire, expected.count), (
            f"Q({source}, {target}) answered wrong under chaos"
        )


def test_chaos_replay_correct_and_available(index, workload):
    plan = FaultPlan.parse("scan.fail:0.15,conn.reset:0.1", seed=13)
    thread = ServerThread(
        index,
        ServeConfig(port=0, cache_size=0, breaker_threshold=10),
        fault_plan=plan,
    )
    with thread as (host, port):
        report = replay(
            host, port, workload, concurrency=4,
            collect_results=True,
            retry=RetryPolicy(
                max_attempts=4, base_delay_s=0.001, max_delay_s=0.01,
                seed=3,
            ),
        )
        counters = thread.server.recorder.metrics_snapshot()["counters"]
    # the chaos actually happened
    assert plan.fired("scan.fail") > 10
    assert plan.fired("conn.reset") > 5
    assert report.transport_errors > 0
    assert report.retries > 0
    # ... and the contract held anyway
    _assert_no_wrong_answers(report, index)
    assert report.availability >= 0.9
    # injected scan faults were isolated and retried per-pair
    assert counters.get("serve.batch.isolated", 0) > 0
    assert counters.get("serve.batch.retry_ok", 0) > 0


def test_scan_fault_500s_do_not_kill_batch_mates(index, workload):
    # Without client retries: a fired scan fault may 500 its own
    # request (p^2 after isolation) but never a batch-mate, so the
    # overwhelming majority of a heavily-faulted run still answers.
    plan = FaultPlan.parse("scan.fail:0.25", seed=7)
    thread = ServerThread(
        index,
        ServeConfig(port=0, cache_size=0, breaker_threshold=0),
        fault_plan=plan,
    )
    with thread as (host, port):
        report = replay(
            host, port, workload, concurrency=6, pipeline=2,
            collect_results=True,
        )
    assert plan.fired("scan.fail") > 20
    _assert_no_wrong_answers(report, index)
    # ~6% of requests fail (0.25^2) — far fewer than the 25% fault rate
    assert report.availability >= 0.85
    assert report.status_counts.get(500, 0) > 0


def test_breaker_trips_degrades_and_heals_via_fallback(graph, index):
    # The index fails every scan until 10 fires are spent, then heals.
    plan = FaultPlan.parse("scan.fail:1.0x10", seed=1)
    thread = ServerThread(
        index,
        ServeConfig(
            port=0, cache_size=0,
            breaker_threshold=3, breaker_cooldown_s=0.05,
        ),
        fault_plan=plan,
        fallback=OnlineSPC.build(graph),
    )
    source, target = 0, 1
    expected = index.query(source, target)
    with thread as (host, port):
        # each failing request spends 2 fires (batch + single retry):
        # three requests trip the threshold-3 breaker
        for _ in range(3):
            status, _, _ = _get(
                host, port, f"/query?source={source}&target={target}"
            )
            assert status == 500
        status, _, health = _get(host, port, "/health")
        assert status == 503
        assert health["status"] == "degraded"
        assert health["breaker"]["state"] == "open"
        assert "circuit_open" in health["slo"]["breaches"]
        assert health["fallback"]["active"] is True
        # open breaker + fallback: correct answers via online Dijkstra
        status, _, payload = _post(
            host, port, "/query",
            {"source": source, "target": target, "explain": True},
        )
        assert status == 200
        assert payload["count"] == expected.count
        assert payload["explain"].get("fallback") is True
        # probes burn through the remaining fires; once the plan is
        # exhausted the index heals and a probe closes the breaker
        import time

        deadline = time.perf_counter() + 10.0
        while thread.server.breaker.open:
            assert time.perf_counter() < deadline, (
                "breaker never closed after the index healed"
            )
            _get(host, port, f"/query?source={source}&target={target}")
            time.sleep(0.06)
        status, _, health = _get(host, port, "/health")
        assert status == 200 and health["status"] == "ok"
        counters = thread.server.recorder.metrics_snapshot()["counters"]
        assert counters["serve.fallback.queries"] >= 1
        assert counters["serve.breaker.trips"] == 1


def test_hot_reload_swaps_and_rejects_corrupt(tmp_path, graph, index):
    path_a = tmp_path / "a.bin"
    save_index(index, path_a, format="binary")
    small_graph = road_network(80, seed=3)
    other = TLIndex.build(small_graph)
    path_b = tmp_path / "b.bin"
    save_index(other, path_b, format="binary")
    # a vertex only the big index knows tells us which index answers
    probe = max(graph.vertices())
    thread = ServerThread(
        index, ServeConfig(port=0), index_path=str(path_a)
    )
    with thread as (host, port):
        status, _, _ = _get(host, port, f"/query?source={probe}&target=0")
        assert status == 200
        status, _, _ = _request(
            host, port,
            b"GET /admin/reload HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        assert status == 405  # reload is POST-only
        status, _, payload = _post(
            host, port, "/admin/reload", {"path": str(path_b)}
        )
        assert status == 200 and payload["reloaded"] is True
        # the swap is visible: the probe vertex is gone, and the
        # result cache was dropped with it
        status, _, payload = _get(
            host, port, f"/query?source={probe}&target=0"
        )
        assert status == 400
        # corrupt file: reload refuses, the server keeps serving B
        data = bytearray(path_b.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path_b.write_bytes(bytes(data))
        status, _, payload = _post(host, port, "/admin/reload", {})
        assert status == 409 and payload["reloaded"] is False
        assert "corrupt" in payload["error"]
        status, _, _ = _get(host, port, "/query?source=0&target=1")
        assert status == 200
        counters = thread.server.recorder.metrics_snapshot()["counters"]
        assert counters["serve.reload.count"] == 1
        assert counters["serve.reload.failed"] == 1


def test_drain_completes_fault_slowed_request(tmp_path, index, workload):
    log_path = tmp_path / "serve.log"
    plan = FaultPlan.parse("scan.slow:1.0@80", seed=0)
    thread = ServerThread(
        index,
        ServeConfig(
            port=0, cache_size=0,
            access_log=str(log_path), request_timeout_ms=5000,
        ),
        fault_plan=plan,
    )
    host, port = thread.start()
    source, target = workload[0]

    async def scenario():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"GET /query?source={source}&target={target} "
            "HTTP/1.1\r\nHost: x\r\n\r\n".encode()
        )
        await writer.drain()
        while thread.server.queue_depth == 0:
            await asyncio.sleep(0.001)
        # SIGTERM-equivalent: stop the server while the fault-injected
        # slow scan is sleeping — the drain must deliver this answer
        stopper = asyncio.get_running_loop().run_in_executor(
            None, thread.stop
        )
        status, _, payload = await read_response(reader)
        writer.close()
        await stopper
        return status, payload

    status, payload = asyncio.run(scenario())
    assert status == 200
    assert payload["count"] == index.query(source, target).count
    assert plan.fired("scan.slow") == 1
    # drained: new connections are refused and the lifecycle drain
    # record made it to the log
    with pytest.raises(OSError):
        asyncio.run(asyncio.open_connection(host, port))
    records = [
        json.loads(line)
        for line in log_path.read_text().splitlines()
    ]
    assert any(
        r.get("event") == "server" and r.get("what") == "drain"
        for r in records
    )


def test_robustness_hooks_are_off_path_when_disabled(index, workload):
    # No plan, no fallback: the waiters and batcher carry None hooks
    # and answers match exactly (the fault-free regression guard the
    # serve benchmark quantifies).
    thread = ServerThread(index, ServeConfig(port=0, cache_size=0))
    with thread as (host, port):
        report = replay(
            host, port, workload[:100], concurrency=4,
            collect_results=True,
        )
        stats_status, _, stats = _get(host, port, "/stats")
    assert report.ok == 100
    _assert_no_wrong_answers(report, index)
    assert stats_status == 200
    assert stats["breaker"]["state"] == "closed"
    assert "faults" not in stats

"""Load-generator unit behavior: lane splitting, classification."""

from repro.serve.client import LoadReport, _classify, split_strided


def test_split_strided_deals_round_robin():
    lanes = split_strided(list(range(10)), 3)
    assert lanes == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]
    assert sorted(sum(lanes, [])) == list(range(10))


def test_split_strided_more_ways_than_items():
    lanes = split_strided([1, 2], 4)
    assert lanes == [[1], [2], [], []]


def test_classification_buckets():
    report = LoadReport(num_requests=5, concurrency=1, wall_seconds=1.0)
    for status in (200, 200, 503, 504, 400):
        _classify(report, status)
    assert (report.ok, report.shed, report.timeouts, report.errors) == (
        2, 1, 1, 1,
    )
    assert report.status_counts == {200: 2, 503: 1, 504: 1, 400: 1}
    assert report.qps == 5.0
    assert report.goodput == 2.0


def test_zero_wall_seconds_guard():
    report = LoadReport(num_requests=0, concurrency=1, wall_seconds=0.0)
    assert report.qps == 0.0
    assert report.goodput == 0.0

"""Load-generator unit behavior: lane splitting, classification,
retry policy, and transport-error recovery (against a scripted HTTP
stub, so every failure shape is exact and deterministic)."""

import asyncio
import random

import pytest

from repro.serve.client import (
    LoadReport,
    RetryPolicy,
    _classify,
    run_workload,
    split_strided,
)


def test_split_strided_deals_round_robin():
    lanes = split_strided(list(range(10)), 3)
    assert lanes == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]
    assert sorted(sum(lanes, [])) == list(range(10))


def test_split_strided_more_ways_than_items():
    lanes = split_strided([1, 2], 4)
    assert lanes == [[1], [2], [], []]


def test_classification_buckets():
    report = LoadReport(num_requests=5, concurrency=1, wall_seconds=1.0)
    for status in (200, 200, 503, 504, 400):
        _classify(report, status)
    assert (report.ok, report.shed, report.timeouts, report.errors) == (
        2, 1, 1, 1,
    )
    assert report.status_counts == {200: 2, 503: 1, 504: 1, 400: 1}
    assert report.qps == 5.0
    assert report.goodput == 2.0


def test_zero_wall_seconds_guard():
    report = LoadReport(num_requests=0, concurrency=1, wall_seconds=0.0)
    assert report.qps == 0.0
    assert report.goodput == 0.0
    assert report.availability == 1.0


def test_availability_is_ok_fraction():
    report = LoadReport(
        num_requests=10, concurrency=1, wall_seconds=1.0, ok=9
    )
    assert report.availability == 0.9


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def test_retry_policy_delay_bounds():
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5)
    rng = random.Random(0)
    for attempt in range(1, 8):
        cap = min(0.5, 0.1 * 2 ** (attempt - 1))
        for _ in range(25):
            assert 0.0 <= policy.delay_s(attempt, rng) <= cap


def test_retry_after_floors_the_delay():
    rng = random.Random(0)
    policy = RetryPolicy(base_delay_s=0.0)
    assert policy.delay_s(1, rng, retry_after=2.0) >= 2.0
    ignoring = RetryPolicy(base_delay_s=0.0, honour_retry_after=False)
    assert ignoring.delay_s(1, rng, retry_after=2.0) == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay_s": -1},
        {"budget": -1},
        {"attempt_timeout_s": -1},
    ],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# transport errors and retries against a scripted server
# ----------------------------------------------------------------------
def _replay_scripted(script, pairs=((1, 2),), **kwargs):
    """Run the real client against an HTTP stub whose ``script`` lists
    the action per request, in arrival order: an int (that status) or
    ``"reset"`` (half a response, then a hard connection abort)."""
    state = {"i": 0}

    async def handler(reader, writer):
        try:
            while True:
                head = b""
                while b"\r\n\r\n" not in head:
                    chunk = await reader.read(1024)
                    if not chunk:
                        return
                    head += chunk
                action = script[min(state["i"], len(script) - 1)]
                state["i"] += 1
                if action == "reset":
                    writer.write(b"HTTP/1.1 200 OK\r\nContent-Le")
                    writer.transport.abort()
                    return
                body = (
                    b'{"source":1,"target":2,"distance":3,"count":4}'
                    if action == 200
                    else b'{"error":"scripted"}'
                )
                extra = b"Retry-After: 0\r\n" if action == 503 else b""
                writer.write(
                    b"HTTP/1.1 %d Scripted\r\nX-Request-Id: s\r\n%s"
                    b"Content-Length: %d\r\n\r\n%s"
                    % (action, extra, len(body), body)
                )
                await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def scenario():
        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await run_workload(
                "127.0.0.1", port, list(pairs), concurrency=1, **kwargs
            )
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(scenario())


_FAST = dict(base_delay_s=0.0, max_delay_s=0.0)


def test_retry_turns_a_shed_into_a_success():
    report = _replay_scripted(
        [503, 200], retry=RetryPolicy(**_FAST), collect_results=True
    )
    assert report.ok == 1 and report.retries == 1 and report.giveups == 0
    # only the final outcome is classified
    assert report.status_counts == {200: 1}
    assert report.results[0] == (1, 2, 200, 3, 4)


def test_giveup_after_max_attempts():
    report = _replay_scripted(
        [500, 500, 500, 500],
        retry=RetryPolicy(max_attempts=3, **_FAST),
    )
    assert report.retries == 2  # two extra attempts
    assert report.giveups == 1
    assert report.errors == 1 and report.status_counts == {500: 1}


def test_retry_budget_is_shared_and_capping():
    report = _replay_scripted(
        [500] * 10,
        pairs=((1, 2), (3, 4)),
        retry=RetryPolicy(max_attempts=3, budget=1, **_FAST),
    )
    assert report.retries == 1  # the budget, not 2 slots x 2 retries
    assert report.giveups == 2
    assert report.errors == 2


def test_mid_response_reset_is_survived_without_a_policy():
    report = _replay_scripted(["reset", 200], collect_results=True)
    assert report.transport_errors == 1
    assert report.ok == 1 and report.errors == 0
    assert report.retries == 0  # transport resends are not retries
    assert report.results[0] == (1, 2, 200, 3, 4)


def test_persistent_resets_exhaust_into_status_zero():
    report = _replay_scripted(["reset"] * 20, collect_results=True)
    assert report.ok == 0
    assert report.transport_errors > 1
    assert report.status_counts == {0: 1}
    assert report.errors == 1
    assert report.results[0] == (1, 2, 0, None, None)


def test_resets_count_against_the_retry_policy():
    report = _replay_scripted(
        ["reset", "reset", 200],
        retry=RetryPolicy(max_attempts=3, **_FAST),
        collect_results=True,
    )
    assert report.transport_errors == 2
    assert report.retries == 2
    assert report.ok == 1
    assert report.results[0] == (1, 2, 200, 3, 4)

"""ServeConfig validation."""

import pytest

from repro.exceptions import ReproError
from repro.serve.config import ServeConfig, ServeConfigError


def test_defaults_are_valid():
    config = ServeConfig()
    assert config.coalesce
    assert config.max_batch >= 1
    assert config.cache_size >= 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"max_wait_us": -1},
        {"cache_size": -1},
        {"queue_high_water": 0},
        {"request_timeout_ms": 0},
        {"drain_grace_s": -0.5},
        {"port": -1},
        {"port": 70000},
        {"slow_query_ms": -1.0},
        {"log_sample_every": -1},
        {"slo_window_s": -1},
        {"slo_p99_ms": -0.5},
        {"slo_error_rate": 1.5},
        {"switch_interval_s": -1e-3},
        {"breaker_threshold": -1},
        {"breaker_cooldown_s": -0.1},
        {"trace_buffer": -1},
        {"trace_sample_every": -1},
        {"top_pairs_capacity": -1},
    ],
)
def test_out_of_range_values_raise(kwargs):
    with pytest.raises(ServeConfigError):
        ServeConfig(**kwargs)


def test_config_error_is_repro_error():
    """CLI error handling catches ReproError; config errors must fold in."""
    assert issubclass(ServeConfigError, ReproError)

"""ResultCache: normalization, LRU eviction, counters."""

from repro.obs import Recorder
from repro.serve.cache import ResultCache
from repro.types import QueryResult

R1 = QueryResult(10, 2)
R2 = QueryResult(7, 1)


def test_symmetric_key_normalization():
    cache = ResultCache(8)
    cache.put(3, 5, R1)
    assert cache.get(5, 3) == R1
    assert cache.get(3, 5) == R1
    assert len(cache) == 1


def test_lru_eviction_order():
    cache = ResultCache(2)
    cache.put(0, 1, R1)
    cache.put(2, 3, R2)
    assert cache.get(0, 1) == R1  # refresh (0, 1)
    cache.put(4, 5, R1)  # evicts (2, 3), the least recently used
    assert cache.get(2, 3) is None
    assert cache.get(0, 1) == R1
    assert cache.get(4, 5) == R1


def test_hit_miss_counters_and_recorder():
    recorder = Recorder()
    cache = ResultCache(4, recorder=recorder)
    assert cache.get(1, 2) is None
    cache.put(1, 2, R1)
    assert cache.get(2, 1) == R1
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5
    counters = recorder.metrics_snapshot()["counters"]
    assert counters["serve.cache.hits"] == 1
    assert counters["serve.cache.misses"] == 1


def test_capacity_zero_disables():
    cache = ResultCache(0)
    cache.put(1, 2, R1)
    assert cache.get(1, 2) is None
    assert len(cache) == 0
    # disabled lookups are not counted as misses either
    assert cache.misses == 0


def test_snapshot_shape():
    cache = ResultCache(4)
    cache.put(1, 2, R1)
    cache.get(1, 2)
    snap = cache.snapshot()
    assert snap["capacity"] == 4
    assert snap["size"] == 1
    assert snap["hits"] == 1
    assert 0.0 <= snap["hit_rate"] <= 1.0

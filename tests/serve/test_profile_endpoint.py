"""`/admin/profile` and `/stats` index-provenance over a live server."""

import http.client
import json
import threading

import pytest

from repro.baselines.tl import TLIndex
from repro.core.ctls import CTLSIndex
from repro.core.serialize import load_index, save_index
from repro.graph.generators import grid_graph
from repro.serve import ServeConfig, ServerThread, replay


@pytest.fixture(scope="module")
def index():
    return TLIndex.build(grid_graph(8, 8))


def _http(host, port, method, path, timeout=30.0):
    """One exchange; returns ``(status, content_type, body_bytes)``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            dict(response.headers),
            response.read(),
        )
    finally:
        conn.close()


class TestProfileEndpoint:
    def test_collapsed_capture_under_load(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            results = {}

            def capture():
                results["response"] = _http(
                    host, port,
                    "POST", "/admin/profile?seconds=0.3&interval_ms=2",
                )

            worker = threading.Thread(target=capture)
            worker.start()
            # keep the server busy while the capture runs
            pairs = [(s, t) for s in range(8) for t in range(40, 48)]
            replay(host, port, pairs * 10, concurrency=4, pipeline=4)
            worker.join()
        status, ctype, headers, body = results["response"]
        assert status == 200
        assert ctype.startswith("text/plain")
        # self-accounted cost headers: samples taken, CPU burned
        assert int(headers["X-Profile-Samples"]) > 0
        assert 0.0 < float(headers["X-Profile-Cpu-Seconds"]) < 0.3
        text = body.decode("utf-8")
        assert text.strip(), "capture must not be empty"
        for line in text.strip().splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and frames

    def test_chrome_format_validates(self, index):
        from repro.obs.tracing import validate_chrome_trace

        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, ctype, _, body = _http(
                host, port,
                "POST",
                "/admin/profile?seconds=0.1&interval_ms=2&format=chrome",
            )
        assert status == 200
        payload = json.loads(body)
        assert validate_chrome_trace(payload) == []

    def test_get_rejected_with_405(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, _, headers, _ = _http(host, port, "GET", "/admin/profile")
        assert status == 405
        assert headers.get("Allow") == "POST"

    @pytest.mark.parametrize(
        "query",
        [
            "seconds=abc",
            "seconds=0",
            "seconds=61",
            "interval_ms=0.1",
            "interval_ms=2000",
            "format=svg",
        ],
    )
    def test_bad_parameters_rejected_with_400(self, index, query):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, _, _, body = _http(
                host, port, "POST", f"/admin/profile?{query}"
            )
        assert status == 400, body

    def test_concurrent_capture_rejected_with_409(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            first = {}

            def long_capture():
                first["response"] = _http(
                    host, port, "POST", "/admin/profile?seconds=1.0"
                )

            worker = threading.Thread(target=long_capture)
            worker.start()
            # Wait until the first capture is registered, then collide.
            import time

            status = None
            for _ in range(50):
                time.sleep(0.02)
                status, _, _, _ = _http(
                    host, port, "POST", "/admin/profile?seconds=0.1"
                )
                if status == 409:
                    break
            worker.join()
        assert status == 409
        assert first["response"][0] == 200

    def test_capture_counter_increments(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _http(host, port, "POST", "/admin/profile?seconds=0.05")
            _, _, _, body = _http(host, port, "GET", "/metrics")
        metrics = json.loads(body)
        assert metrics["counters"].get("serve.profile.captures") == 1


class TestStatsProvenance:
    def test_stats_reports_loaded_index_provenance(self, tmp_path):
        built = CTLSIndex.build(grid_graph(6, 6))
        path = tmp_path / "idx.bin"
        save_index(
            built, path, format="binary",
            build_info={"algorithm": "ctls", "git_sha": "abc123",
                        "build_seconds": 1.0},
        )
        loaded = load_index(path)
        with ServerThread(loaded, ServeConfig(port=0)) as (host, port):
            _, _, _, body = _http(host, port, "GET", "/stats")
        stats = json.loads(body)
        prov = stats["index"]["provenance"]
        assert prov["format_version"] == 4
        assert prov["build_info"]["git_sha"] == "abc123"
        assert prov["sections"]

    def test_stats_without_provenance_still_serves(self, index):
        # An index built in-process has no file provenance; /stats
        # must simply omit the key rather than fail.
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, _, _, body = _http(host, port, "GET", "/stats")
        assert status == 200
        assert "provenance" not in json.loads(body)["index"]

"""Live updates over HTTP: single server and the coordinated fleet.

The serving contract under streaming deltas:

* ``POST /admin/update`` applies a batch atomically — a 200 means
  every subsequent query reflects the new weights, bit-identical to
  counting Dijkstra on the updated graph;
* versioning (epoch/seqno) is echoed in update responses, ``/stats``,
  ``/metrics``, and ``--explain`` payloads;
* the result cache is invalidated only for pairs touching patched
  vertices;
* past the overlay threshold a background rebuild swaps in a fresh
  base index without changing any answer;
* a fleet applies batches all-or-nothing across workers and runs one
  coordinated rebuild-and-swap for the whole fleet.
"""

import http.client
import json
import random
import time

import pytest

from repro.core.ctl import CTLIndex
from repro.core.serialize import save_index
from repro.graph.generators import road_network
from repro.graph.io import write_json
from repro.live import UpdateCoordinator, synthesize_deltas
from repro.serve import FleetThread, ServeConfig, ServerThread
from repro.search.pairwise import spc_query
from repro.types import INF


def _http(host, port, method, path, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        try:
            return response.status, json.loads(raw)
        except json.JSONDecodeError:
            return response.status, raw
    finally:
        conn.close()


def _assert_parity(host, port, mirror, *, seed, samples=60):
    rng = random.Random(seed)
    vertices = sorted(mirror.vertices())
    for _ in range(samples):
        s, t = rng.choice(vertices), rng.choice(vertices)
        status, payload = _http(
            host, port, "GET", f"/query?source={s}&target={t}"
        )
        assert status == 200
        expect = spc_query(mirror, s, t)
        distance = None if expect.distance >= INF else expect.distance
        assert payload["count"] == expect.count, (s, t, payload)
        assert payload["distance"] == distance, (s, t, payload)


def _mirror_apply(mirror, updates):
    for a, b, w in updates:
        mirror.add_edge(a, b, w, mirror.count(a, b))


@pytest.fixture(scope="module")
def graph():
    return road_network(120, seed=9)


def _live_server(graph, **config_kwargs):
    index = CTLIndex.build(graph)
    coordinator = UpdateCoordinator(
        graph,
        index,
        overlay_threshold=config_kwargs.get("overlay_threshold", 0),
    )
    config = ServeConfig(port=0, live_updates=True, **config_kwargs)
    return ServerThread(index, config, updates=coordinator), coordinator


class TestSingleServer:
    def test_update_then_query_parity(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            mirror = graph.copy()
            for i, batch in enumerate(
                synthesize_deltas(graph, batches=3, seed=1)
            ):
                status, payload = _http(
                    host, port, "POST", "/admin/update",
                    {"updates": [list(u) for u in batch.updates]},
                )
                assert status == 200, payload
                assert payload["applied"]
                assert payload["seqno"] == i + 1
                _mirror_apply(mirror, batch.updates)
                _assert_parity(host, port, mirror, seed=50 + i)

    def test_stats_metrics_and_explain_versioning(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            batch = synthesize_deltas(graph, batches=1, seed=2)[0]
            _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            _, stats = _http(host, port, "GET", "/stats")
            assert stats["live"]["seqno"] == 1
            assert stats["live"]["epoch"] == 1
            assert stats["live"]["applied_batches"] == 1
            _, metrics = _http(host, port, "GET", "/metrics")
            assert metrics["gauges"]["live.seqno"] == 1
            vertices = sorted(graph.vertices())
            _, q = _http(
                host, port, "GET",
                f"/query?source={vertices[0]}&target={vertices[-1]}"
                "&explain=1",
            )
            counters = q["explain"]
            assert counters["epoch"] == 1
            assert counters["seqno"] == 1
            assert isinstance(counters["poisoned"], bool)

    def test_update_disabled_is_409(self, graph):
        index = CTLIndex.build(graph)
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, payload = _http(
                host, port, "POST", "/admin/update",
                {"updates": [[0, 1, 2]]},
            )
            assert status == 409
            assert "not enabled" in payload["error"]

    def test_update_requires_post(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            status, _ = _http(host, port, "GET", "/admin/update")
            assert status == 405

    def test_malformed_and_unknown_edges_rejected(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            for payload in (
                {"updates": "nope"},
                {"updates": [[1, 2]]},
                {"updates": [[10**9, 0, 5]]},
                {},
            ):
                status, response = _http(
                    host, port, "POST", "/admin/update", payload
                )
                assert status == 400, response
                assert response["applied"] is False
            # The graph is untouched: queries still match the original.
            _assert_parity(host, port, graph, seed=3, samples=20)

    def test_two_phase_prepare_commit(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            batch = synthesize_deltas(graph, batches=1, seed=4)[0]
            body = {"updates": [list(u) for u in batch.updates]}
            status, _ = _http(
                host, port, "POST", "/admin/update/prepare", body
            )
            assert status == 200
            # Staged but not applied: answers still match the original.
            _assert_parity(host, port, graph, seed=5, samples=20)
            status, payload = _http(
                host, port, "POST", "/admin/update/commit", {}
            )
            assert status == 200 and payload["seqno"] == 1
            mirror = graph.copy()
            _mirror_apply(mirror, batch.updates)
            _assert_parity(host, port, mirror, seed=6, samples=20)

    def test_two_phase_abort_and_empty_commit(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            batch = synthesize_deltas(graph, batches=1, seed=7)[0]
            body = {"updates": [list(u) for u in batch.updates]}
            assert _http(
                host, port, "POST", "/admin/update/prepare", body
            )[0] == 200
            assert _http(
                host, port, "POST", "/admin/update/abort", {}
            )[0] == 200
            status, payload = _http(
                host, port, "POST", "/admin/update/commit", {}
            )
            assert status == 409  # nothing staged any more
            _assert_parity(host, port, graph, seed=8, samples=20)

    def test_cache_invalidation_is_targeted(self, graph):
        thread, coordinator = _live_server(graph)
        with thread as (host, port):
            vertices = sorted(graph.vertices())
            rng = random.Random(9)
            pairs = [
                (rng.choice(vertices), rng.choice(vertices))
                for _ in range(50)
            ]
            for s, t in pairs:
                _http(host, port, "GET", f"/query?source={s}&target={t}")
            server = thread.server
            cached_before = len(server.cache)
            assert cached_before > 0
            batch = synthesize_deltas(graph, batches=1, seed=10)[0]
            status, payload = _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            assert status == 200
            # Only pairs touching patched vertices were dropped; the
            # patched-vertex set is usually far smaller than the graph.
            assert payload["cache_dropped"] <= cached_before
            changed = set(coordinator.live_index.state.patches)
            for key in list(server.cache._entries):
                assert key[0] not in changed and key[1] not in changed

    def test_threshold_rebuild_bumps_epoch_keeps_answers(self, graph):
        thread, _ = _live_server(graph, overlay_threshold=40)
        with thread as (host, port):
            mirror = graph.copy()
            batch = synthesize_deltas(
                graph, batches=1, edges_per_batch=6, seed=11
            )[0]
            status, payload = _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            assert status == 200
            _mirror_apply(mirror, batch.updates)
            if payload["rebuild_due"]:
                deadline = time.time() + 60
                while time.time() < deadline:
                    _, stats = _http(host, port, "GET", "/stats")
                    if stats["live"]["rebuilds"] >= 1:
                        break
                    time.sleep(0.1)
                assert stats["live"]["epoch"] == 2
                assert stats["live"]["overlay_entries"] == 0
            _assert_parity(host, port, mirror, seed=12)

    def test_plain_reload_rejected_in_live_mode(self, graph, tmp_path):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            status, payload = _http(
                host, port, "POST", "/admin/reload",
                {"path": str(tmp_path / "other.bin")},
            )
            assert status in (400, 409)
            assert "rebuild" in json.dumps(payload)


class TestFleet:
    @pytest.fixture(scope="class")
    def live_fleet(self, tmp_path_factory):
        graph = road_network(120, seed=9)
        tmp = tmp_path_factory.mktemp("live_fleet")
        index_path = tmp / "index.bin"
        graph_path = tmp / "graph.json"
        save_index(CTLIndex.build(graph), index_path, format="binary")
        write_json(graph, graph_path)
        config = ServeConfig(
            port=0, live_updates=True, overlay_threshold=60
        )
        thread = FleetThread(
            index_path, 2, config, live_graph_path=str(graph_path)
        )
        host, port = thread.start()
        # One shared mirror: the fleet's graph state is cumulative
        # across the tests in this class.
        yield graph, graph.copy(), host, port
        thread.stop()

    def test_fleet_updates_apply_everywhere(self, live_fleet):
        graph, mirror, host, port = live_fleet
        for i, batch in enumerate(
            synthesize_deltas(graph, batches=3, seed=13)
        ):
            status, payload = _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            assert status == 200, payload
            assert payload["applied"] and payload["workers"] == 2
            assert payload["seqno"] == i + 1
            _mirror_apply(mirror, batch.updates)
            # Parity on every worker: the sample spans the hash ring.
            _assert_parity(host, port, mirror, seed=60 + i)

    def test_fleet_rejects_bad_batch_everywhere(self, live_fleet):
        graph, _mirror, host, port = live_fleet
        _, before = _http(host, port, "GET", "/stats")
        status, payload = _http(
            host, port, "POST", "/admin/update",
            {"updates": [[10**9, 0, 5]]},
        )
        assert status == 409
        assert payload["applied"] is False and payload["errors"]
        _, after = _http(host, port, "GET", "/stats")
        assert after["live"]["applied_batches"] == (
            before["live"]["applied_batches"]
        )

    def test_fleet_coordinated_rebuild(self, live_fleet):
        graph, mirror, host, port = live_fleet
        # Drive the overlay past the threshold, then wait for the
        # router's single-flight rebuild to swap every worker.
        for batch in synthesize_deltas(
            graph, batches=2, edges_per_batch=6, seed=14
        ):
            status, _ = _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            assert status == 200
            _mirror_apply(mirror, batch.updates)
        deadline = time.time() + 90
        rebuilt = False
        while time.time() < deadline:
            _, stats = _http(host, port, "GET", "/stats")
            if stats["live"]["rebuilds"] >= 1:
                rebuilt = True
                break
            time.sleep(0.3)
        assert rebuilt, stats["live"]
        assert stats["live"]["epoch"] >= 2
        _assert_parity(host, port, mirror, seed=70)


class TestFreshnessTelemetry:
    """The ingest → validate → apply → visible pipeline is observable."""

    def test_update_populates_freshness_histogram(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            batch = synthesize_deltas(graph, batches=1, seed=21)[0]
            _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            _, metrics = _http(host, port, "GET", "/metrics")
            _, stats = _http(host, port, "GET", "/stats")
        freshness = metrics["histograms"]["live.freshness_ms"]
        assert freshness["count"] >= 1
        assert freshness["max"] >= 0.0
        live = stats["live"]
        assert live["staleness_s"] >= 0.0
        assert live["freshness_ms"]["count"] >= 1

    def test_update_pipeline_is_traced(self, graph):
        thread, _ = _live_server(graph)
        with thread as (host, port):
            batch = synthesize_deltas(graph, batches=1, seed=22)[0]
            _http(
                host, port, "POST", "/admin/update",
                {"updates": [list(u) for u in batch.updates]},
            )
            status, fragment = _http(
                host, port, "POST", "/admin/trace?format=fragment"
            )
        assert status == 200
        spans = {s["name"]: s for s in fragment["spans"]}
        for stage in ("live.ingest", "live.validate",
                      "live.overlay_apply"):
            assert stage in spans, sorted(spans)
            assert spans[stage]["parent_id"] == (
                spans["live.update"]["span_id"]
            )
            assert spans[stage]["trace_id"] == (
                spans["live.update"]["trace_id"]
            )

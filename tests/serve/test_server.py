"""End-to-end server tests: a live SPCServer behind ServerThread.

Every test starts a real server on an ephemeral port and talks real
HTTP to it — through the load-generator client for bulk correctness,
and through raw asyncio connections for the protocol corners (POST
bodies, error statuses, shedding, deadlines, metrics).
"""

import asyncio
import json
import random
import time

import pytest

from repro.baselines.tl import TLIndex
from repro.graph.generators import road_network
from repro.serve import ServeConfig, ServerThread, replay
from repro.serve.http import read_response
from repro.serve.server import encode_result, encode_result_bytes
from repro.types import INF, QueryResult


@pytest.fixture(scope="module")
def graph():
    return road_network(220, seed=11)


@pytest.fixture(scope="module")
def index(graph):
    return TLIndex.build(graph)


@pytest.fixture(scope="module")
def workload(graph):
    vertices = list(graph.vertices())
    rng = random.Random(23)
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(300)
    ]


class SlowIndex:
    """Delays every scan; for shedding and deadline tests."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def query(self, source, target):
        time.sleep(self._delay_s)
        return self._inner.query(source, target)

    def query_batch(self, pairs):
        time.sleep(self._delay_s)
        return self._inner.query_batch(pairs)


def _request(host, port, raw: bytes):
    """One raw HTTP exchange; returns ``(status, headers, payload)``."""

    async def scenario():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        response = await read_response(reader)
        writer.close()
        return response

    return asyncio.run(scenario())


def _get(host, port, path):
    return _request(
        host, port, f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
    )


def _post(host, port, path, payload):
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    return _request(host, port, head + body)


@pytest.mark.parametrize("coalesce", [True, False], ids=["on", "off"])
def test_served_answers_match_index(index, workload, coalesce):
    config = ServeConfig(port=0, coalesce=coalesce)
    with ServerThread(index, config) as (host, port):
        report = replay(
            host, port, workload, concurrency=6, pipeline=3,
            collect_results=True,
        )
    assert report.ok == len(workload)
    for source, target, status, distance, count in report.results:
        assert status == 200
        expected = index.query(source, target)
        wire = None if expected.distance == INF else expected.distance
        assert (distance, count) == (wire, expected.count)


def test_fast_and_slow_parse_paths_agree(index, workload):
    source, target = workload[0]
    with ServerThread(index, ServeConfig(port=0)) as (host, port):
        # param order 'source=..&target=..' takes the byte-level fast
        # path; the reversed order falls back to the full parser.
        _, _, fast = _get(
            host, port, f"/query?source={source}&target={target}"
        )
        _, _, slow = _get(
            host, port, f"/query?target={target}&source={source}"
        )
    assert fast == slow


def test_post_single_and_batch(index, workload):
    (s1, t1), (s2, t2) = workload[0], workload[1]
    with ServerThread(index, ServeConfig(port=0)) as (host, port):
        status, _, single = _post(
            host, port, "/query", {"source": s1, "target": t1}
        )
        assert status == 200
        batch_status, _, batch = _post(
            host, port, "/query", {"pairs": [[s1, t1], [s2, t2]]}
        )
        assert batch_status == 200
    expected = index.query(s1, t1)
    assert single["distance"] == expected.distance
    assert single["count"] == expected.count
    assert [r["source"] for r in batch["results"]] == [s1, s2]
    assert batch["results"][0] == single


def test_error_statuses(index):
    with ServerThread(index, ServeConfig(port=0)) as (host, port):
        status, _, _ = _get(host, port, "/nope")
        assert status == 404
        status, _, payload = _get(host, port, "/query?source=1")
        assert status == 400 and "error" in payload
        status, _, payload = _get(
            host, port, "/query?source=999999&target=1"
        )
        assert status == 400 and "not indexed" in payload["error"]


def test_health_and_metrics(index, workload):
    with ServerThread(index, ServeConfig(port=0)) as (host, port):
        replay(host, port, workload, concurrency=4, repeats=2)
        status, _, health = _get(host, port, "/health")
        assert status == 200 and health["status"] == "ok"
        status, _, metrics = _get(host, port, "/metrics")
        assert status == 200
    counters = metrics["counters"]
    gauges = metrics["gauges"]
    # the second repeat of the workload is (almost entirely) absorbed
    # by the cache; "almost" because two requests for one pair can
    # overlap in flight and both miss.
    assert counters["serve.cache.hits"] >= 0.8 * len(workload)
    # every request was answered either by a scan (responses.ok) or by
    # the cache (cache.hits)
    assert (
        counters["serve.responses.ok"] + counters["serve.cache.hits"]
        == 2 * len(workload)
    )
    assert "serve.cache.hit_rate" in gauges
    assert "serve.queue.depth" in gauges
    assert "serve.batch.size" in metrics["histograms"]


def test_cache_hit_short_circuits_scan(index, workload):
    recorder_pairs = workload[:20]
    with ServerThread(index, ServeConfig(port=0)) as thread_addr:
        host, port = thread_addr
        first = replay(host, port, recorder_pairs, concurrency=2)
        second = replay(host, port, recorder_pairs, concurrency=2)
    assert first.ok == second.ok == len(recorder_pairs)


def test_overload_sheds_with_503(index, workload):
    slow = SlowIndex(index, delay_s=0.02)
    config = ServeConfig(
        port=0, coalesce=False, queue_high_water=2, cache_size=0
    )
    thread = ServerThread(slow, config)
    with thread as (host, port):
        report = replay(host, port, workload[:64], concurrency=8)
        counters = thread.server.recorder.metrics_snapshot()["counters"]
    assert report.shed > 0, "expected some 503s past the high-water mark"
    assert report.ok > 0, "admitted requests must still be answered"
    assert report.status_counts.get(503, 0) == report.shed
    assert counters["serve.shed"] == report.shed


def test_deadline_returns_504(index, workload):
    slow = SlowIndex(index, delay_s=0.25)
    config = ServeConfig(
        port=0, coalesce=True, request_timeout_ms=50, cache_size=0
    )
    thread = ServerThread(slow, config)
    with thread as (host, port):
        status, _, payload = _get(
            host, port,
            f"/query?source={workload[0][0]}&target={workload[0][1]}",
        )
        counters = thread.server.recorder.metrics_snapshot()["counters"]
    assert status == 504
    assert payload["error"] == "deadline exceeded"
    assert counters["serve.timeouts"] == 1


def test_graceful_drain_finishes_inflight(index, workload):
    slow = SlowIndex(index, delay_s=0.05)
    thread = ServerThread(slow, ServeConfig(port=0, cache_size=0))
    host, port = thread.start()

    async def one_query():
        reader, writer = await asyncio.open_connection(host, port)
        source, target = workload[0]
        writer.write(
            f"GET /query?source={source}&target={target} "
            "HTTP/1.1\r\nHost: x\r\n\r\n".encode()
        )
        await writer.drain()
        # wait until the server has admitted the request — stopping
        # earlier would legitimately shed it with a 503 "draining"
        while thread.server.queue_depth == 0:
            await asyncio.sleep(0.001)
        # stop the server while the scan is sleeping; the drain must
        # still deliver this answer before the loop shuts down
        stopper = asyncio.get_running_loop().run_in_executor(
            None, thread.stop
        )
        status, _, payload = await read_response(reader)
        writer.close()
        await stopper
        return status, payload

    status, payload = asyncio.run(one_query())
    assert status == 200
    expected = index.query(*workload[0])
    assert payload["count"] == expected.count


@pytest.mark.parametrize(
    "result",
    [QueryResult(5, 2), QueryResult(2.5, 7), QueryResult(INF, 0)],
    ids=["int", "float", "disconnected"],
)
def test_encode_result_bytes_matches_json(result):
    fast = encode_result_bytes(4, 9, result)
    slow = json.dumps(
        encode_result(4, 9, result), separators=(",", ":")
    ).encode()
    assert fast == slow

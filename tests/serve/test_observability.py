"""End-to-end request-observability tests against a live server.

The correlation contract under test: a client-sent ``X-Request-Id``
comes back in the response header on *every* path (fast GET, full
parser, cache hit, POST batch) and stamps the matching access and
slow-query log records; explain counters agree exactly with the
offline :meth:`SPCIndex.query_with_stats`; ``/metrics`` speaks both
JSON and validator-clean Prometheus text; ``/stats`` serves the
rolling window with ``null`` (never a made-up number) for empty
statistics; and ``/health`` flips to 503 when the SLO window is
breached.
"""

import asyncio
import io
import json
import random
import time

import pytest

from repro.core.ctls import CTLSIndex
from repro.graph.generators import road_network
from repro.obs import RequestLog, validate_prometheus_text
from repro.serve import ServeConfig, ServerThread, replay
from repro.serve.http import read_response
from repro.serve.top import render_dashboard


@pytest.fixture(scope="module")
def graph():
    return road_network(220, seed=11)


@pytest.fixture(scope="module")
def index(graph):
    return CTLSIndex.build(graph)


@pytest.fixture(scope="module")
def workload(graph):
    vertices = list(graph.vertices())
    rng = random.Random(23)
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(200)
    ]


class SlowIndex:
    """Delays every scan; for SLO-degradation tests."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def query(self, source, target):
        time.sleep(self._delay_s)
        return self._inner.query(source, target)

    def query_batch(self, pairs):
        time.sleep(self._delay_s)
        return self._inner.query_batch(pairs)

    def query_with_stats(self, source, target):
        return self._inner.query_with_stats(source, target)


def _request(host, port, raw: bytes):
    """One raw HTTP exchange; returns ``(status, headers, payload)``."""

    async def scenario():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        response = await read_response(reader)
        writer.close()
        return response

    return asyncio.run(scenario())


def _get(host, port, path, headers=()):
    extra = "".join(f"{k}: {v}\r\n" for k, v in headers)
    return _request(
        host,
        port,
        f"GET {path} HTTP/1.1\r\nHost: x\r\n{extra}\r\n".encode(),
    )


def _post(host, port, path, payload, headers=()):
    body = json.dumps(payload).encode()
    extra = "".join(f"{k}: {v}\r\n" for k, v in headers)
    head = (
        f"POST {path} HTTP/1.1\r\nHost: x\r\n{extra}"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    return _request(host, port, head.encode() + body)


def _server(index, log_stream=None, **overrides):
    """A ServerThread whose server logs into ``log_stream``."""
    overrides.setdefault("port", 0)
    config = ServeConfig(**overrides)
    thread = ServerThread(index, config)
    if log_stream is not None:
        # Replace the thread's main coroutine so the server is built
        # with an injected RequestLog writing into our StringIO.
        async def _main():
            from repro.serve.server import SPCServer

            thread.server = SPCServer(
                index,
                config,
                request_log=RequestLog(
                    log_stream,
                    slow_ms=config.slow_query_ms,
                    sample_every=config.log_sample_every,
                    seed=config.log_seed,
                ),
            )
            await thread.server.start()
            thread._loop = asyncio.get_running_loop()
            thread._ready.set()
            await thread.server.wait_stopped()

        thread._main = _main
    return thread


def _log_records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRequestIds:
    def test_client_id_echoed_on_fast_path(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _, headers, _ = _get(
                host, port, "/query?source=1&target=2",
                headers=[("X-Request-Id", "my-id-123")],
            )
            assert headers["x-request-id"] == "my-id-123"

    def test_client_id_echoed_case_insensitively(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _, headers, _ = _get(
                host, port, "/query?source=1&target=2",
                headers=[("x-request-id", "lower-case-id")],
            )
            assert headers["x-request-id"] == "lower-case-id"

    def test_server_generates_id_when_absent(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _, h1, _ = _get(host, port, "/query?source=1&target=2")
            _, h2, _ = _get(host, port, "/query?source=1&target=3")
            assert h1["x-request-id"] != h2["x-request-id"]
            prefix = h1["x-request-id"].rsplit("-", 1)[0]
            assert h2["x-request-id"].startswith(prefix)

    def test_every_endpoint_carries_an_id(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            for path in ("/health", "/metrics", "/stats", "/nope"):
                _, headers, _ = _get(host, port, path)
                assert "x-request-id" in headers, path

    def test_cache_hit_echoes_id(self, index):
        config = ServeConfig(port=0, cache_size=64)
        with ServerThread(index, config) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _, headers, _ = _get(
                host, port, "/query?source=1&target=2",
                headers=[("X-Request-Id", "cached-req")],
            )
            assert headers["x-request-id"] == "cached-req"

    def test_replay_reports_no_id_errors(self, index, workload):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            report = replay(
                host, port, workload[:100],
                concurrency=4, pipeline=4,
                collect_results=True, send_request_ids=True,
            )
            assert report.ok == 100
            assert report.id_errors == 0
            assert all(
                rid == f"load-{slot:06x}"
                for slot, rid in enumerate(report.request_ids)
            )


class TestRequestLogging:
    def test_client_id_lands_in_access_and_slow_logs(self, index):
        stream = io.StringIO()
        # slow_ms tiny but positive: everything is a slow query.
        thread = _server(index, stream, slow_query_ms=1e-6)
        with thread as (host, port):
            _get(
                host, port, "/query?source=1&target=2",
                headers=[("X-Request-Id", "corr-42")],
            )
        records = _log_records(stream)
        access = [r for r in records if r["event"] == "access"]
        slow = [r for r in records if r["event"] == "slow_query"]
        assert any(r["request_id"] == "corr-42" for r in access)
        assert any(r["request_id"] == "corr-42" for r in slow)
        mine = next(r for r in access if r["request_id"] == "corr-42")
        assert mine["source"] == 1 and mine["target"] == 2
        assert mine["status"] == 200
        assert mine["path"] == "/query"

    def test_batch_metadata_reaches_the_log(self, index, workload):
        stream = io.StringIO()
        thread = _server(index, stream, cache_size=0)
        with thread as (host, port):
            replay(host, port, workload[:50], concurrency=4, pipeline=4)
        access = [
            r for r in _log_records(stream) if r["event"] == "access"
        ]
        assert access, "no access records written"
        batched = [r for r in access if r.get("batch_size", 0) > 1]
        assert batched, "no batched request was logged"
        assert all("queue_wait_ms" in r for r in batched)
        assert all("scan_ms" in r for r in batched)

    def test_sampling_applies_to_server_log(self, index, workload):
        def run(seed):
            stream = io.StringIO()
            thread = _server(
                index, stream,
                log_sample_every=4, log_seed=seed, cache_size=0,
            )
            with thread as (host, port):
                # Single connection, strict request/response: the
                # server sees requests in a deterministic order.
                for source, target in workload[:40]:
                    _get(
                        host, port,
                        f"/query?source={source}&target={target}",
                    )
            return [
                r["request_id"]
                for r in _log_records(stream)
                if r["event"] == "access"
            ]

        kept = run(5)
        assert 0 < len(kept) < 40  # sampled, not everything/nothing

    def test_errors_are_always_logged(self, index):
        stream = io.StringIO()
        thread = _server(index, stream, log_sample_every=10**9)
        with thread as (host, port):
            _get(host, port, "/query?source=abc&target=2")
        records = _log_records(stream)
        assert any(
            r["event"] == "access" and r["status"] == 400
            for r in records
        )


class TestExplain:
    def test_explain_counters_match_query_with_stats(self, index, workload):
        config = ServeConfig(port=0, cache_size=0)
        with ServerThread(index, config) as (host, port):
            for source, target in workload[:20]:
                _, _, payload = _post(
                    host, port, "/query",
                    {"source": source, "target": target, "explain": True},
                )
                expected = index.query_with_stats(source, target)
                explain = payload["explain"]
                assert (
                    explain["labels_scanned"]
                    == expected.visited_labels
                ), (source, target)
                node = index.tree.lca_node(source, target)
                assert explain["lca_depth"] == node.depth
                assert explain["lca_width"] == node.size

    def test_explain_includes_batch_and_timing_fields(self, index):
        config = ServeConfig(port=0, cache_size=0)
        with ServerThread(index, config) as (host, port):
            _, _, payload = _post(
                host, port, "/query",
                {"source": 1, "target": 2, "explain": True},
            )
        explain = payload["explain"]
        assert explain["cache_hit"] is False
        assert explain["batch_size"] >= 1
        assert "queue_wait_us" in explain
        assert "scan_us" in explain
        assert "request_id" in explain

    def test_explain_on_cache_hit(self, index):
        config = ServeConfig(port=0, cache_size=64)
        with ServerThread(index, config) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _, _, payload = _post(
                host, port, "/query",
                {"source": 1, "target": 2, "explain": True},
            )
        assert payload["explain"]["cache_hit"] is True
        assert payload["explain"]["labels_scanned"] >= 0

    def test_get_explain_param(self, index):
        config = ServeConfig(port=0)
        with ServerThread(index, config) as (host, port):
            _, _, payload = _get(
                host, port, "/query?source=1&target=2&explain=true"
            )
        assert "explain" in payload

    def test_plain_answers_carry_no_explain(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _, _, payload = _get(host, port, "/query?source=1&target=2")
        assert "explain" not in payload


class TestMetricsNegotiation:
    def test_default_is_json(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _, headers, payload = _get(host, port, "/metrics")
            assert headers["content-type"] == "application/json"
            assert "counters" in payload

    def test_prometheus_via_accept_header(self, index, workload):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            replay(host, port, workload[:50], concurrency=4)

            async def scrape():
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                    b"Accept: text/plain\r\n\r\n"
                )
                await writer.drain()
                from repro.serve.http import read_raw_response

                status, headers, body = await read_raw_response(reader)
                writer.close()
                return status, headers, body

            status, headers, body = asyncio.run(scrape())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode()
        assert validate_prometheus_text(text) == []
        assert "repro_serve_requests_total" in text

    def test_prometheus_matches_json_snapshot(self, index, workload):
        from repro.serve.http import read_raw_response

        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            replay(host, port, workload[:50], concurrency=4)

            async def both():
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                await writer.drain()
                _, _, json_body = await read_raw_response(reader)
                writer.write(
                    b"GET /metrics?format=prometheus HTTP/1.1\r\n"
                    b"Host: x\r\n\r\n"
                )
                await writer.drain()
                _, _, text_body = await read_raw_response(reader)
                writer.close()
                return json.loads(json_body), text_body.decode()

            snapshot, text = asyncio.run(both())
        # The text form is rendered from the same snapshot family, so
        # stable counters must agree.  serve.requests itself moves
        # between the two scrapes (each scrape is a request), so
        # compare a counter the scrapes don't touch.
        ok = snapshot["counters"]["serve.responses.ok"]
        assert f"repro_serve_responses_ok_total {ok}" in text
        hist = snapshot["histograms"]["serve.batch.size"]
        assert f"repro_serve_batch_size_count {hist['count']}" in text

    def test_format_param_forces_prometheus(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            async def scrape():
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"GET /metrics?format=prometheus HTTP/1.1\r\n"
                    b"Host: x\r\n\r\n"
                )
                await writer.drain()
                from repro.serve.http import read_raw_response

                response = await read_raw_response(reader)
                writer.close()
                return response

            status, headers, body = asyncio.run(scrape())
        assert status == 200
        assert validate_prometheus_text(body.decode()) == []


class TestStatsEndpoint:
    def test_idle_window_serves_nulls(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _, _, payload = _get(host, port, "/stats")
        window = payload["window"]
        assert window["requests"] == 0
        assert window["error_rate"] is None
        assert window["latency_ms"]["p99"] is None
        assert payload["slo"]["status"] == "ok"

    def test_window_tracks_traffic(self, index, workload):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            replay(host, port, workload[:80], concurrency=4)
            _, _, payload = _get(host, port, "/stats")
        window = payload["window"]
        assert window["requests"] == 80
        assert window["latency_ms"]["p50"] is not None
        assert window["qps"] > 0
        assert payload["cache"]["capacity"] > 0
        assert payload["batcher"]["queries_batched"] >= 1

    def test_disabled_window(self, index):
        config = ServeConfig(port=0, slo_window_s=0)
        with ServerThread(index, config) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _, _, payload = _get(host, port, "/stats")
        assert payload["window"] is None
        assert payload["slo"]["status"] == "ok"

    def test_dashboard_renders_live_payloads(self, index, workload):
        # The repro-spc top renderer must handle real server payloads.
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            replay(host, port, workload[:50], concurrency=4)
            _, _, stats = _get(host, port, "/stats")
            _, _, metrics = _get(host, port, "/metrics")
        text = render_dashboard(
            stats, metrics, target="x:1", health_status="ok"
        )
        assert "qps" in text
        assert "p99" in text
        assert "lifetime:" in text


class TestHealthReadiness:
    def test_health_payload_shape(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, _, payload = _get(host, port, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["index"]["type"] == "CTLSIndex"
        assert payload["index"]["vertices"] > 0
        assert payload["index"]["label_entries"] > 0
        assert payload["uptime_seconds"] >= 0
        assert payload["slo"]["status"] == "ok"

    def test_slo_breach_degrades_health(self, index, workload):
        slow = SlowIndex(index, delay_s=0.02)
        config = ServeConfig(
            port=0,
            cache_size=0,
            coalesce=False,
            slo_p99_ms=1.0,  # 20 ms scans cannot meet a 1 ms p99
        )
        with ServerThread(slow, config) as (host, port):
            for source, target in workload[:12]:
                _get(
                    host, port,
                    f"/query?source={source}&target={target}",
                )
            status, _, payload = _get(host, port, "/health")
            assert status == 503
            assert payload["status"] == "degraded"
            assert payload["slo"]["breaches"]
            # /stats reports the same verdict.
            _, _, stats = _get(host, port, "/stats")
            assert stats["slo"]["status"] == "degraded"

    def test_healthy_server_meets_generous_slo(self, index, workload):
        config = ServeConfig(port=0, slo_p99_ms=60_000.0)
        with ServerThread(index, config) as (host, port):
            replay(host, port, workload[:40], concurrency=4)
            status, _, payload = _get(host, port, "/health")
        assert status == 200
        assert payload["status"] == "ok"


class TestDistributedTracing:
    def test_capture_validates_and_links_scan_spans(self, index, workload):
        from repro.obs import validate_chrome_trace

        config = dict(trace_sample_every=1)  # trace every request
        with ServerThread(
            index, ServeConfig(port=0, **config)
        ) as (host, port):
            replay(host, port, workload[:30], concurrency=4)
            status, _, payload = _post(host, port, "/admin/trace", {})
        assert status == 200
        assert validate_chrome_trace(payload) == []
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        requests = [s for s in spans if s["name"] == "serve.request"]
        scans = [s for s in spans if s["name"] == "serve.scan_batch"]
        assert len(requests) == 30
        assert scans, "coalesced scans must be traced"
        # Every scan span is parented to a traced request span of the
        # same trace (explicit ids, not just time containment).
        by_id = {
            (s["args"]["trace_id"], s["args"]["span_id"]): s
            for s in requests
        }
        for scan in scans:
            parent = by_id.get(
                (scan["args"]["trace_id"], scan["args"]["parent_id"])
            )
            assert parent is not None
            assert scan["args"]["batch_size"] >= 1
            assert scan["args"]["flush_reason"]

    def test_inbound_sampled_traceparent_is_honoured(self, index):
        from repro.obs import TraceContext

        ctx = TraceContext.generate()
        # Local sampling off: only propagated contexts are traced.
        with ServerThread(
            index, ServeConfig(port=0, trace_sample_every=0)
        ) as (host, port):
            _get(host, port, "/query?source=1&target=2",
                 headers=[("traceparent", ctx.to_header())])
            _get(host, port, "/query?source=3&target=4")  # untraced
            status, _, fragment = _post(
                host, port, "/admin/trace?format=fragment", {}
            )
        assert status == 200
        assert fragment["pid"] > 0
        spans = [
            s for s in fragment["spans"]
            if s["name"] == "serve.request"
        ]
        assert len(spans) == 1
        (span,) = spans
        assert span["trace_id"] == ctx.trace_id
        assert span["parent_id"] == ctx.span_id  # child of the client
        assert span["span_id"] != ctx.span_id

    def test_unsampled_traceparent_suppresses_tracing(self, index):
        from repro.obs import TraceContext

        ctx = TraceContext.generate(sampled=False)
        with ServerThread(
            index, ServeConfig(port=0, trace_sample_every=1)
        ) as (host, port):
            _get(host, port, "/query?source=1&target=2",
                 headers=[("traceparent", ctx.to_header())])
            _, _, fragment = _post(
                host, port, "/admin/trace?format=fragment", {}
            )
        assert all(
            s["trace_id"] != ctx.trace_id for s in fragment["spans"]
        )

    def test_disabled_tracing_rejects_capture(self, index):
        with ServerThread(
            index, ServeConfig(port=0, trace_buffer=0)
        ) as (host, port):
            status, _, payload = _post(host, port, "/admin/trace", {})
        assert status == 409
        assert "disabled" in payload["error"]

    def test_capture_requires_post_and_known_format(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            status, headers, _ = _get(host, port, "/admin/trace")
            assert status == 405
            assert headers.get("allow") == "POST"
            status, _, payload = _post(
                host, port, "/admin/trace?format=nonsense", {}
            )
            assert status == 400

    def test_trace_id_stamps_access_log_records(self, index):
        from repro.obs import TraceContext

        ctx = TraceContext.generate()
        stream = io.StringIO()
        thread = _server(index, stream, trace_sample_every=0)
        with thread as (host, port):
            _get(host, port, "/query?source=1&target=2",
                 headers=[("traceparent", ctx.to_header())])
            _get(host, port, "/query?source=3&target=4")
        records = [
            r for r in _log_records(stream) if r["event"] == "access"
        ]
        assert len(records) == 2
        traced = [r for r in records if r.get("trace_id")]
        assert len(traced) == 1
        assert traced[0]["trace_id"] == ctx.trace_id

    def test_stats_reports_ring_occupancy(self, index):
        with ServerThread(
            index, ServeConfig(port=0, trace_sample_every=1)
        ) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _, _, stats = _get(host, port, "/stats")
        trace = stats["trace"]
        assert trace["capacity"] == 4096
        assert trace["recorded"] >= 1
        assert trace["buffered"] >= 1

    def test_clear_drains_the_ring(self, index):
        with ServerThread(
            index, ServeConfig(port=0, trace_sample_every=1)
        ) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _post(host, port, "/admin/trace?clear=1", {})
            _, _, fragment = _post(
                host, port, "/admin/trace?format=fragment", {}
            )
        assert fragment["spans"] == []


class TestTopPairs:
    def test_heavy_pair_surfaces_with_cache_attribution(self, index):
        hot = (1, 2)
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            for _ in range(40):
                _get(
                    host, port,
                    f"/query?source={hot[0]}&target={hot[1]}",
                )
            for s in range(3, 23):
                _get(host, port, f"/query?source={s}&target={s + 1}")
            _, _, stats = _get(host, port, "/stats")
        block = stats["top_pairs"]
        assert block["sketch"]["total"] == 60
        top_pairs = [tuple(entry["pair"]) for entry in block["top"]]
        assert top_pairs[0] == hot
        attribution = block["cache_attribution"]
        # The hot pair was cached after its first miss: heavy hitters
        # must show near-perfect cache efficiency, the tail none.
        assert attribution["hot"]["hits"] >= 38
        assert attribution["hot"]["hit_rate"] > 0.9
        assert attribution["tail"]["hits"] == 0

    def test_symmetric_pairs_share_one_slot(self, index):
        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            _get(host, port, "/query?source=5&target=9")
            _get(host, port, "/query?source=9&target=5")
            _, _, stats = _get(host, port, "/stats")
        (entry,) = stats["top_pairs"]["top"]
        assert entry["pair"] == [5, 9]
        assert entry["count"] == 2

    def test_disabled_sketch_omits_the_block(self, index):
        with ServerThread(
            index, ServeConfig(port=0, top_pairs_capacity=0)
        ) as (host, port):
            _get(host, port, "/query?source=1&target=2")
            _, _, stats = _get(host, port, "/stats")
        assert "top_pairs" not in stats

    def test_analyze_renders_live_payload(self, index):
        from repro.serve.analyze import render_analysis

        with ServerThread(index, ServeConfig(port=0)) as (host, port):
            for _ in range(5):
                _get(host, port, "/query?source=1&target=2")
            _, _, stats = _get(host, port, "/stats")
        text = render_analysis(stats)
        assert "top" in text
        assert "(1, 2)" in text
        assert "cache efficiency" in text

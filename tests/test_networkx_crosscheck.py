"""Cross-checks against networkx reference implementations.

networkx is a dev-environment dependency only (the library itself does
not import it); these tests exist because independent implementations
are the strongest oracle available for flow and centrality code.
"""

import random

import networkx as nx
import pytest

from repro.apps.betweenness import betweenness_exact
from repro.flow.dinitz import max_flow
from repro.flow.network import FlowNetwork
from repro.graph.generators import grid_graph, road_network
from repro.graph.graph import Graph
from repro.search.dijkstra import ssspc


def random_digraph_flow_case(seed):
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    net = FlowNetwork()
    nxg = nx.DiGraph()
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.35:
                capacity = rng.randint(1, 9)
                net.add_edge(u, v, capacity)
                nxg.add_edge(u, v, capacity=capacity)
    nxg.add_node(0)
    nxg.add_node(n - 1)
    net.node_id(0)
    net.node_id(n - 1)
    return net, nxg, 0, n - 1


class TestDinitzAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    def test_max_flow_values_agree(self, seed):
        net, nxg, s, t = random_digraph_flow_case(seed)
        expected = nx.maximum_flow_value(nxg, s, t) if nxg.has_node(s) else 0
        assert max_flow(net, s, t) == expected


def to_networkx(graph: Graph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    for u, v, w, _c in graph.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestBetweennessAgainstNetworkx:
    @pytest.mark.parametrize(
        "graph_factory",
        [lambda: grid_graph(4, 4), lambda: road_network(150, seed=3)],
        ids=["grid", "road"],
    )
    def test_exact_brandes_agrees(self, graph_factory):
        graph = graph_factory()
        ours = betweenness_exact(graph)
        theirs = nx.betweenness_centrality(
            to_networkx(graph), weight="weight", normalized=False
        )
        for v in graph.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)


class TestCountsAgainstNetworkx:
    def test_ssspc_counts_match_all_shortest_paths(self):
        graph = road_network(120, seed=9)
        nxg = to_networkx(graph)
        source = sorted(graph.vertices())[0]
        dist, count = ssspc(graph, source)
        rng = random.Random(1)
        targets = rng.sample(sorted(graph.vertices()), 15)
        for t in targets:
            if t == source:
                continue
            paths = list(
                nx.all_shortest_paths(nxg, source, t, weight="weight")
            )
            assert count[t] == len(paths)
            assert dist[t] == nx.shortest_path_length(
                nxg, source, t, weight="weight"
            )

"""Tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    DATASET_SPECS,
    FULL_DATASETS,
    QUICK_DATASETS,
    dataset_names,
    load_dataset,
)
from repro.graph.components import is_connected
from repro.graph.validation import check_graph


class TestRegistry:
    def test_twelve_datasets(self):
        assert len(FULL_DATASETS) == 12
        assert FULL_DATASETS[0] == "PWR"
        assert FULL_DATASETS[-1] == "USA"

    def test_quick_subset(self):
        assert set(QUICK_DATASETS) <= set(FULL_DATASETS)

    def test_tier_selection(self):
        assert dataset_names("quick") == list(QUICK_DATASETS)
        assert dataset_names("full") == list(FULL_DATASETS)
        assert len(dataset_names("medium")) == 8

    def test_tier_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATASETS", raising=False)
        assert dataset_names() == list(QUICK_DATASETS)
        monkeypatch.setenv("REPRO_DATASETS", "medium")
        assert dataset_names() == dataset_names("medium")

    def test_unknown_tier(self):
        with pytest.raises(ValueError):
            dataset_names("gigantic")

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("MARS")

    def test_paper_size_ordering_preserved(self):
        paper = [DATASET_SPECS[n].paper_vertices for n in FULL_DATASETS]
        ours = [DATASET_SPECS[n].target_vertices for n in FULL_DATASETS]
        assert paper == sorted(paper)
        assert ours == sorted(ours)

    @pytest.mark.parametrize("name", QUICK_DATASETS)
    def test_quick_datasets_are_sound(self, name):
        g = load_dataset(name)
        assert is_connected(g)
        assert check_graph(g) == []
        spec = DATASET_SPECS[name]
        assert 0.5 * spec.target_vertices <= g.num_vertices <= 1.5 * spec.target_vertices

    def test_cached_instance(self):
        assert load_dataset("PWR") is load_dataset("PWR")

"""Tests for Table I statistics."""

from repro.datasets.stats import dataset_statistics


class TestDatasetStatistics:
    def test_quick_rows(self):
        rows = dataset_statistics("quick")
        assert [r.name for r in rows] == ["PWR", "NY", "BAY", "COL"]
        for row in rows:
            assert row.num_vertices > 0
            assert row.num_edges > 0
            assert row.paper_vertices > row.num_vertices  # scaled down
            assert 1.0 < row.avg_degree < 6.0

    def test_row_fields(self):
        row = dataset_statistics("quick")[0]
        assert row.description == "Power Network"
        assert row.paper_vertices == 5300
        assert row.paper_edges == 8271

"""The 12 evaluation datasets (paper Table I), synthetic substitutes.

The paper evaluates on one power network and 11 DIMACS USA road networks
(5.3k - 23.9M vertices).  Those graphs cannot be shipped or, at the
larger sizes, indexed in pure Python, so this registry generates
deterministic synthetic stand-ins with the same names, the same relative
size ordering, and road-like structure (see DESIGN.md, "Substitutions").
Real DIMACS files can be loaded with :func:`repro.graph.io.read_dimacs`
and swapped in.

Datasets are built on first use and cached for the process lifetime.
Two tiers keep benchmark runs tractable:

* ``quick`` — the four smallest datasets; used by the pytest benchmarks.
* ``full``  — all 12; used by the EXPERIMENTS.md runner
  (``REPRO_DATASETS=full``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.graph.generators import power_grid_network, road_network
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset and its paper-scale counterpart."""

    name: str
    description: str
    #: Target synthetic size (vertices); actual size varies slightly
    #: because generators keep the largest connected component.
    target_vertices: int
    #: Vertex/edge counts of the real dataset in the paper's Table I.
    paper_vertices: int
    paper_edges: int
    generator: Callable[..., Graph]
    seed: int
    aspect: float = 1.0


def _road(spec: DatasetSpec) -> Graph:
    return road_network(spec.target_vertices, seed=spec.seed, aspect=spec.aspect)


def _power(spec: DatasetSpec) -> Graph:
    return power_grid_network(spec.target_vertices, seed=spec.seed)


_SPECS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("PWR", "Power Network", 1300, 5_300, 8_271, _power, seed=11),
    DatasetSpec("NY", "New York City", 2600, 264_346, 733_846, _road, seed=12, aspect=0.8),
    DatasetSpec("BAY", "San Francisco Bay Area", 3200, 321_270, 800_172, _road, seed=13),
    DatasetSpec("COL", "Colorado", 4400, 435_666, 1_057_066, _road, seed=14),
    DatasetSpec("FLA", "Florida", 5400, 1_070_376, 2_712_798, _road, seed=15, aspect=1.6),
    DatasetSpec("NW", "Northwest USA", 6100, 1_207_945, 2_840_208, _road, seed=16),
    DatasetSpec("NE", "Northeast USA", 7600, 1_524_453, 3_897_636, _road, seed=17),
    DatasetSpec("CAL", "California", 9500, 1_890_815, 4_657_742, _road, seed=18, aspect=1.4),
    DatasetSpec("E", "Eastern USA", 12000, 3_598_623, 8_778_114, _road, seed=19),
    DatasetSpec("W", "Western USA", 16000, 6_262_104, 15_248_146, _road, seed=20),
    DatasetSpec("CTR", "Central USA", 20000, 14_081_816, 34_292_496, _road, seed=21),
    DatasetSpec("USA", "United States", 24000, 23_947_347, 58_333_344, _road, seed=22),
)

DATASET_SPECS: Dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

#: Datasets small enough for routine pytest benchmark runs.
QUICK_DATASETS: Tuple[str, ...] = ("PWR", "NY", "BAY", "COL")

#: Mid-size tier for the EXPERIMENTS.md runner default.
MEDIUM_DATASETS: Tuple[str, ...] = QUICK_DATASETS + ("FLA", "NW", "NE", "CAL")

FULL_DATASETS: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)


def dataset_names(tier: str = None) -> List[str]:
    """Dataset names in Table I order.

    ``tier`` may be ``"quick"``, ``"medium"``, ``"full"``, or ``None``
    to honour the ``REPRO_DATASETS`` environment variable (default
    ``quick``).
    """
    if tier is None:
        tier = os.environ.get("REPRO_DATASETS", "quick")
    tiers = {
        "quick": QUICK_DATASETS,
        "medium": MEDIUM_DATASETS,
        "full": FULL_DATASETS,
    }
    try:
        return list(tiers[tier])
    except KeyError:
        raise ValueError(
            f"unknown dataset tier {tier!r}; expected one of {sorted(tiers)}"
        ) from None


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Build (or fetch from cache) the named dataset graph."""
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {FULL_DATASETS}"
        ) from None
    return spec.generator(spec)

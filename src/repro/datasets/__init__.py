"""Evaluation dataset registry (synthetic stand-ins for Table I)."""

from repro.datasets.registry import (
    DATASET_SPECS,
    FULL_DATASETS,
    MEDIUM_DATASETS,
    QUICK_DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.datasets.stats import DatasetRow, dataset_statistics

__all__ = [
    "DATASET_SPECS",
    "DatasetRow",
    "DatasetSpec",
    "FULL_DATASETS",
    "MEDIUM_DATASETS",
    "QUICK_DATASETS",
    "dataset_names",
    "dataset_statistics",
    "load_dataset",
]

"""Table I: statistics of the evaluation datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.registry import DATASET_SPECS, dataset_names, load_dataset


@dataclass(frozen=True)
class DatasetRow:
    """One row of Table I: synthetic size next to the paper's size."""

    name: str
    description: str
    num_vertices: int
    num_edges: int
    paper_vertices: int
    paper_edges: int

    @property
    def avg_degree(self) -> float:
        """Average vertex degree of the synthetic graph."""
        if self.num_vertices == 0:
            return 0.0
        return 2 * self.num_edges / self.num_vertices


def dataset_statistics(tier: Optional[str] = None) -> List[DatasetRow]:
    """Materialise Table I rows for the chosen dataset tier."""
    rows = []
    for name in dataset_names(tier):
        spec = DATASET_SPECS[name]
        graph = load_dataset(name)
        rows.append(
            DatasetRow(
                name=name,
                description=spec.description,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
            )
        )
    return rows

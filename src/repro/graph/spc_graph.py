"""SPC-Graph helpers: count-preserving shortcuts (paper Definition 4.3).

An SPC-Graph of ``G`` is a graph over a vertex subset whose pairwise
shortest distances *and* shortest path counts match ``G``.  The key
primitive is :func:`add_shortcut` — the paper's ``addEdge`` procedure
(Algorithm 4, lines 8-14): inserting a shortcut either creates the edge,
replaces a longer edge, or *merges* path counts into an equally long one.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Tuple

from repro.graph.graph import Graph
from repro.types import Vertex, Weight


def add_shortcut(
    graph: Graph, u: Vertex, v: Vertex, distance: Weight, count: int
) -> None:
    """Insert a shortcut ``(u, v)`` with the paper's merge semantics.

    * no edge yet, or ``distance`` is shorter -> set ``(distance, count)``;
    * equal distance -> add ``count`` to the existing count weight;
    * longer distance -> no-op (the shortcut is dominated).
    """
    if count == 0:
        return
    adj_u = graph.adj(u)
    existing = adj_u.get(v)
    if existing is None or distance < existing[0]:
        graph.add_edge(u, v, distance, count)
    elif distance == existing[0]:
        graph.add_edge(u, v, distance, existing[1] + count)


def union_with_shortcuts(
    base: Graph,
    shortcuts: Iterable[Tuple[Vertex, Vertex, Weight, int]],
) -> Graph:
    """Copy ``base`` and merge every ``(u, v, dist, count)`` shortcut in."""
    result = base.copy()
    for u, v, dist, count in shortcuts:
        add_shortcut(result, u, v, dist, count)
    return result


def is_spc_graph_of(
    candidate: Graph,
    original: Graph,
    sample_pairs: Optional[Iterable[Tuple[Vertex, Vertex]]] = None,
) -> bool:
    """Check Definition 4.3: ``candidate`` preserves distances and counts.

    Compares the shortest distance and shortest path count of vertex
    pairs of ``candidate`` against ``original``.  By default all pairs
    are checked (quadratic — intended for tests and small graphs); pass
    ``sample_pairs`` to restrict the check.
    """
    # Imported here to avoid a cycle: repro.search depends on repro.graph.
    from repro.search.dijkstra import ssspc

    vertices = sorted(candidate.vertices())
    if any(not original.has_vertex(v) for v in vertices):
        return False

    if sample_pairs is None:
        pairs: Iterable[Tuple[Vertex, Vertex]] = combinations(vertices, 2)
        sources = vertices
    else:
        pairs = list(sample_pairs)
        sources = sorted({u for u, _ in pairs})

    per_source = {u: [] for u in sources}
    for u, v in pairs:
        if u not in per_source:
            per_source[u] = []
        per_source[u].append(v)

    for u, targets in per_source.items():
        dist_cand, cnt_cand = ssspc(candidate, u)
        dist_orig, cnt_orig = ssspc(original, u)
        for v in targets:
            if dist_cand.get(v) != dist_orig.get(v):
                return False
            if cnt_cand.get(v, 0) != cnt_orig.get(v, 0):
                return False
    return True

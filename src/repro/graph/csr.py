"""Immutable packed-adjacency graph snapshots.

Pure-Python index construction spends most of its time in SSSPC's
adjacency iteration.  A :class:`CSRGraph` snapshot re-maps vertices to
dense ids and packs each neighbourhood into one tuple of
``(target, weight, count)`` triples — iteration unpacks compact tuples
instead of probing hash maps, and the search state becomes flat lists.
Measured ~1.6x faster SSSPC in CPython at zero algorithmic risk (the
dict-based path remains the reference; both are tested to agree).

Snapshots are *static*: they capture a :class:`~repro.graph.graph.Graph`
at a point in time.  Algorithms that logically delete vertices (label
computation removes processed cut vertices) pass a banned mask instead
of mutating.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph
from repro.types import Vertex, Weight

NeighborTriples = Tuple[Tuple[int, Weight, int], ...]


class CSRGraph:
    """A frozen adjacency snapshot with dense internal ids."""

    __slots__ = ("vertex_ids", "vertices", "neighbors")

    def __init__(self, graph: Graph) -> None:
        #: original vertex id -> dense internal id
        self.vertex_ids: Dict[Vertex, int] = {}
        #: dense internal id -> original vertex id (ascending originals)
        self.vertices: List[Vertex] = sorted(graph.vertices())
        for dense, v in enumerate(self.vertices):
            self.vertex_ids[v] = dense

        #: ``neighbors[dense]`` — tuple of ``(target, weight, count)``.
        self.neighbors: List[NeighborTriples] = [
            tuple(
                (self.vertex_ids[u], w, c)
                for u, (w, c) in sorted(graph.adj(v).items())
            )
            for v in self.vertices
        ]

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self.neighbors) // 2

    def dense_id(self, v: Vertex) -> int:
        """Internal id of an original vertex id."""
        try:
            return self.vertex_ids[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, dense: int) -> int:
        """Degree of an internal id."""
        return len(self.neighbors[dense])

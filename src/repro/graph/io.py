"""Graph readers and writers.

Supported formats:

* **DIMACS** ``.gr`` (9th DIMACS Implementation Challenge — the format of
  the paper's road networks): ``p sp <n> <m>`` header, ``a <u> <v> <w>``
  arcs, ``c`` comments.  Arcs are 1-based and directed; road networks list
  both directions, which the reader folds into one undirected edge
  (keeping the minimum weight when the two directions disagree).
* **Edge list**: whitespace-separated ``u v w [count]`` lines, ``#``
  comments, 0-based ids.
* **JSON**: lossless round-trip including count weights and coordinates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ParseError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# DIMACS .gr
# ----------------------------------------------------------------------
def read_dimacs(path: PathLike) -> Graph:
    """Read a DIMACS ``.gr`` file into an undirected :class:`Graph`.

    Vertex ids are converted from 1-based to 0-based.  Duplicate arcs
    keep the smallest weight.
    """
    graph = Graph()
    declared_vertices = None
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            tag = fields[0]
            if tag == "p":
                if len(fields) != 4 or fields[1] != "sp":
                    raise ParseError(
                        f"malformed problem line {line!r}", line_number
                    )
                declared_vertices = int(fields[2])
                for v in range(declared_vertices):
                    graph.add_vertex(v)
            elif tag == "a":
                if len(fields) != 4:
                    raise ParseError(f"malformed arc line {line!r}", line_number)
                try:
                    u, v, w = int(fields[1]) - 1, int(fields[2]) - 1, int(fields[3])
                except ValueError as exc:
                    raise ParseError(str(exc), line_number) from exc
                if u == v:
                    continue  # road data occasionally contains self-loops
                if w <= 0:
                    raise ParseError(
                        f"arc ({u + 1}, {v + 1}) has non-positive weight {w}",
                        line_number,
                    )
                if not graph.has_edge(u, v) or w < graph.weight(u, v):
                    graph.add_edge(u, v, w)
            else:
                raise ParseError(f"unknown line tag {tag!r}", line_number)
    if declared_vertices is None:
        raise ParseError("missing 'p sp <n> <m>' problem line")
    return graph


def write_dimacs(graph: Graph, path: PathLike, comment: str = "") -> None:
    """Write ``graph`` as a DIMACS ``.gr`` file (both arc directions).

    Vertex ids must be dense ``0..n-1``; they are written 1-based.
    """
    vertices = sorted(graph.vertices())
    if vertices and vertices[-1] != len(vertices) - 1:
        raise ParseError("write_dimacs requires dense 0..n-1 vertex ids")
    with open(path, "w") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write(f"c {line}\n")
        handle.write(f"p sp {graph.num_vertices} {2 * graph.num_edges}\n")
        for u, v, w, _count in graph.edges():
            handle.write(f"a {u + 1} {v + 1} {w}\n")
            handle.write(f"a {v + 1} {u + 1} {w}\n")


# ----------------------------------------------------------------------
# edge list
# ----------------------------------------------------------------------
def read_edge_list(path: PathLike) -> Graph:
    """Read ``u v w [count]`` lines (0-based ids, ``#`` comments)."""
    graph = Graph()
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) not in (3, 4):
                raise ParseError(f"expected 'u v w [count]', got {line!r}", line_number)
            try:
                u, v = int(fields[0]), int(fields[1])
                w = int(fields[2]) if fields[2].isdigit() else float(fields[2])
                c = int(fields[3]) if len(fields) == 4 else 1
            except ValueError as exc:
                raise ParseError(str(exc), line_number) from exc
            graph.add_edge(u, v, w, c)
    return graph


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write the graph as ``u v w count`` lines."""
    with open(path, "w") as handle:
        handle.write("# u v weight count\n")
        for u, v, w, c in sorted(graph.edges()):
            handle.write(f"{u} {v} {w} {c}\n")


# ----------------------------------------------------------------------
# JSON (lossless)
# ----------------------------------------------------------------------
def to_json_dict(graph: Graph) -> dict:
    """A JSON-serialisable dict capturing the full graph."""
    payload = {
        "vertices": sorted(graph.vertices()),
        "edges": [[u, v, w, c] for u, v, w, c in sorted(graph.edges())],
    }
    if graph.coordinates is not None:
        payload["coordinates"] = {
            str(v): list(xy) for v, xy in graph.coordinates.items()
        }
    return payload


def from_json_dict(payload: dict) -> Graph:
    """Inverse of :func:`to_json_dict`."""
    graph = Graph()
    for v in payload.get("vertices", []):
        graph.add_vertex(v)
    for u, v, w, c in payload.get("edges", []):
        graph.add_edge(u, v, w, c)
    coords = payload.get("coordinates")
    if coords is not None:
        graph.coordinates = {int(v): tuple(xy) for v, xy in coords.items()}
    return graph


def read_json(path: PathLike) -> Graph:
    """Read a graph from a JSON file produced by :func:`write_json`."""
    with open(path) as handle:
        return from_json_dict(json.load(handle))


def write_json(graph: Graph, path: PathLike) -> None:
    """Write the graph (including counts and coordinates) as JSON."""
    with open(path, "w") as handle:
        json.dump(to_json_dict(graph), handle)


# ----------------------------------------------------------------------
# extension dispatch
# ----------------------------------------------------------------------
#: Graph readers by file extension (the formats the tooling accepts).
GRAPH_READERS = {
    ".gr": read_dimacs,
    ".json": read_json,
    ".txt": read_edge_list,
    ".edges": read_edge_list,
    ".edgelist": read_edge_list,
}


def read_graph_auto(path: PathLike) -> Graph:
    """Read a graph, picking the reader from the file extension.

    Shared by the CLI and the serving fleet's worker processes (which
    load the live-update graph themselves, without CLI plumbing).
    """
    target = Path(path)
    if target.is_dir():
        raise ParseError(
            f"{path} is a directory, expected a graph file "
            f"({'/'.join(sorted(GRAPH_READERS))})"
        )
    reader = GRAPH_READERS.get(target.suffix.lower())
    if reader is None:
        raise ParseError(
            f"unrecognised graph extension {target.suffix or '(none)'!r} "
            f"for {path}; expected one of "
            f"{'/'.join(sorted(GRAPH_READERS))} "
            "(.gr = DIMACS, .json = adjacency JSON, "
            ".txt/.edges/.edgelist = 'u v w [count]' edge list)"
        )
    return reader(path)

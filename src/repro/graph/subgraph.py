"""Border vertices and boundary graphs (paper Definition 4.4).

Given a vertex set ``L`` of ``G``:

* the *border vertices* ``B`` are the vertices of ``L`` with at least one
  edge leaving ``L``;
* the *boundary graph* ``BG = G \\ G[L]`` keeps every edge of ``G`` except
  those with both endpoints inside ``L``, and drops vertices isolated by
  that removal.

Outer-Only shortest paths between vertices of ``L`` (paths whose interior
lies entirely outside ``L``) are exactly shortest paths of the boundary
graph — the fact Algorithm 4 builds on.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.graph.graph import Graph
from repro.types import Vertex


def border_vertices(graph: Graph, part: Iterable[Vertex]) -> List[Vertex]:
    """Vertices of ``part`` with a neighbour outside ``part``, sorted."""
    part_set = set(part)
    border = [
        v
        for v in part_set
        if any(u not in part_set for u in graph.adj(v))
    ]
    return sorted(border)


def boundary_graph(graph: Graph, part: Iterable[Vertex]) -> Graph:
    """The boundary graph ``G \\ G[part]``.

    Keeps every edge with at most one endpoint in ``part`` and drops
    vertices left isolated.  Interior vertices of ``part`` therefore
    disappear, while its border vertices remain as terminals.
    """
    part_set: Set[Vertex] = set(part)
    bg = Graph()
    for u, v, w, c in graph.edges():
        if u in part_set and v in part_set:
            continue
        bg.add_edge(u, v, w, c)
    return bg


def crossing_edges(graph: Graph, part: Iterable[Vertex]):
    """Edges with exactly one endpoint in ``part``, as an iterator."""
    part_set = set(part)
    for u, v, w, c in graph.edges():
        if (u in part_set) != (v in part_set):
            yield u, v, w, c

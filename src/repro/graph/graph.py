"""Mutable undirected weighted graph with shortest-path-count edge weights.

Every edge carries two weights:

* a *distance weight* ``phi(u, v) > 0`` — the length of the road segment;
* a *count weight* ``sigma(u, v) >= 1`` — the number of shortest paths
  between the endpoints that the edge represents (Definition 4.3 in the
  paper).  Plain road networks have ``sigma = 1`` everywhere; SPC-Graphs
  produced during CTLS-Index construction use larger values for shortcuts.

The class is optimised for the access pattern of Dijkstra-style searches:
``graph.adj(v)`` exposes the underlying neighbour mapping
``{neighbour: (distance, count)}`` without copying.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.exceptions import EdgeError, VertexNotFoundError
from repro.types import Vertex, Weight, WeightedEdge

EdgeData = Tuple[Weight, int]


class Graph:
    """An undirected graph with positive distance and count edge weights.

    Vertices are hashable integers; they need not be contiguous (induced
    subgraphs keep original ids).  Self-loops and parallel edges are
    rejected — ``add_edge`` on an existing edge overwrites it, and
    :func:`repro.graph.spc_graph.add_shortcut` implements the paper's
    merge semantics instead.
    """

    __slots__ = ("_adj", "_num_edges", "coordinates")

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, EdgeData]] = {}
        self._num_edges = 0
        #: Optional vertex coordinates ``{v: (x, y)}`` attached by
        #: generators; purely informational.
        self.coordinates: Optional[Dict[Vertex, Tuple[float, float]]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[WeightedEdge],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "Graph":
        """Build a graph from ``(u, v, weight)`` triples.

        Endpoints are added implicitly.  ``vertices`` may list extra
        (possibly isolated) vertices to include.
        """
        graph = cls()
        if vertices is not None:
            for v in vertices:
                graph.add_vertex(v)
        for u, v, w in edges:
            graph.add_vertex(u)
            graph.add_vertex(v)
            graph.add_edge(u, v, w)
        return graph

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex; a no-op if it already exists."""
        if v not in self._adj:
            self._adj[v] = {}

    def add_edge(self, u: Vertex, v: Vertex, weight: Weight, count: int = 1) -> None:
        """Add (or overwrite) the undirected edge ``(u, v)``.

        Raises:
            EdgeError: on self-loops, non-positive weights or counts.
        """
        if u == v:
            raise EdgeError(f"self-loop on vertex {u} is not allowed")
        if weight <= 0:
            raise EdgeError(f"edge ({u}, {v}) has non-positive weight {weight}")
        if count < 1:
            raise EdgeError(f"edge ({u}, {v}) has count weight {count} < 1")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        data = (weight, count)
        self._adj[u][v] = data
        self._adj[v][u] = data

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; raises if absent."""
        try:
            del self._adj[u][v]
            del self._adj[v][u]
        except KeyError:
            raise EdgeError(f"edge ({u}, {v}) is not in the graph") from None
        self._num_edges -= 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all its incident edges."""
        try:
            neighbours = self._adj.pop(v)
        except KeyError:
            raise VertexNotFoundError(v) from None
        for u in neighbours:
            del self._adj[u][v]
        self._num_edges -= len(neighbours)
        if self.coordinates is not None:
            self.coordinates.pop(v, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertex ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, Weight, int]]:
        """Iterate over undirected edges as ``(u, v, weight, count)``.

        Each edge is reported once, with ``u < v`` for comparable ids.
        """
        for u, neighbours in self._adj.items():
            for v, (w, c) in neighbours.items():
                if u < v:
                    yield u, v, w, c

    def has_vertex(self, v: Vertex) -> bool:
        """Whether ``v`` is in the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        adj_u = self._adj.get(u)
        return adj_u is not None and v in adj_u

    def weight(self, u: Vertex, v: Vertex) -> Weight:
        """Distance weight ``phi(u, v)``; raises ``EdgeError`` if absent."""
        return self._edge_data(u, v)[0]

    def count(self, u: Vertex, v: Vertex) -> int:
        """Count weight ``sigma(u, v)``; raises ``EdgeError`` if absent."""
        return self._edge_data(u, v)[1]

    def _edge_data(self, u: Vertex, v: Vertex) -> EdgeData:
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeError(f"edge ({u}, {v}) is not in the graph") from None

    def adj(self, v: Vertex) -> Dict[Vertex, EdgeData]:
        """The neighbour mapping ``{u: (weight, count)}`` of ``v``.

        This is the live internal mapping (no copy) — do not mutate it;
        use the ``add_*``/``remove_*`` methods instead.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbours of ``v``."""
        return iter(self.adj(v))

    def degree(self, v: Vertex) -> int:
        """Number of edges incident to ``v``."""
        return len(self.adj(v))

    def max_degree(self) -> int:
        """Maximum vertex degree; 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy of the adjacency structure (edge data is shared)."""
        clone = Graph()
        clone._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        if self.coordinates is not None:
            clone.coordinates = dict(self.coordinates)
        return clone

    def induced_subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """The subgraph ``G[S]`` induced by the vertex set ``keep``.

        Vertices keep their original ids.  Unknown ids raise
        :class:`VertexNotFoundError`.
        """
        keep_set = set(keep)
        sub = Graph()
        for v in keep_set:
            if v not in self._adj:
                raise VertexNotFoundError(v)
            sub._adj[v] = {}
        for v in keep_set:
            nbrs = self._adj[v]
            sub_nbrs = sub._adj[v]
            for u, data in nbrs.items():
                if u in keep_set:
                    sub_nbrs[u] = data
        sub._num_edges = sum(len(nbrs) for nbrs in sub._adj.values()) // 2
        if self.coordinates is not None:
            sub.coordinates = {
                v: self.coordinates[v] for v in keep_set if v in self.coordinates
            }
        return sub

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, v: object) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_vertices}, m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    __hash__ = None  # type: ignore[assignment]  # mutable container

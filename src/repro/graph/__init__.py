"""Graph substrate: structures, IO, generators, connectivity utilities."""

from repro.graph.csr import CSRGraph
from repro.graph.components import (
    bfs_order,
    component_of,
    connected_components,
    is_connected,
    largest_component,
    relabel_to_dense,
)
from repro.graph.graph import Graph
from repro.graph.simplify import contract_degree_two, prune_degree_one
from repro.graph.spc_graph import add_shortcut, is_spc_graph_of, union_with_shortcuts
from repro.graph.subgraph import border_vertices, boundary_graph, crossing_edges
from repro.graph.validation import check_graph, validate_graph

__all__ = [
    "CSRGraph",
    "Graph",
    "add_shortcut",
    "bfs_order",
    "border_vertices",
    "boundary_graph",
    "check_graph",
    "component_of",
    "connected_components",
    "contract_degree_two",
    "prune_degree_one",
    "crossing_edges",
    "is_connected",
    "is_spc_graph_of",
    "largest_component",
    "relabel_to_dense",
    "union_with_shortcuts",
    "validate_graph",
]

"""Structural invariants for graphs used by the indexes.

:func:`validate_graph` raises :class:`~repro.exceptions.GraphError` with a
precise message on the first violated invariant; :func:`check_graph`
returns the list of problems instead (handy in tests and data pipelines).
"""

from __future__ import annotations

from typing import List

from repro.exceptions import GraphError
from repro.graph.graph import Graph


def check_graph(graph: Graph) -> List[str]:
    """Collect invariant violations; empty list means the graph is sound.

    Checks: adjacency symmetry, no self-loops, positive distance weights,
    count weights >= 1, and an accurate cached edge count.
    """
    problems: List[str] = []
    seen_edges = 0
    for v in graph.vertices():
        for u, (w, c) in graph.adj(v).items():
            if u == v:
                problems.append(f"self-loop on vertex {v}")
                continue
            if not graph.has_vertex(u):
                problems.append(f"edge ({v}, {u}) points to unknown vertex {u}")
                continue
            back = graph.adj(u).get(v)
            if back is None:
                problems.append(f"edge ({v}, {u}) missing reverse direction")
            elif back != (w, c):
                problems.append(
                    f"edge ({v}, {u}) asymmetric weights {(w, c)} != {back}"
                )
            if w <= 0:
                problems.append(f"edge ({v}, {u}) has non-positive weight {w}")
            if c < 1:
                problems.append(f"edge ({v}, {u}) has count weight {c} < 1")
            seen_edges += 1
    if seen_edges % 2 == 0 and seen_edges // 2 != graph.num_edges:
        problems.append(
            f"cached edge count {graph.num_edges} != actual {seen_edges // 2}"
        )
    return problems


def validate_graph(graph: Graph) -> None:
    """Raise :class:`GraphError` on the first invariant violation."""
    problems = check_graph(graph)
    if problems:
        raise GraphError(problems[0])

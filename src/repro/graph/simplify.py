"""Count-preserving graph simplification.

Real road networks are full of degree-2 chains (curved roads sampled as
many tiny segments).  Contracting them is standard preprocessing: it
shrinks DIMACS graphs by 30-60% before index construction while keeping
every junction-to-junction query exact — the contracted graph is an
SPC-Graph (Definition 4.3) of the original over the surviving vertices.

Contraction of a degree-2 vertex ``x`` with neighbours ``u, v`` replaces
its two edges by a shortcut ``(u, v)`` of combined length and multiplied
count weight, merged by the usual ``addEdge`` rule; rings collapse
gracefully because dominated (longer) parallels are dropped and equal
parallels merge counts.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

from repro.graph.graph import Graph
from repro.graph.spc_graph import add_shortcut
from repro.types import Vertex


def contract_degree_two(
    graph: Graph, *, keep: Iterable[Vertex] = ()
) -> Tuple[Graph, Dict[Vertex, Tuple[Vertex, Vertex]]]:
    """Contract all degree-2 chains; returns ``(simplified, removed)``.

    ``keep`` vertices are never contracted (query endpoints, POIs).
    ``removed`` maps each contracted vertex to the two neighbours it
    had at removal time — enough to locate it on the surviving fabric.

    The result preserves shortest distances *and counts* between all
    surviving vertices.  Queries touching removed vertices must be
    answered on the original graph.
    """
    result = graph.copy()
    keep_set = set(keep)
    removed: Dict[Vertex, Tuple[Vertex, Vertex]] = {}

    queue = deque(
        v
        for v in result.vertices()
        if result.degree(v) == 2 and v not in keep_set
    )
    while queue:
        x = queue.popleft()
        if (
            not result.has_vertex(x)
            or x in keep_set
            or result.degree(x) != 2
        ):
            continue
        (u, (w1, c1)), (v, (w2, c2)) = sorted(result.adj(x).items())
        result.remove_vertex(x)
        removed[x] = (u, v)
        add_shortcut(result, u, v, w1 + w2, c1 * c2)
        for endpoint in (u, v):
            if (
                result.has_vertex(endpoint)
                and result.degree(endpoint) == 2
                and endpoint not in keep_set
            ):
                queue.append(endpoint)
    return result, removed


def prune_degree_one(
    graph: Graph, *, keep: Iterable[Vertex] = ()
) -> Tuple[Graph, List[Vertex]]:
    """Iteratively strip dangling degree-1 vertices (dead-end spurs).

    Returns ``(pruned, removed_order)``.  Queries between surviving
    vertices are unaffected — a dead end can only be a path *endpoint*,
    never an intermediate.
    """
    result = graph.copy()
    keep_set = set(keep)
    removed: List[Vertex] = []
    queue = deque(
        v
        for v in result.vertices()
        if result.degree(v) <= 1 and v not in keep_set
    )
    while queue:
        x = queue.popleft()
        if not result.has_vertex(x) or x in keep_set or result.degree(x) > 1:
            continue
        neighbours = list(result.adj(x))
        result.remove_vertex(x)
        removed.append(x)
        for y in neighbours:
            if result.degree(y) <= 1 and y not in keep_set:
                queue.append(y)
    return result, removed

"""Connectivity utilities: components, reachability, traversal orders."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.graph.graph import Graph
from repro.types import Vertex


def bfs_order(graph: Graph, source: Vertex) -> List[Vertex]:
    """Vertices reachable from ``source`` in breadth-first order."""
    seen: Set[Vertex] = {source}
    order: List[Vertex] = [source]
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.adj(v):
            if u not in seen:
                seen.add(u)
                order.append(u)
                queue.append(u)
    return order


def connected_components(
    graph: Graph, within: Optional[Iterable[Vertex]] = None
) -> List[List[Vertex]]:
    """Connected components, each as a list of vertices.

    ``within`` restricts the search to an induced vertex subset without
    materialising the subgraph.  Components are ordered by discovery;
    vertices within a component are in BFS order.
    """
    if within is None:
        allowed: Optional[Set[Vertex]] = None
        universe: Iterable[Vertex] = graph.vertices()
    else:
        allowed = set(within)
        universe = allowed

    seen: Set[Vertex] = set()
    components: List[List[Vertex]] = []
    for start in universe:
        if start in seen:
            continue
        seen.add(start)
        component = [start]
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.adj(v):
                if u in seen or (allowed is not None and u not in allowed):
                    continue
                seen.add(u)
                component.append(u)
                queue.append(u)
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph has exactly one connected component.

    The empty graph is considered connected.
    """
    n = graph.num_vertices
    if n <= 1:
        return True
    start = next(iter(graph.vertices()))
    return len(bfs_order(graph, start)) == n


def largest_component(graph: Graph) -> Graph:
    """The induced subgraph of the largest connected component."""
    components = connected_components(graph)
    if not components:
        return graph.copy()
    biggest = max(components, key=len)
    return graph.induced_subgraph(biggest)


def component_of(graph: Graph, v: Vertex, removed: Set[Vertex]) -> Set[Vertex]:
    """The component containing ``v`` after deleting ``removed`` vertices."""
    if v in removed:
        return set()
    seen: Set[Vertex] = {v}
    queue = deque([v])
    while queue:
        x = queue.popleft()
        for u in graph.adj(x):
            if u not in seen and u not in removed:
                seen.add(u)
                queue.append(u)
    return seen


def relabel_to_dense(graph: Graph) -> "tuple[Graph, Dict[Vertex, Vertex]]":
    """Relabel vertices to ``0..n-1`` (sorted by original id).

    Returns the relabelled graph and the ``old -> new`` mapping.
    """
    mapping = {old: new for new, old in enumerate(sorted(graph.vertices()))}
    dense = Graph()
    for old in graph.vertices():
        dense.add_vertex(mapping[old])
    for u, v, w, c in graph.edges():
        dense.add_edge(mapping[u], mapping[v], w, c)
    if graph.coordinates is not None:
        dense.coordinates = {
            mapping[v]: xy for v, xy in graph.coordinates.items() if v in mapping
        }
    return dense, mapping

"""Deterministic synthetic network generators.

The paper evaluates on DIMACS USA road networks (up to 24M vertices) and a
5.3k-vertex power network.  Those graphs are not shipped here and are out
of reach for pure-Python index construction, so the dataset registry
(:mod:`repro.datasets`) substitutes the generators below.  They reproduce
the structural properties the experiments depend on:

* average degree around 2.5-2.8 (road fabrics) with long diameters,
* ``O(sqrt n)`` balanced separators (planar-like growth),
* shortest-path ties (weights drawn from a coarse lattice), so path
  counts are non-trivial yet bounded.

All generators are deterministic given ``seed`` and return graphs with
dense ``0..n-1`` vertex ids and attached planar coordinates.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence, Tuple

from repro.graph.components import largest_component, relabel_to_dense
from repro.graph.graph import Graph

#: Coarse lattice of edge weights: coarse enough for shortest-path ties
#: (non-trivial counts), fine enough to avoid combinatorial blow-ups.
_WEIGHT_CHOICES: Sequence[int] = tuple(range(60, 150, 10))


def _random_weight(rng: random.Random, scale: float = 1.0) -> int:
    return max(1, int(rng.choice(_WEIGHT_CHOICES) * scale))


# ----------------------------------------------------------------------
# elementary test graphs (unit weights)
# ----------------------------------------------------------------------
def path_graph(n: int, weight: int = 1) -> Graph:
    """A path ``0 - 1 - ... - n-1`` with uniform edge weight."""
    return Graph.from_edges(
        ((i, i + 1, weight) for i in range(n - 1)), vertices=range(n)
    )


def cycle_graph(n: int, weight: int = 1) -> Graph:
    """A cycle on ``n >= 3`` vertices with uniform edge weight."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n, weight) for i in range(n)]
    return Graph.from_edges(edges)


def complete_graph(n: int, weight: int = 1) -> Graph:
    """The complete graph ``K_n`` with uniform edge weight."""
    edges = [(i, j, weight) for i in range(n) for j in range(i + 1, n)]
    return Graph.from_edges(edges, vertices=range(n))


def star_graph(n_leaves: int, weight: int = 1) -> Graph:
    """A star: centre ``0`` joined to leaves ``1..n_leaves``."""
    return Graph.from_edges((0, i, weight) for i in range(1, n_leaves + 1))


def grid_graph(rows: int, cols: int, weight: int = 1) -> Graph:
    """A ``rows x cols`` lattice with uniform weights (maximal SP ties)."""
    graph = Graph()
    coords = {}

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            graph.add_vertex(v)
            coords[v] = (float(c), float(r))
            if c + 1 < cols:
                graph.add_edge(v, vid(r, c + 1), weight)
            if r + 1 < rows:
                graph.add_edge(v, vid(r + 1, c), weight)
    graph.coordinates = coords
    return graph


# ----------------------------------------------------------------------
# road networks
# ----------------------------------------------------------------------
def grid_road_network(
    rows: int,
    cols: int,
    *,
    hole_fraction: float = 0.12,
    diagonal_fraction: float = 0.05,
    weight_scale: float = 1.0,
    seed: int = 0,
) -> Graph:
    """A road-like fabric: a grid with punched holes and a few diagonals.

    Starting from a ``rows x cols`` lattice, the generator removes
    clustered "holes" (lakes, parks) covering roughly ``hole_fraction``
    of the vertices, adds diagonal shortcuts to ``diagonal_fraction`` of
    the cells, draws edge weights from a coarse lattice, and keeps the
    largest connected component relabelled to ``0..n-1``.
    """
    if not 0 <= hole_fraction < 1:
        raise ValueError("hole_fraction must be in [0, 1)")
    rng = random.Random(seed)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    # Punch clustered holes: pick centres, remove small random blobs.
    removed = set()
    target_removed = int(rows * cols * hole_fraction)
    while len(removed) < target_removed:
        cr, cc = rng.randrange(rows), rng.randrange(cols)
        blob = rng.randint(1, 6)
        frontier = [(cr, cc)]
        for _ in range(blob):
            if not frontier:
                break
            r, c = frontier.pop(rng.randrange(len(frontier)))
            removed.add((r, c))
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols and (nr, nc) not in removed:
                    frontier.append((nr, nc))

    graph = Graph()
    coords = {}
    for r in range(rows):
        for c in range(cols):
            if (r, c) in removed:
                continue
            v = vid(r, c)
            graph.add_vertex(v)
            coords[v] = (float(c), float(r))
            if c + 1 < cols and (r, c + 1) not in removed:
                graph.add_edge(v, vid(r, c + 1), _random_weight(rng, weight_scale))
            if r + 1 < rows and (r + 1, c) not in removed:
                graph.add_edge(v, vid(r + 1, c), _random_weight(rng, weight_scale))

    # Diagonal shortcuts (sqrt(2) longer on average).
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() >= diagonal_fraction:
                continue
            corners = [(r, c), (r, c + 1), (r + 1, c), (r + 1, c + 1)]
            if any(x in removed for x in corners):
                continue
            if rng.random() < 0.5:
                u, v = vid(r, c), vid(r + 1, c + 1)
            else:
                u, v = vid(r, c + 1), vid(r + 1, c)
            graph.add_edge(u, v, _random_weight(rng, weight_scale * 1.4))

    graph.coordinates = coords
    dense, _mapping = relabel_to_dense(largest_component(graph))
    return dense


def road_network(
    num_vertices: int, *, seed: int = 0, aspect: float = 1.0
) -> Graph:
    """A road-like network with approximately ``num_vertices`` vertices.

    Thin wrapper over :func:`grid_road_network` choosing grid dimensions
    to land near the target size after hole removal.  ``aspect`` > 1
    stretches the fabric horizontally (long thin states like FLA).
    """
    if num_vertices < 4:
        raise ValueError("road_network needs at least 4 vertices")
    hole_fraction = 0.12
    cells = num_vertices / (1 - hole_fraction)
    rows = max(2, int(math.sqrt(cells / aspect)))
    cols = max(2, int(cells / rows))
    return grid_road_network(rows, cols, hole_fraction=hole_fraction, seed=seed)


def random_geometric_network(
    num_vertices: int,
    *,
    radius: Optional[float] = None,
    seed: int = 0,
) -> Graph:
    """A random geometric graph in the unit square with metric weights.

    Points are connected when within ``radius`` (default chosen for an
    average degree around 5 before trimming); weights are Euclidean
    distances scaled to integers.  Returns the largest component with
    dense ids.
    """
    rng = random.Random(seed)
    if radius is None:
        radius = math.sqrt(1.7 / (math.pi * num_vertices)) * 2
    points = [(rng.random(), rng.random()) for _ in range(num_vertices)]

    # Uniform grid buckets so neighbour search is near-linear.
    cell = radius
    buckets = {}
    for i, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)

    graph = Graph()
    for i in range(num_vertices):
        graph.add_vertex(i)
    for i, (x, y) in enumerate(points):
        bx, by = int(x / cell), int(y / cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for j in buckets.get((bx + dx, by + dy), ()):
                    if j <= i:
                        continue
                    px, py = points[j]
                    dist = math.hypot(x - px, y - py)
                    if dist <= radius:
                        graph.add_edge(i, j, max(1, int(dist * 10000)))
    graph.coordinates = {i: points[i] for i in range(num_vertices)}
    dense, _mapping = relabel_to_dense(largest_component(graph))
    return dense


def power_grid_network(num_vertices: int, *, seed: int = 0) -> Graph:
    """A sparse spatial network resembling a power grid (paper's PWR).

    Each node connects to its nearest already-placed node (a spanning
    spatial tree), plus sparse extra local links, giving average degree
    around 3 and tree-like stretches with occasional meshes.
    """
    rng = random.Random(seed)
    points: list[Tuple[float, float]] = []
    graph = Graph()
    graph.add_vertex(0)
    points.append((rng.random(), rng.random()))

    for i in range(1, num_vertices):
        x, y = rng.random(), rng.random()
        points.append((x, y))
        graph.add_vertex(i)
        # Connect to the nearest of a random sample of placed nodes
        # (keeps generation O(n * sample)).
        sample_size = min(i, 24)
        candidates = rng.sample(range(i), sample_size)
        nearest = min(
            candidates,
            key=lambda j: (points[j][0] - x) ** 2 + (points[j][1] - y) ** 2,
        )
        px, py = points[nearest]
        graph.add_edge(i, nearest, max(1, int(math.hypot(px - x, py - y) * 10000)))
        # Occasional second local link creates loops (meshing).
        if len(candidates) > 1 and rng.random() < 0.55:
            second = min(
                (j for j in candidates if j != nearest),
                key=lambda j: (points[j][0] - x) ** 2 + (points[j][1] - y) ** 2,
            )
            px, py = points[second]
            graph.add_edge(i, second, max(1, int(math.hypot(px - x, py - y) * 10000)))

    graph.coordinates = {i: points[i] for i in range(num_vertices)}
    return graph

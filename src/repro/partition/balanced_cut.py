"""BalancedCut: a balanced minimum vertex cut of a graph (paper §III-D).

Following HC2L (Farhan et al., SIGMOD 2023), summarised in Algorithm 2
line 1 of the paper, a cut is found in three steps:

1. *Rough partitioning* — pick two distant endpoints by double sweep and
   grow a region of about ``beta * n`` vertices around each.
2. *Min cut* — contract the regions into supernodes and compute the
   minimum vertex cut between them inside the middle region (Dinitz on
   the vertex-split network).
3. *Balancing* — removing the cut splits the graph into components;
   whole components are assigned greedily to the lighter of the two
   sides.  Because every component goes wholly to one side, the result
   is a valid vertex cut for the two sides regardless of assignment
   order, and disconnected inputs are handled for free.

Degenerate inputs (tiny graphs, graphs too dense to split) return a
partition whose cut is the entire vertex set (``is_degenerate``), which
the index construction turns into a leaf tree node.
"""

from __future__ import annotations

import random
from typing import Optional

import repro.obs as obs
from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.partition.grow import closed_neighborhood, grow_region
from repro.search.sweep import farthest_vertex
from repro.types import Partition


def _degenerate(graph: Graph) -> Partition:
    return Partition((), tuple(sorted(graph.vertices())), ())


def _assign_components(graph: Graph, cut: list) -> Partition:
    """Split ``G - cut`` into components and balance them over two sides."""
    cut_set = set(cut)
    remaining = [v for v in graph.vertices() if v not in cut_set]
    components = connected_components(graph, within=remaining)
    components.sort(key=len, reverse=True)
    left: list = []
    right: list = []
    for component in components:
        side = left if len(left) <= len(right) else right
        side.extend(component)
    return Partition(tuple(sorted(left)), tuple(sorted(cut)), tuple(sorted(right)))


def balanced_cut(
    graph: Graph,
    beta: float = 0.2,
    *,
    leaf_size: int = 4,
    rng: Optional[random.Random] = None,
    rec=None,
) -> Partition:
    """Partition ``graph`` into ``(L, C, R)`` with a small balanced cut ``C``.

    Args:
        graph: the (sub)graph to split; may be disconnected.
        beta: balance factor — each grown region targets ``beta * n``
            vertices (paper default 0.2).
        leaf_size: graphs with at most this many vertices are not split
            (returned as a degenerate all-cut partition).
        rng: randomness for the double sweep start; defaults to a fresh
            ``Random(0)`` so results are deterministic.
        rec: :mod:`repro.obs` recorder for cut-quality metrics and the
            ``partition.balanced_cut`` span; defaults to the globally
            active recorder (a no-op unless ``obs.configure()`` ran).

    The returned partition satisfies: ``L``, ``C``, ``R`` disjoint, their
    union is ``V``, and every path between ``L`` and ``R`` crosses ``C``.
    """
    if rec is None:
        rec = obs.recorder()
    with rec.span("partition.balanced_cut", n=graph.num_vertices) as span:
        part = _balanced_cut(graph, beta, leaf_size, rng)
        span.set(cut_size=len(part.cut), degenerate=part.is_degenerate)
    rec.observe("partition.cut_size", len(part.cut))
    if not part.is_degenerate:
        smaller = min(len(part.left), len(part.right))
        rec.observe(
            "partition.balance",
            smaller / graph.num_vertices,
            boundaries=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
        )
    return part


def _balanced_cut(
    graph: Graph,
    beta: float,
    leaf_size: int,
    rng: Optional[random.Random],
) -> Partition:
    if not 0 < beta <= 0.5:
        raise ValueError(f"beta must be in (0, 0.5], got {beta}")
    n = graph.num_vertices
    if n <= leaf_size:
        return _degenerate(graph)
    rng = rng or random.Random(0)

    components = connected_components(graph)
    components.sort(key=len, reverse=True)
    main = components[0]
    if len(main) <= leaf_size:
        # Dust of tiny components: no meaningful cut exists.
        return _degenerate(graph)

    # Step 1: rough partitioning inside the largest component.
    target = max(1, int(beta * len(main)))
    start = main[rng.randrange(len(main))]
    a, _d = farthest_vertex(graph, start)
    b, _d = farthest_vertex(graph, a)
    region_a = grow_region(graph, a, target)
    blocked = closed_neighborhood(graph, region_a)
    if b in blocked:
        candidates = [v for v in main if v not in blocked]
        if not candidates:
            return _degenerate(graph)
        b = max(candidates, key=lambda v: (graph.degree(v), -v))
    region_b = grow_region(graph, b, target, forbidden=blocked)
    if not region_b:
        return _degenerate(graph)

    # Step 2: minimum vertex cut between the regions.
    middle = [
        v for v in graph.vertices() if v not in region_a and v not in region_b
    ]
    from repro.flow.vertex_cut import min_vertex_cut_between_regions

    cut = min_vertex_cut_between_regions(graph, region_a, region_b, middle)
    if not cut:
        # The regions live in different components; separate them by
        # component assignment with an arbitrary minimal cut of the main
        # component to keep the recursion shrinking.
        cut = [next(iter(region_a))]

    # Step 3: balance whole components over the two sides.
    return _assign_components(graph, cut)

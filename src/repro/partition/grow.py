"""Region growing: the first phase of BalancedCut.

From two distant endpoints, grow two regions of roughly ``beta * n``
vertices each in Dijkstra (distance) order.  The second region refuses
vertices adjacent to the first, so the regions are never directly
adjacent and a vertex cut between them always exists in the remaining
middle region.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional, Set

from repro.graph.graph import Graph
from repro.types import Vertex


def grow_region(
    graph: Graph,
    source: Vertex,
    target_size: int,
    *,
    forbidden: Optional[Set[Vertex]] = None,
) -> Set[Vertex]:
    """The ``target_size`` vertices nearest to ``source``.

    Vertices in ``forbidden`` are neither entered nor traversed.  The
    region is grown in settled-distance order, so it is connected.
    Returns fewer vertices when the reachable area is smaller.
    """
    banned = forbidden or set()
    if source in banned:
        return set()
    region: Set[Vertex] = set()
    dist = {source: 0}
    heap: list = [(0, source)]
    while heap and len(region) < target_size:
        d, v = heappop(heap)
        if v in region:
            continue
        region.add(v)
        for w, (weight, _count) in graph.adj(v).items():
            if w in region or w in banned:
                continue
            nd = d + weight
            old = dist.get(w)
            if old is None or nd < old:
                dist[w] = nd
                heappush(heap, (nd, w))
    return region


def closed_neighborhood(graph: Graph, region: Set[Vertex]) -> Set[Vertex]:
    """``region`` plus every vertex adjacent to it."""
    result = set(region)
    for v in region:
        result.update(graph.adj(v))
    return result

"""Balanced graph partitioning (BalancedCut of HC2L, paper §III-D)."""

from repro.partition.balanced_cut import balanced_cut
from repro.partition.grow import closed_neighborhood, grow_region

__all__ = ["balanced_cut", "closed_neighborhood", "grow_region"]

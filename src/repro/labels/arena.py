"""Packed label arena: contiguous dense-id label storage.

The :class:`~repro.labels.store.LabelStore` keeps one Python list per
vertex — the right shape while construction appends entries, but every
query pays dict probes and per-vertex list objects.  The
:class:`LabelArena` is the sealed, query-time layout: all label entries
of all vertices live in two contiguous ``array`` buffers (distances and
counts) indexed by a per-vertex offset table over *dense ids*
``0..n-1``.  A query resolves its two endpoints to dense ids once and
then works purely on flat arrays.

Encoding:

* Distances are ``array('q')`` (signed 64-bit) when every finite
  distance is an integer below ``2**60``; ``INF`` is stored as
  :data:`INF_ENCODED` (``2**61``), chosen so that the sum of a real
  distance pair (``< 2**61``) can never collide with a sum involving an
  unreachable side (``>= 2**61``) — the scan loop needs no sentinel
  branch — and so that even ``INF + INF`` fits signed 64 bits for the
  vectorised kernel.  Graphs with float weights fall back to
  ``array('d')`` with a real ``inf``.
* Counts are exact arbitrary-precision integers in the library.  The
  arena stores them in an ``array('q')``; the rare count that exceeds
  63 bits is diverted to the *overflow lane* (parallel position/value
  Python lists) and marked with :data:`COUNT_OVERFLOW` in the array, so
  exactness survives packing bit-for-bit.

The arena is immutable by convention: code that mutates labels in place
(dynamic repair) edits the :class:`LabelStore` and re-seals.

The ``offsets``/``dist``/``count`` buffers may be ``array`` objects (the
heap layout the builders produce) **or** read-only ``memoryview``s over
an ``mmap`` region (the zero-copy layout the v4 container loader hands
over).  Every consumer — the scalar scan, the vectorised kernel, the
serializers — goes through the buffer protocol, so the two layouts are
interchangeable and answer bit-identically.  A mapped arena keeps its
backing region alive via :attr:`region`; the map is torn down by
reference counting once the last view dies (an explicit ``close`` on an
mmap with exported views would raise ``BufferError``).

When numpy is importable, :meth:`LabelArena.scan_batch` runs a
vectorised cross-pair kernel over zero-copy ``int64``/``float64`` views
of the arena buffers: one segmented minimum over every pair's scan
range at C speed, with exact arbitrary-precision count accumulation
restricted to the (few) minimising positions.  Without numpy the same
method falls back to the scalar scan loop — numpy is an accelerator,
never a dependency.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.types import INF, Vertex, Weight

try:  # optional acceleration; the pure-Python path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Encoded distance standing in for ``INF`` in integer arenas.  Real
#: distances must stay below ``2**60`` so the sum of any two of them is
#: below ``INF_ENCODED``, any sum involving an unreachable side is at
#: least ``INF_ENCODED``, and even ``INF_ENCODED + INF_ENCODED`` stays
#: inside a signed 64-bit lane (required by the vectorised kernel).
INF_ENCODED = 2 ** 61

#: Largest finite distance an integer arena can hold (see above).
MAX_INT_DIST = 2 ** 60 - 1

#: Largest count stored inline in the signed 64-bit count array.
MAX_INLINE_COUNT = 2 ** 63 - 1

#: Sentinel in the count array redirecting to the overflow lane.
COUNT_OVERFLOW = -1

#: Below this many pairs the vectorised kernel's fixed setup costs more
#: than the scalar loop it replaces.
_MIN_VECTOR_BATCH = 4


class LabelArena:
    """Contiguous dense-id label storage for query-time scanning."""

    __slots__ = (
        "vertices",
        "vertex_ids",
        "offsets",
        "dist",
        "count",
        "dist_typecode",
        "region",
        "overflow_positions",
        "overflow_counts",
        "_overflow",
        "_np_dist",
    )

    def __init__(
        self,
        vertices: Sequence[Vertex],
        offsets,
        dist,
        count,
        overflow_positions: Sequence[int] = (),
        overflow_counts: Sequence[int] = (),
        *,
        region=None,
    ) -> None:
        self.vertices: List[Vertex] = list(vertices)
        self.vertex_ids: Dict[Vertex, int] = {
            v: i for i, v in enumerate(self.vertices)
        }
        self.offsets = offsets
        self.dist = dist
        self.count = count
        #: ``'q'`` or ``'d'`` — arrays carry it as ``typecode``,
        #: memoryviews as ``format``; resolved once so the hot paths
        #: never re-inspect the buffer type.
        self.dist_typecode: str = getattr(dist, "typecode", None) or dist.format
        #: Whatever owns the mapped bytes (an ``mmap``), kept alive for
        #: as long as the arena holds views into it.  ``None`` for heap
        #: arenas.
        self.region = region
        self.overflow_positions: List[int] = list(overflow_positions)
        self.overflow_counts: List[int] = list(overflow_counts)
        self._overflow: Dict[int, int] = dict(
            zip(self.overflow_positions, self.overflow_counts)
        )
        self._np_dist = None

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(
        cls,
        order: Iterable[Vertex],
        dist_of: Mapping[Vertex, Sequence[Weight]],
        count_of: Mapping[Vertex, Sequence[int]],
    ) -> "LabelArena":
        """Pack per-vertex dist/count lists in dense-id order ``order``."""
        vertices = list(order)
        typecode = "q"
        for v in vertices:
            for d in dist_of[v]:
                if d == INF:
                    continue
                if not isinstance(d, int) or not 0 <= d <= MAX_INT_DIST:
                    typecode = "d"
                    break
            if typecode == "d":
                break

        offsets = array("q", [0])
        dist = array(typecode)
        count = array("q")
        overflow_positions: List[int] = []
        overflow_counts: List[int] = []
        position = 0
        inf_encoded = INF_ENCODED if typecode == "q" else INF
        for v in vertices:
            dist.extend(
                inf_encoded if d == INF else d for d in dist_of[v]
            )
            for c in count_of[v]:
                if c <= MAX_INLINE_COUNT:
                    count.append(c)
                else:
                    overflow_positions.append(position)
                    overflow_counts.append(c)
                    count.append(COUNT_OVERFLOW)
                position += 1
            offsets.append(position)
        return cls(
            vertices, offsets, dist, count, overflow_positions, overflow_counts
        )

    @classmethod
    def from_store(
        cls, store, order: Optional[Iterable[Vertex]] = None
    ) -> "LabelArena":
        """Pack a :class:`LabelStore` (dense ids = ascending vertex id)."""
        if order is None:
            order = sorted(store.dist)
        return cls.from_lists(order, store.dist, store.count)

    # ------------------------------------------------------------------
    # unpacking (reference/interop)
    # ------------------------------------------------------------------
    def decode_dist(self, value):
        """The public distance for one stored ``dist`` element."""
        if self.dist_typecode == "q":
            return INF if value >= INF_ENCODED else value
        return INF if value == INF else value

    def to_lists(self) -> Tuple[Dict[Vertex, List], Dict[Vertex, List[int]]]:
        """Rebuild ``{vertex: [dist]}, {vertex: [count]}`` mappings."""
        dist_of: Dict[Vertex, List] = {}
        count_of: Dict[Vertex, List[int]] = {}
        offsets = self.offsets
        overflow = self._overflow
        for i, v in enumerate(self.vertices):
            start, end = offsets[i], offsets[i + 1]
            dist_of[v] = [self.decode_dist(d) for d in self.dist[start:end]]
            counts = []
            for position in range(start, end):
                c = self.count[position]
                counts.append(overflow[position] if c < 0 else c)
            count_of[v] = counts
        return dist_of, count_of

    def to_store(self):
        """Rebuild the mutable dict-of-lists :class:`LabelStore`."""
        from repro.labels.store import LabelStore

        dist_of, count_of = self.to_lists()
        store = LabelStore(self.vertices)
        store.dist = dist_of
        store.count = count_of
        return store

    # ------------------------------------------------------------------
    # scanning (the query kernel)
    # ------------------------------------------------------------------
    def scan(
        self, source_dense: int, target_dense: int, start: int, end: int
    ) -> Tuple[Weight, int]:
        """Merge label positions ``[start, end)`` of two dense ids.

        Returns ``(distance, count)`` — ``(INF, 0)`` when no scanned
        position connects the pair.  This is the shared inner loop of
        CTL-Query, CTLS-Query, and TL-Query; only the range differs.
        """
        offsets = self.offsets
        return self._scan_window(
            offsets[source_dense] + start,
            offsets[target_dense] + start,
            end - start,
        )

    def _scan_window(self, a: int, b: int, n: int) -> Tuple[Weight, int]:
        """Scalar merge of ``n`` positions at absolute offsets ``a``, ``b``."""
        dist = self.dist
        count = self.count
        best = INF
        total = 0
        if not self._overflow:
            for d_s, d_t, c_s, c_t in zip(
                dist[a : a + n],
                dist[b : b + n],
                count[a : a + n],
                count[b : b + n],
            ):
                d = d_s + d_t
                if d < best:
                    best = d
                    total = c_s * c_t
                elif d == best:
                    total += c_s * c_t
        else:
            overflow = self._overflow
            for k in range(n):
                c_s = count[a + k]
                if c_s < 0:
                    c_s = overflow[a + k]
                c_t = count[b + k]
                if c_t < 0:
                    c_t = overflow[b + k]
                d = dist[a + k] + dist[b + k]
                if d < best:
                    best = d
                    total = c_s * c_t
                elif d == best:
                    total += c_s * c_t
        if total == 0:
            return INF, 0
        return best, total

    def _dist_view(self):
        """Zero-copy numpy view of the packed distance array (cached)."""
        view = self._np_dist
        if view is None:
            dtype = _np.int64 if self.dist_typecode == "q" else _np.float64
            view = _np.frombuffer(self.dist, dtype=dtype)
            self._np_dist = view
        return view

    def scan_batch(
        self,
        starts_a: Sequence[int],
        starts_b: Sequence[int],
        lengths: Sequence[int],
    ) -> List[Tuple[Weight, int]]:
        """Merge many label ranges at once; one result tuple per pair.

        Positions are *absolute* offsets into the packed arrays: pair
        ``k`` scans ``dist[starts_a[k] : starts_a[k] + lengths[k]]``
        against the same-length window at ``starts_b[k]``.  With numpy
        available the distance sums and per-pair minima run as one
        segmented C kernel over zero-copy views of the arena buffers;
        exact (arbitrary-precision) count products are then accumulated
        only at the minimising positions, which keeps counts bit-exact
        including the overflow lane.  Without numpy this degrades to the
        scalar :meth:`scan` loop per pair.
        """
        if _np is None or len(lengths) < _MIN_VECTOR_BATCH:
            scan = self._scan_window
            return [
                scan(a, b, n)
                for a, b, n in zip(starts_a, starts_b, lengths)
            ]

        lens = _np.maximum(_np.asarray(lengths, dtype=_np.int64), 0)
        num_pairs = lens.size
        results: List[Tuple[Weight, int]] = [(INF, 0)] * num_pairs
        nonzero = _np.flatnonzero(lens)
        if nonzero.size == 0:
            return results
        sa = _np.asarray(starts_a, dtype=_np.int64)
        sb = _np.asarray(starts_b, dtype=_np.int64)
        if nonzero.size != num_pairs:
            lens, sa, sb = lens[nonzero], sa[nonzero], sb[nonzero]
            slot_of = nonzero.tolist()
        else:
            slot_of = None

        # Flatten the ragged windows: element i belongs to pair seg[i]
        # and sits offs[i] positions into that pair's window.
        ends = _np.cumsum(lens)
        seg = _np.repeat(_np.arange(lens.size), lens)
        seg_start = ends - lens
        offs = _np.arange(int(ends[-1]), dtype=_np.int64) - seg_start[seg]
        pos_a = sa[seg] + offs
        pos_b = sb[seg] + offs
        dist = self._dist_view()
        summed = dist[pos_a] + dist[pos_b]
        best = _np.minimum.reduceat(summed, seg_start)
        min_flat = _np.flatnonzero(summed == best[seg])

        # Exact count products only where the minimum is attained; the
        # array module hands back Python ints, so products never clip.
        count = self.count
        overflow = self._overflow
        totals = [0] * lens.size
        seg_min = seg[min_flat].tolist()
        pa_min = pos_a[min_flat].tolist()
        pb_min = pos_b[min_flat].tolist()
        if overflow:
            for k, ia, ib in zip(seg_min, pa_min, pb_min):
                c_s = count[ia]
                if c_s < 0:
                    c_s = overflow[ia]
                c_t = count[ib]
                if c_t < 0:
                    c_t = overflow[ib]
                totals[k] += c_s * c_t
        else:
            for k, ia, ib in zip(seg_min, pa_min, pb_min):
                totals[k] += count[ia] * count[ib]

        # An unreachable side always carries count 0, so total == 0 is
        # exactly the disconnected case (same rule as the scalar scan).
        best_list = best.tolist()
        if slot_of is None:
            for k, total in enumerate(totals):
                if total:
                    results[k] = (best_list[k], total)
        else:
            for k, total in enumerate(totals):
                if total:
                    results[slot_of[k]] = (best_list[k], total)
        return results

    # ------------------------------------------------------------------
    # shape and accounting
    # ------------------------------------------------------------------
    def label_length(self, v: Vertex) -> int:
        """Number of label entries stored for vertex ``v``."""
        dense = self.vertex_ids[v]
        return self.offsets[dense + 1] - self.offsets[dense]

    def entry(self, v: Vertex, position: int) -> Tuple[Weight, int]:
        """The decoded ``(distance, count)`` label of ``v`` at ``position``."""
        at = self.offsets[self.vertex_ids[v]] + position
        c = self.count[at]
        if c < 0:
            c = self._overflow[at]
        return self.decode_dist(self.dist[at]), c

    @property
    def is_mapped(self) -> bool:
        """Whether the buffers are zero-copy views over a mapped region."""
        return self.region is not None

    @property
    def num_vertices(self) -> int:
        """Number of vertices with (possibly empty) label ranges."""
        return len(self.vertices)

    @property
    def total_entries(self) -> int:
        """Total label entries across all vertices."""
        return len(self.dist)

    def max_label_length(self) -> int:
        """The longest label range (equals the tree height ``h``)."""
        offsets = self.offsets
        return max(
            (offsets[i + 1] - offsets[i] for i in range(len(self.vertices))),
            default=0,
        )

    def nbytes(self) -> int:
        """Actual packed bytes: offset table + arrays + overflow lane.

        Overflow entries are modelled at 64 bytes each (list slots plus
        an arbitrary-precision integer object).
        """
        return (
            self.offsets.itemsize * len(self.offsets)
            + self.dist.itemsize * len(self.dist)
            + self.count.itemsize * len(self.count)
            + 64 * len(self.overflow_positions)
        )

    def size_bytes(self, bytes_per_element: int = 4) -> int:
        """Index size under the paper's 32-bit-per-element model."""
        return 2 * bytes_per_element * self.total_entries

    @staticmethod
    def dict_layout_bytes(num_vertices: int, total_entries: int) -> int:
        """Modelled bytes of the dict-of-lists :class:`LabelStore` layout.

        Per vertex: two dict entries (~104 B each) and two list headers
        (~56 B each); per label entry: two 8-byte list slots and two
        ~28-byte boxed integers.  A deliberate back-of-envelope model —
        it exists so the ``labels.dict_bytes`` gauge can be compared
        against ``labels.arena_bytes`` on equal terms.
        """
        return num_vertices * 2 * (104 + 56) + total_entries * 2 * (8 + 28)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelArena):
            return NotImplemented
        return (
            self.vertices == other.vertices
            and memoryview(self.offsets) == memoryview(other.offsets)
            and self.dist_typecode == other.dist_typecode
            and memoryview(self.dist) == memoryview(other.dist)
            and memoryview(self.count) == memoryview(other.count)
            and self.overflow_positions == other.overflow_positions
            and self.overflow_counts == other.overflow_counts
        )

    def __repr__(self) -> str:
        return (
            f"LabelArena(n={self.num_vertices}, "
            f"entries={self.total_entries}, "
            f"dist={self.dist_typecode!r}, "
            f"overflow={len(self.overflow_positions)})"
        )


def record_layout_gauges(rec, arena: LabelArena) -> None:
    """Record arena vs. dict layout sizes as ``obs`` gauges."""
    rec.gauge("labels.arena_bytes", arena.nbytes())
    rec.gauge(
        "labels.dict_bytes",
        LabelArena.dict_layout_bytes(arena.num_vertices, arena.total_entries),
    )
    rec.gauge("labels.overflow_entries", len(arena.overflow_positions))

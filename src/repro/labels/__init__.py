"""Hub-label storage shared by the TL, CTL, and CTLS indexes.

Two layouts of the same data: the mutable dict-of-lists
:class:`LabelStore` used while construction appends entries (and kept
as the cross-tested reference), and the packed dense-id
:class:`LabelArena` that the query engines scan.
"""

from repro.labels.arena import LabelArena
from repro.labels.store import LabelStore

__all__ = ["LabelArena", "LabelStore"]

"""Hub-label storage shared by the TL, CTL, and CTLS indexes."""

from repro.labels.store import LabelStore

__all__ = ["LabelStore"]

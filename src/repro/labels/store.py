"""Per-vertex hub-label storage.

Every vertex stores two parallel arrays over its ancestor vertices
``A(v)`` in the canonical order defined by :class:`repro.tree.CutTree`:
convex shortest path *distances* and *counts*.  Because all vertices lay
their arrays out in the same global block order, the arrays of two
vertices agree position-by-position on the common prefix computed by
``CutTree.common_prefix_length`` — queries are plain array scans.

Counts are Python integers (exact, arbitrary precision).  Distances are
whatever weight type the graph uses (int for road networks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.types import Vertex, Weight


class LabelStore:
    """Aligned distance/count label arrays for every vertex."""

    __slots__ = ("dist", "count")

    def __init__(self, vertices: Iterable[Vertex]) -> None:
        vertex_list = list(vertices)
        self.dist: Dict[Vertex, List[Weight]] = {v: [] for v in vertex_list}
        self.count: Dict[Vertex, List[int]] = {v: [] for v in vertex_list}

    def append(self, v: Vertex, distance: Weight, count: int) -> None:
        """Append one label entry to vertex ``v``'s arrays."""
        self.dist[v].append(distance)
        self.count[v].append(count)

    def entry(self, v: Vertex, position: int) -> Tuple[Weight, int]:
        """The ``(distance, count)`` label of ``v`` at ``position``."""
        return self.dist[v][position], self.count[v][position]

    def label_length(self, v: Vertex) -> int:
        """Number of label entries stored for ``v``."""
        return len(self.dist[v])

    @property
    def num_vertices(self) -> int:
        """Number of vertices with (possibly empty) label arrays."""
        return len(self.dist)

    @property
    def total_entries(self) -> int:
        """Total label entries across all vertices."""
        return sum(len(entries) for entries in self.dist.values())

    def size_bytes(self, bytes_per_element: int = 4) -> int:
        """Index size under the paper's accounting model.

        The paper encodes each label element (one distance or one count)
        as a 32-bit integer; an entry therefore costs
        ``2 * bytes_per_element``.
        """
        return 2 * bytes_per_element * self.total_entries

    def max_label_length(self) -> int:
        """The longest label array (equals the tree height ``h``)."""
        return max((len(entries) for entries in self.dist.values()), default=0)

    def seal(self, order: Iterable[Vertex] = None):
        """Pack this store into a query-time :class:`LabelArena`.

        ``order`` fixes the dense-id assignment (ascending vertex id by
        default).  The store itself is left untouched — it remains the
        mutable reference layout for construction and dynamic repair.
        """
        from repro.labels.arena import LabelArena

        return LabelArena.from_store(self, order=order)

"""The paper's contribution: CTL-Index and CTLS-Index (+ extensions)."""

from repro.core.base import BuildStats, IndexStats, SPCIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import STRATEGIES, STRATEGY_LABELS, CTLSIndex
from repro.core.dynamic import DynamicCTL, DynamicCTLS
from repro.core.parallel import build_ctls_parallel
from repro.core.serialize import load_index, save_index
from repro.core.verify import VerificationReport, verify_index

__all__ = [
    "BuildStats",
    "CTLIndex",
    "CTLSIndex",
    "DynamicCTL",
    "DynamicCTLS",
    "IndexStats",
    "SPCIndex",
    "STRATEGIES",
    "STRATEGY_LABELS",
    "VerificationReport",
    "build_ctls_parallel",
    "load_index",
    "save_index",
    "verify_index",
]

"""Common interface of all shortest-path-counting indexes.

``TLIndex``, ``CTLIndex`` and ``CTLSIndex`` all answer
``query(s, t) -> QueryResult(distance, count)`` and expose the same
statistics surface, so benchmarks and applications treat them
interchangeably.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

from repro.types import QueryResult, QueryStats, Vertex


@dataclass
class BuildStats:
    """Instrumentation collected while constructing an index.

    ``peak_memory_estimate`` is a model-based estimate (bytes) covering
    label entries plus the largest working graph, mirroring the paper's
    Fig. 12 without depending on allocator internals.
    """

    seconds: float = 0.0
    ssspc_runs: int = 0
    shortcuts_added: int = 0
    shortcuts_pruned: int = 0
    peak_edges: int = 0
    peak_memory_estimate: int = 0
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class IndexStats:
    """Static shape of a built index (paper's h, w, size accounting)."""

    num_vertices: int
    num_edges: int
    tree_nodes: int
    height: int
    width: int
    total_label_entries: int
    size_bytes: int


class SPCIndex(abc.ABC):
    """Abstract base for shortest path counting indexes.

    Subclasses are built with a ``build(graph, ...)`` classmethod and
    answer exact ``(sd, spc)`` queries for any vertex pair of the
    indexed graph.
    """

    #: Human-readable algorithm name used in benchmark reports.
    name: str = "abstract"

    @abc.abstractmethod
    def query(self, source: Vertex, target: Vertex) -> QueryResult:
        """Answer ``Q(s, t)``: shortest distance and path count."""

    @abc.abstractmethod
    def query_with_stats(self, source: Vertex, target: Vertex) -> QueryStats:
        """Like :meth:`query`, also reporting visited label entries."""

    @abc.abstractmethod
    def stats(self) -> IndexStats:
        """Static index statistics (sizes use the 32-bit entry model)."""

    def query_many(self, pairs):
        """Answer a batch of queries; returns a list of results.

        The default implementation loops over :meth:`query`; subclasses
        may override with a batched fast path.
        """
        query = self.query
        return [query(s, t) for s, t in pairs]

    def distance(self, source: Vertex, target: Vertex):
        """Shortest distance ``sd(s, t)`` (``INF`` when disconnected)."""
        return self.query(source, target).distance

    def count(self, source: Vertex, target: Vertex) -> int:
        """Shortest path count ``spc(s, t)`` (0 when disconnected)."""
        return self.query(source, target).count

    def size_bytes(self) -> int:
        """Index size in bytes under the paper's accounting model."""
        return self.stats().size_bytes

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"{type(self).__name__}(n={stats.num_vertices}, "
            f"h={stats.height}, w={stats.width}, "
            f"entries={stats.total_label_entries})"
        )

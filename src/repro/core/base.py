"""Common interface of all shortest-path-counting indexes.

``TLIndex``, ``CTLIndex`` and ``CTLSIndex`` all answer
``query(s, t) -> QueryResult(distance, count)`` and expose the same
statistics surface, so benchmarks and applications treat them
interchangeably.

Query instrumentation lives here: when :mod:`repro.obs` is configured,
every query records its latency, visited label entries, and LCA depth
into the active recorder.  When observability is off (the default) the
only extra work per query is one module-attribute check.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import repro.obs as obs
from repro.types import QueryResult, QueryStats, Vertex

#: The conventional ``Q(v, v)`` answer, shared so batch loops can avoid
#: allocating one :class:`QueryResult` per same-vertex pair.
SELF_QUERY_RESULT = QueryResult(0, 1)


@dataclass
class BuildStats:
    """Instrumentation collected while constructing an index.

    Populated from the build-scoped :class:`~repro.obs.Recorder` via
    :meth:`from_recorder` — construction code increments recorder
    counters (``build.ssspc_runs``, ``build.shortcuts_added``, ...)
    instead of threading this object through every helper.

    ``peak_memory_estimate`` is a model-based estimate (bytes) covering
    label storage plus the largest working graph, mirroring the paper's
    Fig. 12 without depending on allocator internals.
    """

    seconds: float = 0.0
    ssspc_runs: int = 0
    shortcuts_added: int = 0
    shortcuts_pruned: int = 0
    peak_edges: int = 0
    peak_memory_estimate: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_recorder(
        cls,
        rec,
        *,
        seconds: float,
        total_label_entries: int = 0,
        arena=None,
    ) -> "BuildStats":
        """Read the ``build.*`` metrics of a build-scoped recorder.

        ``peak_memory_estimate`` models the packed arena layout when
        ``arena`` (a :class:`repro.labels.LabelArena`) is given — its
        real offset-table and array itemsize bytes — plus 24 bytes per
        edge of the largest working graph (the ``build.peak_edges``
        gauge).  Without an arena it falls back to the flat 8-bytes-per-
        entry label model.
        """
        peak_edges = int(rec.gauge_value("build.peak_edges"))
        if arena is not None:
            label_bytes = arena.nbytes()
        else:
            label_bytes = 8 * total_label_entries
        return cls(
            seconds=seconds,
            ssspc_runs=int(rec.counter_value("build.ssspc_runs")),
            shortcuts_added=int(rec.counter_value("build.shortcuts_added")),
            shortcuts_pruned=int(rec.counter_value("build.shortcuts_pruned")),
            peak_edges=peak_edges,
            peak_memory_estimate=label_bytes + 24 * peak_edges,
        )


@dataclass(frozen=True)
class IndexStats:
    """Static shape of a built index (paper's h, w, size accounting)."""

    num_vertices: int
    num_edges: int
    tree_nodes: int
    height: int
    width: int
    total_label_entries: int
    size_bytes: int


class SPCIndex(abc.ABC):
    """Abstract base for shortest path counting indexes.

    Subclasses are built with a ``build(graph, ...)`` classmethod and
    implement :meth:`_query_scan`; the base class turns it into the
    public :meth:`query`/:meth:`query_with_stats` pair and records
    observability metrics when :mod:`repro.obs` is configured.
    """

    #: Human-readable algorithm name used in benchmark reports.
    name: str = "abstract"

    @abc.abstractmethod
    def _query_scan(
        self, source: Vertex, target: Vertex
    ) -> Tuple[QueryResult, int]:
        """Answer ``Q(s, t)``; returns ``(result, visited_labels)``."""

    @abc.abstractmethod
    def stats(self) -> IndexStats:
        """Static index statistics (sizes use the 32-bit entry model)."""

    def query(self, source: Vertex, target: Vertex) -> QueryResult:
        """Answer ``Q(s, t)``: shortest distance and path count."""
        if not obs.ENABLED:
            return self._query_scan(source, target)[0]
        started = time.perf_counter()
        result, visited = self._query_scan(source, target)
        self._record_query(
            time.perf_counter() - started, visited, source, target
        )
        return result

    def query_with_stats(self, source: Vertex, target: Vertex) -> QueryStats:
        """Like :meth:`query`, also reporting visited label entries."""
        if not obs.ENABLED:
            result, visited = self._query_scan(source, target)
            return QueryStats(result, visited)
        started = time.perf_counter()
        result, visited = self._query_scan(source, target)
        self._record_query(
            time.perf_counter() - started, visited, source, target
        )
        return QueryStats(result, visited)

    def _lca_depth(self, source: Vertex, target: Vertex) -> Optional[int]:
        """Tree depth of the queried pair's LCA node, if the index has one."""
        return None

    def _record_query(
        self, elapsed: float, visited: int, source: Vertex, target: Vertex
    ) -> None:
        rec = obs.recorder()
        rec.incr("query.count")
        rec.observe("query.latency_seconds", elapsed)
        rec.observe("query.visited_labels", visited)
        depth = self._lca_depth(source, target)
        if depth is not None:
            rec.observe("query.lca_depth", depth)

    def query_batch(self, pairs):
        """Answer a batch of ``Q(s, t)`` queries; returns a result list.

        The batched fast paths of the concrete indexes resolve vertex
        ids and LCA ranges once per pair inside a single tight loop over
        the packed label arena, which amortises the per-call overhead of
        :meth:`query`.  This default implementation just loops — it is
        the reference the fast paths are tested against.
        """
        query = self.query
        return [query(s, t) for s, t in pairs]

    def query_many(self, pairs):
        """Alias of :meth:`query_batch` (kept for API compatibility)."""
        return self.query_batch(pairs)

    def _record_batch(self, elapsed: float, count: int, visited: int) -> None:
        """Record one batch's observability metrics (obs is enabled)."""
        rec = obs.recorder()
        rec.incr("query.count", count)
        rec.incr("query.batch.count")
        rec.observe("query.batch.size", count)
        rec.observe("query.batch.seconds", elapsed)
        if count:
            rec.observe("query.visited_labels", visited / count)

    def distance(self, source: Vertex, target: Vertex):
        """Shortest distance ``sd(s, t)`` (``INF`` when disconnected)."""
        return self.query(source, target).distance

    def count(self, source: Vertex, target: Vertex) -> int:
        """Shortest path count ``spc(s, t)`` (0 when disconnected)."""
        return self.query(source, target).count

    def size_bytes(self) -> int:
        """Index size in bytes under the paper's accounting model."""
        return self.stats().size_bytes

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"{type(self).__name__}(n={stats.num_vertices}, "
            f"h={stats.height}, w={stats.width}, "
            f"entries={stats.total_label_entries})"
        )

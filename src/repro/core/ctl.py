"""CTL-Index: hub labels on a balanced cut tree (paper §III).

Construction (Algorithm 2, ``CTL-Construct``) recursively partitions the
graph with BalancedCut.  Each cut becomes a tree node; for each cut
vertex ``c`` (highest rank — smallest id — first) an SSSPC run over the
*remaining* subgraph stores convex shortest distance/count labels from
every subtree vertex to ``c``, after which ``c`` is removed.  Removing
processed cut vertices is what realises convex-path semantics: a label
to ``c`` never counts a path through a higher-ranked vertex, so during
queries every shortest path is counted exactly once — at its
highest-ranked hub.

Query (Algorithm 1, ``CTL-Query``) scans the aligned label prefix of the
two vertices' common ancestors: ``O(h)`` label visits.
"""

from __future__ import annotations

import random
import time
from typing import Optional

import repro.obs as obs
from repro.core.base import BuildStats, IndexStats, SPCIndex
from repro.core.labeling import compute_node_labels
from repro.exceptions import IndexBuildError, IndexQueryError
from repro.graph.graph import Graph
from repro.labels.store import LabelStore
from repro.partition.balanced_cut import balanced_cut
from repro.tree.cut_tree import CutTree
from repro.types import INF, QueryResult, Vertex


class CTLIndex(SPCIndex):
    """Cut-tree hub-labeling index for shortest path counting."""

    name = "CTL"

    def __init__(
        self, tree: CutTree, labels: LabelStore, build_stats: BuildStats,
        num_vertices: int, num_edges: int,
    ) -> None:
        self.tree = tree
        self.labels = labels
        self.build_stats = build_stats
        self._num_vertices = num_vertices
        self._num_edges = num_edges

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        beta: float = 0.2,
        leaf_size: int = 4,
        seed: int = 0,
        engine: str = "csr",
        rng: Optional[random.Random] = None,
    ) -> "CTLIndex":
        """Run CTL-Construct (Algorithm 2) on ``graph``.

        Args:
            graph: road network to index (not modified).
            beta: BalancedCut balance factor (paper default 0.2).
            leaf_size: subgraphs of at most this size become leaf nodes.
            seed: determinism seed (ignored when ``rng`` is given).
            engine: ``"csr"`` (packed-array SSSPC, default) or
                ``"dict"`` (reference implementation); identical output.
        """
        if engine not in ("csr", "dict"):
            raise IndexBuildError(f"unknown engine {engine!r}")
        started = time.perf_counter()
        rng = rng or random.Random(seed)
        tree = CutTree()
        labels = LabelStore(graph.vertices())
        rec = obs.build_scope()

        with rec.span("ctl.build", n=graph.num_vertices, m=graph.num_edges):
            # Explicit stack: tree depth can exceed Python's recursion
            # limit.
            stack = [(graph.copy(), -1, 0)]
            while stack:
                subgraph, parent, depth = stack.pop()
                if subgraph.num_vertices == 0:
                    continue
                rec.gauge_max("build.peak_edges", subgraph.num_edges)
                with rec.span(
                    "ctl.build.node", depth=depth, n=subgraph.num_vertices
                ) as node_span:
                    part = balanced_cut(
                        subgraph, beta, leaf_size=leaf_size, rng=rng, rec=rec
                    )
                    node_id = tree.add_node(part.cut, parent)
                    node_span.set(node=node_id, cut_size=len(part.cut))

                    # Label computation (Algorithm 2 lines 2-4): highest
                    # rank (smallest id) first, excluding each processed
                    # cut vertex.
                    with rec.span(
                        "ctl.build.labels", node=node_id, cut=len(part.cut)
                    ):
                        compute_node_labels(
                            subgraph, part.cut, labels, rec, engine=engine
                        )

                    for side in (part.left, part.right):
                        if side:
                            stack.append(
                                (subgraph.induced_subgraph(side), node_id,
                                 depth + 1)
                            )

            tree.finalize()
        stats = BuildStats.from_recorder(
            rec,
            seconds=time.perf_counter() - started,
            total_label_entries=labels.total_entries,
        )
        return cls(tree, labels, stats, graph.num_vertices, graph.num_edges)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca_depth(self, source: Vertex, target: Vertex):
        try:
            return self.tree.lca_node(source, target).depth
        except KeyError:
            return None

    def _query_scan(self, source: Vertex, target: Vertex):
        """CTL-Query (Algorithm 1): scan common-ancestor labels."""
        if source == target:
            if source not in self.labels.dist:
                raise IndexQueryError(f"vertex {source} is not indexed")
            return QueryResult(0, 1), 0
        try:
            prefix = self.tree.common_prefix_length(source, target)
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        labels = self.labels
        best = INF
        total = 0
        for d_s, d_t, c_s, c_t in zip(
            labels.dist[source][:prefix],
            labels.dist[target][:prefix],
            labels.count[source][:prefix],
            labels.count[target][:prefix],
        ):
            d = d_s + d_t
            if d < best:
                best = d
                total = c_s * c_t
            elif d == best:
                total += c_s * c_t
        if total == 0:
            return QueryResult(INF, 0), prefix
        return QueryResult(best, total), prefix

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Static index shape (32-bit label-entry size model)."""
        return IndexStats(
            num_vertices=self._num_vertices,
            num_edges=self._num_edges,
            tree_nodes=self.tree.num_nodes,
            height=self.tree.height,
            width=self.tree.width,
            total_label_entries=self.labels.total_entries,
            size_bytes=self.labels.size_bytes(),
        )

"""CTL-Index: hub labels on a balanced cut tree (paper §III).

Construction (Algorithm 2, ``CTL-Construct``) recursively partitions the
graph with BalancedCut.  Each cut becomes a tree node; for each cut
vertex ``c`` (highest rank — smallest id — first) an SSSPC run over the
*remaining* subgraph stores convex shortest distance/count labels from
every subtree vertex to ``c``, after which ``c`` is removed.  Removing
processed cut vertices is what realises convex-path semantics: a label
to ``c`` never counts a path through a higher-ranked vertex, so during
queries every shortest path is counted exactly once — at its
highest-ranked hub.

Query (Algorithm 1, ``CTL-Query``) scans the aligned label prefix of the
two vertices' common ancestors: ``O(h)`` label visits.  Two query
engines share the semantics: ``"arena"`` (default) resolves the
endpoints to dense ids and scans the packed
:class:`~repro.labels.LabelArena`; ``"dict"`` is the original
dict-of-lists scan, kept as the cross-tested reference — the same
pairing as the construction-side ``engine="csr"``/``"dict"`` split.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Union

import numpy as np

import repro.obs as obs
from repro.core.base import (
    SELF_QUERY_RESULT,
    BuildStats,
    IndexStats,
    SPCIndex,
)
from repro.core.labeling import compute_node_labels
from repro.exceptions import IndexBuildError, IndexQueryError
from repro.graph.graph import Graph
from repro.labels.arena import LabelArena, record_layout_gauges
from repro.labels.store import LabelStore
from repro.partition.balanced_cut import balanced_cut
from repro.tree.cut_tree import CutTree
from repro.types import INF, QueryResult, Vertex

QUERY_ENGINES = ("arena", "dict")


class CTLIndex(SPCIndex):
    """Cut-tree hub-labeling index for shortest path counting."""

    name = "CTL"

    def __init__(
        self,
        tree: CutTree,
        labels: Union[LabelStore, LabelArena],
        build_stats: BuildStats,
        num_vertices: int,
        num_edges: int,
    ) -> None:
        self.tree = tree
        if isinstance(labels, LabelArena):
            self._labels: Optional[LabelStore] = None
            self.arena = labels
        else:
            self._labels = labels
            self.arena = labels.seal()
        self.build_stats = build_stats
        self._num_vertices = num_vertices
        self._num_edges = num_edges
        #: Query implementation: ``"arena"`` (packed, default) or
        #: ``"dict"`` (reference); identical answers.
        self.query_engine = "arena"
        self._bind_dense()

    def _bind_dense(self) -> None:
        """Precompute dense-id lookup arrays for the arena query engine."""
        tree = self.tree
        node_of_vertex = tree.node_of_vertex
        self._node_of_dense: List[int] = [
            node_of_vertex[v] for v in self.arena.vertices
        ]
        # |A(v)| equals the arena's per-vertex entry count; offset
        # deltas beat per-vertex tree lookups on the load path.
        self._label_len_dense: List[int] = np.diff(
            np.asarray(self.arena.offsets, dtype=np.int64)
        ).tolist()
        self._block_ends: List[int] = tree.block_ends

    @property
    def labels(self) -> LabelStore:
        """Dict-of-lists reference store (rebuilt on demand after load)."""
        if self._labels is None:
            self._labels = self.arena.to_store()
        return self._labels

    def refresh_arena(self) -> None:
        """Re-pack the arena after in-place label mutation (dynamic repair)."""
        self.arena = self.labels.seal()
        self._bind_dense()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        beta: float = 0.2,
        leaf_size: int = 4,
        seed: int = 0,
        engine: str = "csr",
        rng: Optional[random.Random] = None,
    ) -> "CTLIndex":
        """Run CTL-Construct (Algorithm 2) on ``graph``.

        Args:
            graph: road network to index (not modified).
            beta: BalancedCut balance factor (paper default 0.2).
            leaf_size: subgraphs of at most this size become leaf nodes.
            seed: determinism seed (ignored when ``rng`` is given).
            engine: ``"csr"`` (packed-array SSSPC, default) or
                ``"dict"`` (reference implementation); identical output.
        """
        if engine not in ("csr", "dict"):
            raise IndexBuildError(f"unknown engine {engine!r}")
        started = time.perf_counter()
        rng = rng or random.Random(seed)
        tree = CutTree()
        labels = LabelStore(graph.vertices())
        rec = obs.build_scope()

        with rec.span("ctl.build", n=graph.num_vertices, m=graph.num_edges):
            # Explicit stack: tree depth can exceed Python's recursion
            # limit.
            stack = [(graph.copy(), -1, 0)]
            while stack:
                subgraph, parent, depth = stack.pop()
                if subgraph.num_vertices == 0:
                    continue
                rec.gauge_max("build.peak_edges", subgraph.num_edges)
                with rec.span(
                    "ctl.build.node", depth=depth, n=subgraph.num_vertices
                ) as node_span:
                    part = balanced_cut(
                        subgraph, beta, leaf_size=leaf_size, rng=rng, rec=rec
                    )
                    node_id = tree.add_node(part.cut, parent)
                    node_span.set(node=node_id, cut_size=len(part.cut))

                    # Label computation (Algorithm 2 lines 2-4): highest
                    # rank (smallest id) first, excluding each processed
                    # cut vertex.
                    with rec.span(
                        "ctl.build.labels", node=node_id, cut=len(part.cut)
                    ):
                        compute_node_labels(
                            subgraph, part.cut, labels, rec, engine=engine
                        )

                    for side in (part.left, part.right):
                        if side:
                            stack.append(
                                (subgraph.induced_subgraph(side), node_id,
                                 depth + 1)
                            )

            tree.finalize()
        index = cls(
            tree, labels, BuildStats(), graph.num_vertices, graph.num_edges
        )
        record_layout_gauges(rec, index.arena)
        index.build_stats = BuildStats.from_recorder(
            rec, seconds=time.perf_counter() - started, arena=index.arena
        )
        return index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca_depth(self, source: Vertex, target: Vertex):
        try:
            return self.tree.lca_node(source, target).depth
        except KeyError:
            return None

    def _dense_prefix(self, source_dense: int, target_dense: int) -> int:
        """Common-prefix length of two dense ids (array lookups only)."""
        node_of = self._node_of_dense
        nu = node_of[source_dense]
        nv = node_of[target_dense]
        lens = self._label_len_dense
        if nu == nv:
            lu = lens[source_dense]
            lv = lens[target_dense]
            return lu if lu < lv else lv
        lca = self.tree.lca_index(nu, nv)
        if lca == nu:
            return lens[source_dense]
        if lca == nv:
            return lens[target_dense]
        return self._block_ends[lca]

    def _query_scan(self, source: Vertex, target: Vertex):
        """CTL-Query (Algorithm 1): scan common-ancestor labels."""
        if self.query_engine == "dict":
            return self._query_scan_dict(source, target)
        ids = self.arena.vertex_ids
        try:
            source_dense = ids[source]
            target_dense = ids[target]
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        if source == target:
            return SELF_QUERY_RESULT, 0
        prefix = self._dense_prefix(source_dense, target_dense)
        distance, count = self.arena.scan(source_dense, target_dense, 0, prefix)
        return QueryResult(distance, count), prefix

    def _query_scan_dict(self, source: Vertex, target: Vertex):
        """Reference scan over the dict-of-lists :class:`LabelStore`."""
        if source == target:
            if source not in self.labels.dist:
                raise IndexQueryError(f"vertex {source} is not indexed")
            return QueryResult(0, 1), 0
        try:
            prefix = self.tree.common_prefix_length(source, target)
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        labels = self.labels
        best = INF
        total = 0
        for d_s, d_t, c_s, c_t in zip(
            labels.dist[source][:prefix],
            labels.dist[target][:prefix],
            labels.count[source][:prefix],
            labels.count[target][:prefix],
        ):
            d = d_s + d_t
            if d < best:
                best = d
                total = c_s * c_t
            elif d == best:
                total += c_s * c_t
        if total == 0:
            return QueryResult(INF, 0), prefix
        return QueryResult(best, total), prefix

    def query_batch(self, pairs):
        """CTL-Query over many pairs via one batched arena scan.

        Phase 1 resolves ids and LCA prefixes for every pair in a single
        tight loop; phase 2 hands all scan windows to
        :meth:`LabelArena.scan_batch`, which merges them in one
        vectorised pass when numpy is available.
        """
        if self.query_engine == "dict":
            return super().query_batch(pairs)
        enabled = obs.ENABLED
        started = time.perf_counter() if enabled else 0.0
        ids = self.arena.vertex_ids
        offsets = self.arena.offsets
        node_of = self._node_of_dense
        lens = self._label_len_dense
        block_ends = self._block_ends
        lca = self.tree.lca_table.lca
        results: List[Optional[QueryResult]] = []
        append = results.append
        starts_a: List[int] = []
        starts_b: List[int] = []
        lengths: List[int] = []
        slots: List[int] = []
        visited = 0
        for s, t in pairs:
            try:
                a = ids[s]
                b = ids[t]
            except KeyError as exc:
                raise IndexQueryError(
                    f"vertex {exc.args[0]} is not indexed"
                ) from exc
            if s == t:
                append(SELF_QUERY_RESULT)
                continue
            nu = node_of[a]
            nv = node_of[b]
            if nu == nv:
                lu = lens[a]
                lv = lens[b]
                prefix = lu if lu < lv else lv
            else:
                at = lca(nu, nv)
                if at == nu:
                    prefix = lens[a]
                elif at == nv:
                    prefix = lens[b]
                else:
                    prefix = block_ends[at]
            starts_a.append(offsets[a])
            starts_b.append(offsets[b])
            lengths.append(prefix)
            slots.append(len(results))
            visited += prefix
            append(None)
        for slot, scanned in zip(
            slots, self.arena.scan_batch(starts_a, starts_b, lengths)
        ):
            results[slot] = QueryResult(*scanned)
        if enabled:
            self._record_batch(
                time.perf_counter() - started, len(results), visited
            )
        return results

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Static index shape (32-bit label-entry size model)."""
        return IndexStats(
            num_vertices=self._num_vertices,
            num_edges=self._num_edges,
            tree_nodes=self.tree.num_nodes,
            height=self.tree.height,
            width=self.tree.width,
            total_label_entries=self.arena.total_entries,
            size_bytes=self.arena.size_bytes(),
        )

"""SPC-Graph construction for CTLS-Index (paper §IV-B and §IV-C).

Given the current node's graph ``PG`` (itself an SPC-Graph of the
original network), its cut ``C`` and one side ``L``, these builders
produce a count-preserved graph over ``L`` — the graph the recursion
partitions next.  Three strategies mirror the paper's construction
variants:

* ``basic`` (Algorithm 4, plain CTLS-Construct): search the boundary
  graph of ``L`` from every border vertex and add all Outer-Only
  shortcuts.
* ``pruned`` (CTLS+-Construct): same searches, but a shortcut is kept
  only when its distance equals the through-cut distance
  ``sd_G(u, v, C)`` obtained from the labels just computed (Lemma 4.4).
* ``cutsearch`` (CTLS*-Construct, Algorithm 5): search only from the
  (few) cut vertices in the boundary graph of ``L ∪ C``, then eliminate
  the cut vertices one by one, connecting neighbour pairs whose two-hop
  distance matches the through-cut threshold.

Outer-Only semantics — interiors of restored paths must avoid the side
being preserved — is enforced by running SSSPC with the border/cut set
as *terminal* vertices (reachable, never traversed).

Instrumentation (``build.ssspc_runs``, ``build.shortcuts_added``,
``build.shortcuts_pruned``) goes through the build-scoped
:mod:`repro.obs` recorder passed as ``rec``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, Iterable, List, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.spc_graph import add_shortcut
from repro.graph.subgraph import boundary_graph
from repro.search.fast import ssspc_csr
from repro.types import INF, Vertex, Weight

#: ``(u, v) -> sd_G(u, v, C)``: shortest distance through the cut.
ThroughCutDistance = Callable[[Vertex, Vertex], Weight]


class BlockOutDist:
    """Through-cut distances ``sd_G(u, v, C)`` from node label blocks.

    ``blocks[v]`` holds the strong convex distances from ``v`` to the
    current node's cut vertices in ascending-id order (truncated at the
    vertex's own position for cut vertices).  The through-cut distance
    of a pair is the minimum label sum over the shared prefix — Eq. (1)
    restricted to the cut, as in Algorithm 5 lines 2-3 and 11-13.
    """

    def __init__(self, blocks: Dict[Vertex, List[Weight]]) -> None:
        self._blocks = blocks
        self._cache: Dict[Tuple[Vertex, Vertex], Weight] = {}

    def __call__(self, u: Vertex, v: Vertex) -> Weight:
        if u > v:
            u, v = v, u
        key = (u, v)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        du = self._blocks[u]
        dv = self._blocks[v]
        best = INF
        for a, b in zip(du, dv):
            d = a + b
            if d < best:
                best = d
        self._cache[key] = best
        return best


def _border_of(pg: Graph, side_set: set) -> List[Vertex]:
    """Vertices of ``side_set`` with an edge leaving it, ascending."""
    return sorted(
        v
        for v in side_set
        if any(u not in side_set for u in pg.adj(v))
    )


def build_spc_graph_basic(
    pg: Graph,
    side: Iterable[Vertex],
    rec,
    *,
    through_cut: ThroughCutDistance = None,
    prune: bool = False,
) -> Graph:
    """Algorithm 4: SPC-Graph of ``side`` by border-vertex searches.

    With ``prune=True`` (CTLS+), a shortcut ``(u, v)`` is added only
    when its Outer-Only distance equals ``through_cut(u, v)``; redundant
    shortcuts — dominated by shorter global routes — are dropped.
    """
    side_set = set(side)
    border = _border_of(pg, side_set)
    result = pg.induced_subgraph(side_set)
    if not border:
        return result
    bg = CSRGraph(boundary_graph(pg, side_set))
    border_set = set(border)

    for u in border:
        if u not in bg.vertex_ids:
            continue
        oo_dist, oo_cnt = ssspc_csr(bg, u, terminal=border_set)
        rec.incr("build.ssspc_runs")
        for v in border:
            if v <= u:
                continue
            d = oo_dist.get(v)
            if d is None:
                continue
            if prune and d != through_cut(u, v):
                rec.incr("build.shortcuts_pruned")
                continue
            add_shortcut(result, u, v, d, oo_cnt[v])
            rec.incr("build.shortcuts_added")
    return result


def build_spc_graph_cutsearch(
    pg: Graph,
    side: Iterable[Vertex],
    cut: Iterable[Vertex],
    through_cut: ThroughCutDistance,
    rec,
) -> Graph:
    """Algorithm 5: SPC-Graph of ``side`` by searching from cut vertices.

    Phase 1 restores Outer-Only shortest paths *between cut vertices*
    through the far side (boundary graph of ``side ∪ cut``), pruned by
    global shortest distances (labels make ``sd_G(u, v, C)`` exact for
    cut pairs).  Phase 2 eliminates the cut vertices from
    ``PG[side ∪ cut]``, contraction-style: removing ``c`` connects each
    neighbour pair whose two-hop distance matches the through-cut
    threshold.  What remains is a count-preserved graph over ``side``.
    """
    side_set = set(side)
    cut_list = sorted(cut)
    cut_set = set(cut_list)
    zone = side_set | cut_set

    # Working graph Z: the induced graph on side + cut.
    work = pg.induced_subgraph(zone)

    # Phase 1 (lines 4-9): cut-to-cut shortcuts through the far side.
    bg = CSRGraph(boundary_graph(pg, zone))
    for u in cut_list:
        if u not in bg.vertex_ids:
            continue
        oo_dist, oo_cnt = ssspc_csr(bg, u, terminal=cut_set)
        rec.incr("build.ssspc_runs")
        for v in cut_list:
            if v <= u:
                continue
            d = oo_dist.get(v)
            if d is None:
                continue
            if d != through_cut(u, v):
                rec.incr("build.shortcuts_pruned")
                continue
            add_shortcut(work, u, v, d, oo_cnt[v])
            rec.incr("build.shortcuts_added")

    # Phase 2 (lines 14-19): eliminate cut vertices, preserving counts
    # between the remaining neighbours.
    for c in cut_list:
        neighbours = sorted(work.adj(c).items())
        for (u, (du, cu)), (v, (dv, cv)) in combinations(neighbours, 2):
            d = du + dv
            if through_cut(u, v) != d:
                rec.incr("build.shortcuts_pruned")
                continue
            add_shortcut(work, u, v, d, cu * cv)
            rec.incr("build.shortcuts_added")
        work.remove_vertex(c)
    return work

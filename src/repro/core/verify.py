"""Post-build index verification.

Production deployments rebuild indexes on data refresh; a cheap
spot-check that the freshly built index agrees with an online counting
Dijkstra catches data races, truncated inputs, and (in a research
setting) algorithmic regressions.  Exhaustive checking is quadratic, so
:func:`verify_index` samples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.base import SPCIndex
from repro.graph.graph import Graph
from repro.search.pairwise import spc_query
from repro.types import Vertex


@dataclass
class VerificationReport:
    """Outcome of an index verification run."""

    checked_pairs: int
    mismatches: List[Tuple[Vertex, Vertex]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every checked pair agreed with the oracle."""
        return not self.mismatches


def verify_index(
    index: SPCIndex,
    graph: Graph,
    *,
    pairs: Optional[Sequence[Tuple[Vertex, Vertex]]] = None,
    num_samples: int = 200,
    seed: int = 0,
    fail_fast: bool = False,
) -> VerificationReport:
    """Compare ``index`` answers against an online SSSPC oracle.

    Checks explicit ``pairs`` if given, otherwise ``num_samples``
    seeded random pairs (plus a few self-queries).  With ``fail_fast``
    the scan stops at the first mismatch.
    """
    if pairs is None:
        vertices = sorted(graph.vertices())
        if not vertices:
            return VerificationReport(checked_pairs=0)
        rng = random.Random(seed)
        sampled = [
            (rng.choice(vertices), rng.choice(vertices))
            for _ in range(num_samples)
        ]
        sampled.extend((v, v) for v in vertices[:3])
        pairs = sampled

    report = VerificationReport(checked_pairs=0)
    for s, t in pairs:
        report.checked_pairs += 1
        got = index.query(s, t)
        want = spc_query(graph, s, t)
        if (got.distance, got.count) != (want.distance, want.count):
            report.mismatches.append((s, t))
            if fail_fast:
                break
    return report

"""Per-node label computation shared by CTL and CTLS construction.

Algorithm 2, lines 2-4: for each cut vertex ``c`` in descending rank
order (ascending id), run SSSPC over the node's graph with all
previously processed (higher-ranked) cut vertices excluded, and append
one ``(distance, count)`` entry to every still-present vertex.

Two engines produce byte-identical labels:

* ``"dict"`` — the reference, straight off the paper's pseudocode
  (dict-based :func:`~repro.search.dijkstra.ssspc` with an excluded
  set);
* ``"csr"`` — packs the node graph into a CSR snapshot once and runs
  the array-based SSSPC; noticeably faster in CPython, which is what
  keeps pure-Python construction viable at the benchmark scales.

Both also return the *label blocks* (each vertex's distances to this
node's cut), which CTLS construction feeds into the through-cut
pruning thresholds of Algorithm 5.

Instrumentation goes through the build-scoped :mod:`repro.obs`
recorder (``build.ssspc_runs``, ``build.label_entries``) instead of a
hand-threaded stats object.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.labels.store import LabelStore
from repro.search.dijkstra import ssspc
from repro.search.fast import ssspc_csr_arrays
from repro.types import INF, Vertex

ENGINES = ("csr", "dict")


def compute_node_labels(
    subgraph: Graph,
    cut: Sequence[Vertex],
    labels: LabelStore,
    rec,
    *,
    engine: str = "csr",
) -> Dict[Vertex, List]:
    """Append this node's label block to every subtree vertex.

    ``rec`` is an :class:`repro.obs.Recorder` (or the null recorder);
    SSSPC runs and label entries are counted on it.  Returns
    ``{vertex: [distances to cut vertices]}`` — truncated at a cut
    vertex's own position — for through-cut threshold computation.
    ``subgraph`` is not modified.
    """
    if engine == "csr":
        return _labels_csr(subgraph, cut, labels, rec)
    return _labels_dict(subgraph, cut, labels, rec)


def _labels_dict(
    subgraph: Graph,
    cut: Sequence[Vertex],
    labels: LabelStore,
    rec,
) -> Dict[Vertex, List]:
    order = sorted(subgraph.vertices())
    blocks: Dict[Vertex, List] = {v: [] for v in order}
    processed: set = set()
    for c in cut:
        dist, count = ssspc(subgraph, c, excluded=processed)
        rec.incr("build.ssspc_runs")
        rec.incr("build.label_entries", len(order) - len(processed))
        for u in order:
            if u in processed:
                continue
            d = dist.get(u, INF)
            labels.append(u, d, count.get(u, 0))
            blocks[u].append(d)
        processed.add(c)
    return blocks


def _labels_csr(
    subgraph: Graph,
    cut: Sequence[Vertex],
    labels: LabelStore,
    rec,
) -> Dict[Vertex, List]:
    csr = CSRGraph(subgraph)
    vertices = csr.vertices  # ascending original ids
    blocks: Dict[Vertex, List] = {v: [] for v in vertices}
    banned = [False] * csr.num_vertices
    label_dist = labels.dist
    label_count = labels.count
    remaining = csr.num_vertices
    for c in cut:
        dist, count = ssspc_csr_arrays(
            csr, csr.vertex_ids[c], banned=banned
        )
        rec.incr("build.ssspc_runs")
        rec.incr("build.label_entries", remaining)
        for idx, u in enumerate(vertices):
            if banned[idx]:
                continue
            d = dist[idx]
            if d is None:
                label_dist[u].append(INF)
                label_count[u].append(0)
                blocks[u].append(INF)
            else:
                label_dist[u].append(d)
                label_count[u].append(count[idx])
                blocks[u].append(d)
        banned[csr.vertex_ids[c]] = True
        remaining -= 1
    return blocks

"""Index serialization: save and load built indexes as JSON.

JSON (not pickle) keeps the on-disk format inspectable and safe to load
from untrusted sources.  Python's arbitrary-precision integers survive
the round trip, so exact path counts are preserved.  ``INF`` distances
(disconnected label entries) are encoded as ``null``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.baselines.tl import TLIndex
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.base import BuildStats
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import SerializationError
from repro.labels.store import LabelStore
from repro.tree.cut_tree import CutTree
from repro.tree.lca import LCATable
from repro.types import INF

PathLike = Union[str, Path]

_FORMAT = "repro-spc-index"
_VERSION = 1


def _encode_dist(values):
    return [None if d == INF else d for d in values]


def _decode_dist(values):
    return [INF if d is None else d for d in values]


def _tree_payload(tree: CutTree) -> dict:
    return {
        "nodes": [
            {"vertices": list(node.vertices), "parent": node.parent}
            for node in tree.nodes
        ]
    }


def _tree_from_payload(payload: dict) -> CutTree:
    tree = CutTree()
    for entry in payload["nodes"]:
        tree.add_node(entry["vertices"], entry["parent"])
    tree.finalize()
    return tree


def _labels_payload(labels: LabelStore) -> dict:
    return {
        "dist": {str(v): _encode_dist(d) for v, d in labels.dist.items()},
        "count": {str(v): c for v, c in labels.count.items()},
    }


def _labels_from_payload(payload: dict) -> LabelStore:
    vertices = [int(v) for v in payload["dist"]]
    labels = LabelStore(vertices)
    for v in vertices:
        labels.dist[v] = _decode_dist(payload["dist"][str(v)])
        labels.count[v] = list(payload["count"][str(v)])
    return labels


def save_index(index, path: PathLike) -> None:
    """Serialise a built index (CTL, CTLS, or TL) to a JSON file."""
    if isinstance(index, CTLSIndex):
        payload = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        payload = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        td = index.decomposition
        payload = {
            "type": "TL",
            "order": list(td.order),
            "parent": {str(v): td.parent[v] for v in td.order},
            "bags": {
                str(v): [[u, w, c] for u, w, c in bag]
                for v, bag in td.bags.items()
            },
            "dist": {str(v): _encode_dist(d) for v, d in index.label_dist.items()},
            "count": {str(v): c for v, c in index.label_count.items()},
            "num_edges": index.stats().num_edges,
        }
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    payload["format"] = _FORMAT
    payload["version"] = _VERSION
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_index(path: PathLike):
    """Load an index previously written by :func:`save_index`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise SerializationError(f"{path}: not a {_FORMAT} file")
    if payload.get("version") != _VERSION:
        raise SerializationError(
            f"{path}: unsupported version {payload.get('version')}"
        )
    kind = payload.get("type")
    if kind == "CTLS":
        return CTLSIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
            payload["strategy"],
        )
    if kind == "CTL":
        return CTLIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
        )
    if kind == "TL":
        order = payload["order"]
        order_of = {v: i for i, v in enumerate(order)}
        parent = {int(v): p for v, p in payload["parent"].items()}
        bags = {
            int(v): [(u, w, c) for u, w, c in bag]
            for v, bag in payload["bags"].items()
        }
        depth = {}
        for v in reversed(order):
            p = parent[v]
            depth[v] = 0 if p is None else depth[p] + 1
        td = TreeDecomposition(
            order=order, order_of=order_of, bags=bags, parent=parent, depth=depth
        )
        dist = {int(v): _decode_dist(d) for v, d in payload["dist"].items()}
        count = {int(v): list(c) for v, c in payload["count"].items()}
        vertex_ids = {v: i for i, v in enumerate(order)}
        parents = [
            -1 if td.parent[v] is None else vertex_ids[td.parent[v]]
            for v in td.order
        ]
        return TLIndex(
            td, dist, count, LCATable(parents), vertex_ids, BuildStats(),
            payload["num_edges"],
        )
    raise SerializationError(f"{path}: unknown index type {kind!r}")

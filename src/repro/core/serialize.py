"""Index serialization: JSON (v1) and packed binary (v2) formats.

Two on-disk formats coexist:

* **v1 (JSON)** — inspectable and safe to load from untrusted sources;
  Python's arbitrary-precision integers survive the round trip, so
  exact path counts are preserved.  ``INF`` distances (disconnected
  label entries) are encoded as ``null``.  The default for
  :func:`save_index`.
* **v2 (binary)** — the packed :class:`~repro.labels.LabelArena`
  written verbatim: an 8-byte magic (``RSPCIDX2``), an 8-byte
  little-endian header length, a JSON header (index type, tree
  structure, overflow-lane big integers, byte order), then the raw
  ``array`` buffers (vertex ids, offset table, distances, counts).
  Loading is a handful of bulk ``fromfile`` reads instead of millions
  of JSON tokens, and the loaded index queries straight from the arena
  without rebuilding per-vertex lists.  Counts beyond 64 bits live in
  the JSON header, so exactness is preserved bit-for-bit.

:func:`load_index` auto-detects the format by sniffing the magic.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from pathlib import Path
from typing import Union

from repro.baselines.tl import TLIndex
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.base import BuildStats
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import SerializationError
from repro.labels.arena import LabelArena
from repro.labels.store import LabelStore
from repro.tree.cut_tree import CutTree
from repro.tree.lca import LCATable
from repro.types import INF

PathLike = Union[str, Path]

_FORMAT = "repro-spc-index"
_VERSION = 1

#: Magic prefix of the v2 binary container.
_MAGIC = b"RSPCIDX2"
_BINARY_VERSION = 2

#: Serialisable formats accepted by :func:`save_index`.
FORMATS = ("json", "binary")


def _encode_dist(values):
    return [None if d == INF else d for d in values]


def _decode_dist(values):
    return [INF if d is None else d for d in values]


def _tree_payload(tree: CutTree) -> dict:
    return {
        "nodes": [
            {"vertices": list(node.vertices), "parent": node.parent}
            for node in tree.nodes
        ]
    }


def _tree_from_payload(payload: dict) -> CutTree:
    tree = CutTree()
    for entry in payload["nodes"]:
        tree.add_node(entry["vertices"], entry["parent"])
    tree.finalize()
    return tree


def _labels_payload(labels: LabelStore) -> dict:
    return {
        "dist": {str(v): _encode_dist(d) for v, d in labels.dist.items()},
        "count": {str(v): c for v, c in labels.count.items()},
    }


def _labels_from_payload(payload: dict) -> LabelStore:
    vertices = [int(v) for v in payload["dist"]]
    labels = LabelStore(vertices)
    for v in vertices:
        labels.dist[v] = _decode_dist(payload["dist"][str(v)])
        labels.count[v] = list(payload["count"][str(v)])
    return labels


def _tl_metadata_payload(index: TLIndex) -> dict:
    td = index.decomposition
    return {
        "order": list(td.order),
        "parent": {str(v): td.parent[v] for v in td.order},
        "bags": {
            str(v): [[u, w, c] for u, w, c in bag]
            for v, bag in td.bags.items()
        },
        "num_edges": index.stats().num_edges,
    }


def _tl_from_payload(payload: dict, dist, count, arena=None) -> TLIndex:
    """Rebuild a :class:`TLIndex` from its serialised metadata."""
    order = payload["order"]
    order_of = {v: i for i, v in enumerate(order)}
    parent = {int(v): p for v, p in payload["parent"].items()}
    bags = {
        int(v): [(u, w, c) for u, w, c in bag]
        for v, bag in payload["bags"].items()
    }
    depth = {}
    for v in reversed(order):
        p = parent[v]
        depth[v] = 0 if p is None else depth[p] + 1
    td = TreeDecomposition(
        order=order, order_of=order_of, bags=bags, parent=parent, depth=depth
    )
    vertex_ids = {v: i for i, v in enumerate(order)}
    parents = [
        -1 if td.parent[v] is None else vertex_ids[td.parent[v]]
        for v in td.order
    ]
    return TLIndex(
        td, dist, count, LCATable(parents), vertex_ids, BuildStats(),
        payload["num_edges"], arena=arena,
    )


def save_index(index, path: PathLike, *, format: str = "json") -> None:
    """Serialise a built index (CTL, CTLS, or TL) to ``path``.

    ``format="json"`` writes the inspectable v1 document;
    ``format="binary"`` writes the packed v2 container (raw arena
    buffers behind a JSON header).  :func:`load_index` reads both.
    """
    if format not in FORMATS:
        raise SerializationError(
            f"unknown format {format!r}; expected one of {FORMATS}"
        )
    if format == "binary":
        _save_binary(index, path)
        return
    if isinstance(index, CTLSIndex):
        payload = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        payload = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        payload = {"type": "TL", **_tl_metadata_payload(index)}
        payload["dist"] = {
            str(v): _encode_dist(d) for v, d in index.label_dist.items()
        }
        payload["count"] = {str(v): c for v, c in index.label_count.items()}
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    payload["format"] = _FORMAT
    payload["version"] = _VERSION
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_index(path: PathLike):
    """Load an index previously written by :func:`save_index`.

    The format is auto-detected: files starting with the ``RSPCIDX2``
    magic are parsed as the v2 binary container, anything else as the
    v1 JSON document.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
    if magic == _MAGIC:
        return _load_binary(path)
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise SerializationError(f"{path}: not a {_FORMAT} file")
    if payload.get("version") != _VERSION:
        raise SerializationError(
            f"{path}: unsupported version {payload.get('version')}"
        )
    kind = payload.get("type")
    if kind == "CTLS":
        return CTLSIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
            payload["strategy"],
        )
    if kind == "CTL":
        return CTLIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
        )
    if kind == "TL":
        dist = {int(v): _decode_dist(d) for v, d in payload["dist"].items()}
        count = {int(v): list(c) for v, c in payload["count"].items()}
        return _tl_from_payload(payload, dist, count)
    raise SerializationError(f"{path}: unknown index type {kind!r}")


# ----------------------------------------------------------------------
# v2 binary container
# ----------------------------------------------------------------------
def _save_binary(index, path: PathLike) -> None:
    """Write the packed v2 container: JSON header + raw arena buffers."""
    if isinstance(index, CTLSIndex):
        header = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        header = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        header = {"type": "TL", **_tl_metadata_payload(index)}
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    arena = index.arena
    header["format"] = _FORMAT
    header["version"] = _BINARY_VERSION
    header["arena"] = {
        "dist_typecode": arena.dist.typecode,
        "num_vertices": arena.num_vertices,
        "num_entries": arena.total_entries,
        # The overflow lane rides in the header: JSON carries the
        # arbitrary-precision counts the raw int64 buffer cannot.
        "overflow_positions": arena.overflow_positions,
        "overflow_counts": arena.overflow_counts,
        "byteorder": sys.byteorder,
    }
    blob = json.dumps(header).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<Q", len(blob)))
        handle.write(blob)
        array("q", arena.vertices).tofile(handle)
        arena.offsets.tofile(handle)
        arena.dist.tofile(handle)
        arena.count.tofile(handle)


def _read_section(handle, typecode: str, length: int, swap: bool) -> array:
    section = array(typecode)
    try:
        section.fromfile(handle, length)
    except EOFError as exc:
        raise SerializationError(f"truncated binary index file: {exc}") from exc
    if swap:
        section.byteswap()
    return section


def _load_binary(path: PathLike):
    """Load a v2 container written by :func:`_save_binary`."""
    with open(path, "rb") as handle:
        handle.read(len(_MAGIC))  # magic already validated by the caller
        (header_len,) = struct.unpack("<Q", handle.read(8))
        try:
            header = json.loads(handle.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"{path}: corrupt binary header: {exc}"
            ) from exc
        if header.get("format") != _FORMAT:
            raise SerializationError(f"{path}: not a {_FORMAT} file")
        if header.get("version") != _BINARY_VERSION:
            raise SerializationError(
                f"{path}: unsupported binary version {header.get('version')}"
            )
        meta = header["arena"]
        typecode = meta["dist_typecode"]
        if typecode not in ("q", "d"):
            raise SerializationError(
                f"{path}: unsupported distance typecode {typecode!r}"
            )
        swap = meta["byteorder"] != sys.byteorder
        n = meta["num_vertices"]
        entries = meta["num_entries"]
        vertices = _read_section(handle, "q", n, swap)
        offsets = _read_section(handle, "q", n + 1, swap)
        dist = _read_section(handle, typecode, entries, swap)
        count = _read_section(handle, "q", entries, swap)
    arena = LabelArena(
        list(vertices), offsets, dist, count,
        meta["overflow_positions"], meta["overflow_counts"],
    )
    kind = header.get("type")
    if kind == "CTLS":
        return CTLSIndex(
            _tree_from_payload(header["tree"]),
            arena,
            BuildStats(),
            header["num_vertices"],
            header["num_edges"],
            header["strategy"],
        )
    if kind == "CTL":
        return CTLIndex(
            _tree_from_payload(header["tree"]),
            arena,
            BuildStats(),
            header["num_vertices"],
            header["num_edges"],
        )
    if kind == "TL":
        return _tl_from_payload(header, None, None, arena=arena)
    raise SerializationError(f"{path}: unknown index type {kind!r}")

"""Index serialization: JSON (v1) and packed binary (v2/v3) formats.

Three on-disk formats coexist:

* **v1 (JSON)** — inspectable and safe to load from untrusted sources;
  Python's arbitrary-precision integers survive the round trip, so
  exact path counts are preserved.  ``INF`` distances (disconnected
  label entries) are encoded as ``null``.  The default for
  :func:`save_index`.
* **v2 (binary, legacy)** — the packed :class:`~repro.labels.LabelArena`
  written verbatim: an 8-byte magic (``RSPCIDX2``), an 8-byte
  little-endian header length, a JSON header (index type, tree
  structure, overflow-lane big integers, byte order), then the raw
  ``array`` buffers (vertex ids, offset table, distances, counts).
  Still readable; still writable via ``format="binary-v2"`` for
  compatibility with older readers.
* **v3 (binary, default for ``format="binary"``)** — the v2 layout
  hardened for crash-safety: magic ``RSPCIDX3``, the same JSON header
  and raw section buffers, then a fixed-size footer carrying a CRC32
  per section (header, vertices, offsets, dist, count), the total file
  length, and an end marker.  :func:`load_index` verifies every
  checksum and the recorded length, so a truncated write, a torn page,
  or a single flipped bit raises a typed
  :class:`~repro.exceptions.IndexCorruptError` naming the bad section
  instead of producing silently wrong counts.

Every ``save_index`` call is **atomic**: the bytes go to a temp file in
the destination directory, are fsync'd, and only then renamed over the
target — a crash mid-save never clobbers the previous index file.

:func:`load_index` auto-detects the format by sniffing the magic.

**Provenance.** ``save_index(..., build_info=...)`` embeds a build
provenance dict (git sha, build wall-time, per-phase costs — see
:func:`repro.obs.buildphase.make_build_info`) into the v1 document and
the v3 header; loaders attach whatever they find — plus the format
version and the v3 per-section byte sizes — to the returned index as
``index.provenance``, which ``repro-spc stats`` and the server's
``/stats`` endpoint surface.  v2 is a frozen legacy layout and carries
none.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Callable, List, Tuple, Union

from repro.baselines.tl import TLIndex
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.base import BuildStats
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import IndexCorruptError, SerializationError
from repro.labels.arena import LabelArena
from repro.labels.store import LabelStore
from repro.tree.cut_tree import CutTree
from repro.tree.lca import LCATable
from repro.types import INF

PathLike = Union[str, Path]

_FORMAT = "repro-spc-index"
_VERSION = 1

#: Magic prefix of the v2 binary container (legacy, no checksums).
_MAGIC = b"RSPCIDX2"
_BINARY_VERSION = 2

#: Magic prefix and end marker of the checksummed v3 container.
_MAGIC3 = b"RSPCIDX3"
_END_MAGIC3 = b"RSPC3END"
_BINARY_VERSION3 = 3

#: v3 footer: five little-endian CRC32s (header, vertices, offsets,
#: dist, count), the total file length as u64, then the end marker.
_FOOTER_STRUCT = struct.Struct("<5IQ")
_FOOTER_LEN = _FOOTER_STRUCT.size + len(_END_MAGIC3)

#: Data sections of a binary container, in on-disk order.
_SECTION_NAMES = ("vertices", "offsets", "dist", "count")

#: Serialisable formats accepted by :func:`save_index`.
FORMATS = ("json", "binary", "binary-v2")


def _encode_dist(values):
    return [None if d == INF else d for d in values]


def _decode_dist(values):
    return [INF if d is None else d for d in values]


def _tree_payload(tree: CutTree) -> dict:
    return {
        "nodes": [
            {"vertices": list(node.vertices), "parent": node.parent}
            for node in tree.nodes
        ]
    }


def _tree_from_payload(payload: dict) -> CutTree:
    tree = CutTree()
    for entry in payload["nodes"]:
        tree.add_node(entry["vertices"], entry["parent"])
    tree.finalize()
    return tree


def _labels_payload(labels: LabelStore) -> dict:
    return {
        "dist": {str(v): _encode_dist(d) for v, d in labels.dist.items()},
        "count": {str(v): c for v, c in labels.count.items()},
    }


def _labels_from_payload(payload: dict) -> LabelStore:
    vertices = [int(v) for v in payload["dist"]]
    labels = LabelStore(vertices)
    for v in vertices:
        labels.dist[v] = _decode_dist(payload["dist"][str(v)])
        labels.count[v] = list(payload["count"][str(v)])
    return labels


def _tl_metadata_payload(index: TLIndex) -> dict:
    td = index.decomposition
    return {
        "order": list(td.order),
        "parent": {str(v): td.parent[v] for v in td.order},
        "bags": {
            str(v): [[u, w, c] for u, w, c in bag]
            for v, bag in td.bags.items()
        },
        "num_edges": index.stats().num_edges,
    }


def _tl_from_payload(payload: dict, dist, count, arena=None) -> TLIndex:
    """Rebuild a :class:`TLIndex` from its serialised metadata."""
    order = payload["order"]
    order_of = {v: i for i, v in enumerate(order)}
    parent = {int(v): p for v, p in payload["parent"].items()}
    bags = {
        int(v): [(u, w, c) for u, w, c in bag]
        for v, bag in payload["bags"].items()
    }
    depth = {}
    for v in reversed(order):
        p = parent[v]
        depth[v] = 0 if p is None else depth[p] + 1
    td = TreeDecomposition(
        order=order, order_of=order_of, bags=bags, parent=parent, depth=depth
    )
    vertex_ids = {v: i for i, v in enumerate(order)}
    parents = [
        -1 if td.parent[v] is None else vertex_ids[td.parent[v]]
        for v in td.order
    ]
    return TLIndex(
        td, dist, count, LCATable(parents), vertex_ids, BuildStats(),
        payload["num_edges"], arena=arena,
    )


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def _atomic_write(
    path: PathLike, mode: str, write: Callable, encoding=None
) -> None:
    """Write via temp file + fsync + rename, so a crash mid-save never
    leaves a half-written file where an index used to be."""
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, mode, encoding=encoding) as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:  # best-effort: persist the rename itself
        dir_fd = os.open(target.parent or Path("."), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def save_index(
    index, path: PathLike, *, format: str = "json", build_info: dict = None
) -> None:
    """Serialise a built index (CTL, CTLS, or TL) to ``path``.

    ``format="json"`` writes the inspectable v1 document;
    ``format="binary"`` writes the checksummed v3 container;
    ``format="binary-v2"`` writes the legacy v2 container for older
    readers.  :func:`load_index` reads all three.  Every format is
    written atomically (temp file + fsync + rename).  ``build_info``
    (optional) is embedded verbatim as provenance in the v1 and v3
    formats; v2 has a frozen layout and silently drops it.
    """
    if format not in FORMATS:
        raise SerializationError(
            f"unknown format {format!r}; expected one of {FORMATS}"
        )
    if format == "binary":
        _atomic_write(
            path, "wb", lambda h: _write_binary_v3(index, h, build_info)
        )
        return
    if format == "binary-v2":
        _atomic_write(path, "wb", lambda h: _write_binary_v2(index, h))
        return
    if isinstance(index, CTLSIndex):
        payload = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        payload = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        payload = {"type": "TL", **_tl_metadata_payload(index)}
        payload["dist"] = {
            str(v): _encode_dist(d) for v, d in index.label_dist.items()
        }
        payload["count"] = {str(v): c for v, c in index.label_count.items()}
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    payload["format"] = _FORMAT
    payload["version"] = _VERSION
    if build_info is not None:
        payload["build_info"] = build_info
    _atomic_write(
        path, "w", lambda h: json.dump(payload, h), encoding="utf-8"
    )


def _attach_provenance(
    index,
    path: PathLike,
    *,
    format_version: int,
    build_info: dict = None,
    sections: dict = None,
) -> None:
    """Record where (and from what build) a loaded index came."""
    provenance = {
        "path": str(path),
        "format_version": format_version,
    }
    if sections is not None:
        provenance["sections"] = dict(sections)
    if build_info is not None:
        provenance["build_info"] = build_info
    index.provenance = provenance


def load_index(path: PathLike):
    """Load an index previously written by :func:`save_index`.

    The format is auto-detected: ``RSPCIDX3`` parses as the
    checksummed v3 container (fully verified — any truncation or bit
    corruption raises :class:`IndexCorruptError` naming the bad
    section), ``RSPCIDX2`` as the legacy v2 container (length-checked),
    and a leading ``{`` as the v1 JSON document.  An empty or
    unrecognisable file raises a typed error instead of a raw
    ``struct.error``/``EOFError``.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC3))
    if magic == _MAGIC3:
        return _load_binary_v3(path, size)
    if magic == _MAGIC:
        return _load_binary_v2(path, size)
    if size == 0:
        raise IndexCorruptError(
            path, "file", "empty index file",
            expected=f">= {len(_MAGIC3)} bytes", actual="0 bytes",
        )
    if not magic.lstrip().startswith(b"{"):
        raise SerializationError(
            f"{path}: not a recognised index file (no {_FORMAT} JSON "
            f"document or RSPCIDX2/RSPCIDX3 magic)"
        )
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexCorruptError(
                path, "file", f"truncated or corrupt JSON document: {exc}"
            ) from exc
    if payload.get("format") != _FORMAT:
        raise SerializationError(f"{path}: not a {_FORMAT} file")
    if payload.get("version") != _VERSION:
        raise SerializationError(
            f"{path}: unsupported version {payload.get('version')}"
        )
    kind = payload.get("type")
    if kind == "CTLS":
        index = CTLSIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
            payload["strategy"],
        )
    elif kind == "CTL":
        index = CTLIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
        )
    elif kind == "TL":
        dist = {int(v): _decode_dist(d) for v, d in payload["dist"].items()}
        count = {int(v): list(c) for v, c in payload["count"].items()}
        index = _tl_from_payload(payload, dist, count)
    else:
        raise SerializationError(f"{path}: unknown index type {kind!r}")
    _attach_provenance(
        index, path, format_version=_VERSION,
        build_info=payload.get("build_info"),
    )
    return index


# ----------------------------------------------------------------------
# binary containers (v2 legacy, v3 checksummed)
# ----------------------------------------------------------------------
def _binary_header(index) -> dict:
    """The JSON header shared by the v2 and v3 containers."""
    if isinstance(index, CTLSIndex):
        header = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        header = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        header = {"type": "TL", **_tl_metadata_payload(index)}
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    arena = index.arena
    header["format"] = _FORMAT
    header["arena"] = {
        "dist_typecode": arena.dist.typecode,
        "num_vertices": arena.num_vertices,
        "num_entries": arena.total_entries,
        # The overflow lane rides in the header: JSON carries the
        # arbitrary-precision counts the raw int64 buffer cannot.
        "overflow_positions": arena.overflow_positions,
        "overflow_counts": arena.overflow_counts,
        "byteorder": sys.byteorder,
    }
    return header


def _section_arrays(index) -> List[Tuple[str, array]]:
    """The raw data sections of ``index``'s arena, in on-disk order."""
    arena = index.arena
    return [
        ("vertices", array("q", arena.vertices)),
        ("offsets", arena.offsets),
        ("dist", arena.dist),
        ("count", arena.count),
    ]


def _write_binary_v2(index, handle) -> None:
    """The legacy v2 layout: JSON header + raw arena buffers, no CRCs."""
    header = _binary_header(index)
    header["version"] = _BINARY_VERSION
    blob = json.dumps(header).encode("utf-8")
    handle.write(_MAGIC)
    handle.write(struct.pack("<Q", len(blob)))
    handle.write(blob)
    for _, section in _section_arrays(index):
        section.tofile(handle)


def _write_binary_v3(index, handle, build_info: dict = None) -> None:
    """The v3 layout: v2 plus a per-section CRC32 + total-length footer.

    CRCs are computed over the raw on-disk bytes (native byte order),
    so a cross-endian loader verifies *before* byteswapping.  The
    header CRC covers the magic and the length field too — a flipped
    bit anywhere in the fixed prefix is caught, not just in the JSON.
    """
    header = _binary_header(index)
    header["version"] = _BINARY_VERSION3
    if build_info is not None:
        header["build_info"] = build_info
    sections = _section_arrays(index)
    header["sections"] = {
        name: len(arr) * arr.itemsize for name, arr in sections
    }
    blob = json.dumps(header).encode("utf-8")
    prefix = _MAGIC3 + struct.pack("<Q", len(blob))
    crcs = [zlib.crc32(blob, zlib.crc32(prefix))]
    handle.write(prefix)
    handle.write(blob)
    total = len(prefix) + len(blob)
    for _, arr in sections:
        arr.tofile(handle)
        crcs.append(zlib.crc32(arr))
        total += len(arr) * arr.itemsize
    total += _FOOTER_LEN
    handle.write(_FOOTER_STRUCT.pack(*crcs, total))
    handle.write(_END_MAGIC3)


def _check_binary_header(path: PathLike, header: dict, version: int) -> dict:
    """Shared format/version/typecode validation; returns arena meta."""
    if header.get("format") != _FORMAT:
        raise SerializationError(f"{path}: not a {_FORMAT} file")
    if header.get("version") != version:
        raise SerializationError(
            f"{path}: unsupported binary version {header.get('version')}"
        )
    meta = header["arena"]
    typecode = meta["dist_typecode"]
    if typecode not in ("q", "d"):
        raise SerializationError(
            f"{path}: unsupported distance typecode {typecode!r}"
        )
    return meta


def _section_layout(meta: dict) -> List[Tuple[str, str, int]]:
    """``(name, typecode, item count)`` per data section, in file order."""
    n = meta["num_vertices"]
    entries = meta["num_entries"]
    return [
        ("vertices", "q", n),
        ("offsets", "q", n + 1),
        ("dist", meta["dist_typecode"], entries),
        ("count", "q", entries),
    ]


def _index_from_binary(path: PathLike, header: dict, arena: LabelArena):
    """Construct the in-memory index from a parsed binary container."""
    kind = header.get("type")
    if kind == "CTLS":
        return CTLSIndex(
            _tree_from_payload(header["tree"]),
            arena,
            BuildStats(),
            header["num_vertices"],
            header["num_edges"],
            header["strategy"],
        )
    if kind == "CTL":
        return CTLIndex(
            _tree_from_payload(header["tree"]),
            arena,
            BuildStats(),
            header["num_vertices"],
            header["num_edges"],
        )
    if kind == "TL":
        return _tl_from_payload(header, None, None, arena=arena)
    raise SerializationError(f"{path}: unknown index type {kind!r}")


def _load_binary_v2(path: PathLike, size: int):
    """Load a legacy v2 container, with typed truncation errors."""
    with open(path, "rb") as handle:
        prefix = handle.read(len(_MAGIC) + 8)
        if len(prefix) < len(_MAGIC) + 8:
            raise IndexCorruptError(
                path, "header", "file shorter than the fixed prefix",
                expected=f"{len(_MAGIC) + 8} bytes",
                actual=f"{len(prefix)} bytes",
            )
        (header_len,) = struct.unpack("<Q", prefix[len(_MAGIC):])
        if len(prefix) + header_len > size:
            raise IndexCorruptError(
                path, "header", "header length field exceeds file size",
                expected=f"{len(prefix) + header_len} bytes",
                actual=f"{size} bytes",
            )
        try:
            header = json.loads(handle.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexCorruptError(
                path, "header", f"corrupt binary header: {exc}"
            ) from exc
        meta = _check_binary_header(path, header, _BINARY_VERSION)
        layout = _section_layout(meta)
        expected = len(prefix) + header_len + sum(
            length * array(typecode).itemsize
            for _, typecode, length in layout
        )
        if size < expected:
            raise IndexCorruptError(
                path, "file", "truncated index file",
                expected=f"{expected} bytes", actual=f"{size} bytes",
            )
        swap = meta["byteorder"] != sys.byteorder
        arrays = {}
        for name, typecode, length in layout:
            section = array(typecode)
            try:
                section.fromfile(handle, length)
            except EOFError as exc:
                raise IndexCorruptError(
                    path, name, f"truncated section: {exc}",
                    expected=f"{length * section.itemsize} bytes",
                ) from exc
            if swap:
                section.byteswap()
            arrays[name] = section
    arena = LabelArena(
        list(arrays["vertices"]), arrays["offsets"], arrays["dist"],
        arrays["count"], meta["overflow_positions"],
        meta["overflow_counts"],
    )
    index = _index_from_binary(path, header, arena)
    _attach_provenance(index, path, format_version=_BINARY_VERSION)
    return index


def _read_v3_layout(handle, path: PathLike, size: int):
    """Validate the fixed v3 structure; returns header parts + footer.

    Reads the footer *before* trusting the header JSON: the header CRC
    is verified first, so a bit flip inside the header can never steer
    section parsing (or JSON decoding) off a cliff.
    """
    min_size = len(_MAGIC3) + 8 + _FOOTER_LEN
    if size < min_size:
        raise IndexCorruptError(
            path, "file", "file shorter than the v3 envelope",
            expected=f">= {min_size} bytes", actual=f"{size} bytes",
        )
    prefix = handle.read(len(_MAGIC3) + 8)
    (header_len,) = struct.unpack("<Q", prefix[len(_MAGIC3):])
    if len(prefix) + header_len + _FOOTER_LEN > size:
        raise IndexCorruptError(
            path, "header", "header length field exceeds file size",
            expected=f"<= {size - len(prefix) - _FOOTER_LEN} bytes",
            actual=f"{header_len} bytes",
        )
    blob = handle.read(header_len)
    header_crc = zlib.crc32(blob, zlib.crc32(prefix))
    handle.seek(size - _FOOTER_LEN)
    footer = handle.read(_FOOTER_LEN)
    if footer[_FOOTER_STRUCT.size:] != _END_MAGIC3:
        raise IndexCorruptError(
            path, "footer", "missing end marker — truncated or overwritten",
            expected=_END_MAGIC3.decode("latin-1"),
            actual=footer[_FOOTER_STRUCT.size:].decode("latin-1", "replace"),
        )
    *crcs, total = _FOOTER_STRUCT.unpack(footer[:_FOOTER_STRUCT.size])
    if total != size:
        raise IndexCorruptError(
            path, "file", "recorded length does not match the file",
            expected=f"{total} bytes", actual=f"{size} bytes",
        )
    if crcs[0] != header_crc:
        raise IndexCorruptError(
            path, "header", "checksum mismatch",
            expected=f"crc32 {crcs[0]:#010x}", actual=f"{header_crc:#010x}",
        )
    try:
        header = json.loads(blob)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but JSON did not — a writer bug, not bit rot.
        raise SerializationError(
            f"{path}: undecodable v3 header: {exc}"
        ) from exc
    return len(prefix) + header_len, header, crcs


def _load_binary_v3(path: PathLike, size: int):
    """Load a v3 container, verifying every checksum along the way."""
    with open(path, "rb") as handle:
        data_start, header, crcs = _read_v3_layout(handle, path, size)
        meta = _check_binary_header(path, header, _BINARY_VERSION3)
        layout = _section_layout(meta)
        section_bytes = sum(
            length * array(typecode).itemsize
            for _, typecode, length in layout
        )
        if data_start + section_bytes + _FOOTER_LEN != size:
            raise IndexCorruptError(
                path, "file", "section sizes do not add up to the file",
                expected=f"{data_start + section_bytes + _FOOTER_LEN} bytes",
                actual=f"{size} bytes",
            )
        handle.seek(data_start)
        swap = meta["byteorder"] != sys.byteorder
        arrays = {}
        for (name, typecode, length), want_crc in zip(layout, crcs[1:]):
            nbytes = length * array(typecode).itemsize
            raw = handle.read(nbytes)
            if len(raw) != nbytes:
                raise IndexCorruptError(
                    path, name, "truncated section",
                    expected=f"{nbytes} bytes", actual=f"{len(raw)} bytes",
                )
            got_crc = zlib.crc32(raw)
            if got_crc != want_crc:
                raise IndexCorruptError(
                    path, name, "checksum mismatch",
                    expected=f"crc32 {want_crc:#010x}",
                    actual=f"{got_crc:#010x}",
                )
            section = array(typecode)
            section.frombytes(raw)
            if swap:
                section.byteswap()
            arrays[name] = section
    arena = LabelArena(
        list(arrays["vertices"]), arrays["offsets"], arrays["dist"],
        arrays["count"], meta["overflow_positions"],
        meta["overflow_counts"],
    )
    index = _index_from_binary(path, header, arena)
    _attach_provenance(
        index, path, format_version=_BINARY_VERSION3,
        build_info=header.get("build_info"),
        sections=header.get("sections"),
    )
    return index


# ----------------------------------------------------------------------
# integrity verification (repro-spc verify-index)
# ----------------------------------------------------------------------
def verify_index_file(path: PathLike) -> List[Tuple[str, bool, str]]:
    """Validate an index file's integrity; never raises for corruption.

    Returns a per-section report ``[(section, ok, detail), ...]``.  For
    a v3 container every section is checked (checksum + length) even
    after an earlier one fails, so one run reports all the damage; v1
    and v2 files (no checksums) get a single structural ``file`` entry
    from attempting a full load.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC3))
    except OSError as exc:
        return [("file", False, str(exc))]
    if magic != _MAGIC3:
        try:
            load_index(path)
        except SerializationError as exc:
            return [("file", False, str(exc))]
        except Exception as exc:  # pragma: no cover - defensive
            return [("file", False, f"{type(exc).__name__}: {exc}")]
        return [("file", True, "structural load ok (no checksums)")]
    report: List[Tuple[str, bool, str]] = []
    with open(path, "rb") as handle:
        try:
            data_start, header, crcs = _read_v3_layout(handle, path, size)
            meta = _check_binary_header(path, header, _BINARY_VERSION3)
        except SerializationError as exc:
            section = getattr(exc, "section", "header")
            return [(section, False, str(exc))]
        report.append(("header", True, "checksum ok"))
        handle.seek(data_start)
        for (name, typecode, length), want_crc in zip(
            _section_layout(meta), crcs[1:]
        ):
            nbytes = length * array(typecode).itemsize
            raw = handle.read(nbytes)
            if len(raw) != nbytes:
                report.append((
                    name, False,
                    f"truncated: expected {nbytes} bytes, "
                    f"got {len(raw)}",
                ))
                continue
            got_crc = zlib.crc32(raw)
            if got_crc == want_crc:
                report.append((name, True, f"checksum ok ({nbytes} bytes)"))
            else:
                report.append((
                    name, False,
                    f"checksum mismatch: expected crc32 "
                    f"{want_crc:#010x}, got {got_crc:#010x}",
                ))
    return report

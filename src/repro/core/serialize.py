"""Index serialization: JSON (v1) and packed binary (v2/v3/v4) formats.

Four on-disk formats coexist:

* **v1 (JSON)** — inspectable and safe to load from untrusted sources;
  Python's arbitrary-precision integers survive the round trip, so
  exact path counts are preserved.  ``INF`` distances (disconnected
  label entries) are encoded as ``null``.  The default for
  :func:`save_index`.
* **v2 (binary, legacy)** — the packed :class:`~repro.labels.LabelArena`
  written verbatim: an 8-byte magic (``RSPCIDX2``), an 8-byte
  little-endian header length, a JSON header (index type, tree
  structure, overflow-lane big integers, byte order), then the raw
  ``array`` buffers (vertex ids, offset table, distances, counts).
  Still readable; still writable via ``format="binary-v2"`` for
  compatibility with older readers.
* **v3 (binary, ``format="binary-v3"``)** — the v2 layout hardened for
  crash-safety: magic ``RSPCIDX3``, the same JSON header and raw
  section buffers, then a fixed-size footer carrying a CRC32 per
  section (header, vertices, offsets, dist, count), the total file
  length, and an end marker.  :func:`load_index` verifies every
  checksum and the recorded length, so a truncated write, a torn page,
  or a single flipped bit raises a typed
  :class:`~repro.exceptions.IndexCorruptError` naming the bad section
  instead of producing silently wrong counts.
* **v4 (binary, default for ``format="binary"``)** — the mmap-native
  container: magic ``RSPCIDX4``, a JSON header (index type, arena
  metadata, overflow lane), a binary section table of ``(offset,
  nbytes)`` pairs, then each data section zero-padded to a page-size
  boundary so every buffer starts 8-byte (in fact page-) aligned in
  the file.  The cut tree rides as three flat int64 sections
  (``tree_parents``/``tree_blocks``/``tree_vertices``) instead of JSON,
  so a reload never re-parses the tree.  A variable-size footer carries
  one CRC32 per section plus the header CRC, the section count, the
  total length, and the ``RSPC4END`` marker.  By default
  :func:`load_index` maps the file read-only and hands the
  :class:`~repro.labels.LabelArena` zero-copy ``memoryview`` windows
  over the mapping — cold start is page-fault-time, not parse-time,
  and every process serving the same file shares one physical copy
  through the OS page cache.  Pass ``verify=True`` to additionally
  checksum every mapped section, or ``mmap=False`` for a heap load
  (always fully verified, and the fallback on byte-order mismatch).

Every ``save_index`` call is **atomic**: the bytes go to a temp file in
the destination directory, are fsync'd, and only then renamed over the
target — a crash mid-save never clobbers the previous index file.

:func:`load_index` auto-detects the format by sniffing the magic.

**Provenance.** ``save_index(..., build_info=...)`` embeds a build
provenance dict (git sha, build wall-time, per-phase costs — see
:func:`repro.obs.buildphase.make_build_info`) into the v1 document and
the v3 header; loaders attach whatever they find — plus the format
version and the v3 per-section byte sizes — to the returned index as
``index.provenance``, which ``repro-spc stats`` and the server's
``/stats`` endpoint surface.  v2 is a frozen legacy layout and carries
none.
"""

from __future__ import annotations

import json
import mmap as _mmaplib
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Callable, List, Tuple, Union

from repro.baselines.tl import TLIndex
from repro.baselines.tree_decomposition import TreeDecomposition
from repro.core.base import BuildStats
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import IndexCorruptError, SerializationError
from repro.labels.arena import LabelArena
from repro.labels.store import LabelStore
from repro.tree.cut_tree import CutTree
from repro.tree.lca import LCATable
from repro.types import INF

PathLike = Union[str, Path]

_FORMAT = "repro-spc-index"
_VERSION = 1

#: Magic prefix of the v2 binary container (legacy, no checksums).
_MAGIC = b"RSPCIDX2"
_BINARY_VERSION = 2

#: Magic prefix and end marker of the checksummed v3 container.
_MAGIC3 = b"RSPCIDX3"
_END_MAGIC3 = b"RSPC3END"
_BINARY_VERSION3 = 3

#: v3 footer: five little-endian CRC32s (header, vertices, offsets,
#: dist, count), the total file length as u64, then the end marker.
_FOOTER_STRUCT = struct.Struct("<5IQ")
_FOOTER_LEN = _FOOTER_STRUCT.size + len(_END_MAGIC3)

#: Data sections of a binary container, in on-disk order.
_SECTION_NAMES = ("vertices", "offsets", "dist", "count")

#: Magic prefix and end marker of the aligned, mmap-native v4 container.
_MAGIC4 = b"RSPCIDX4"
_END_MAGIC4 = b"RSPC4END"
_BINARY_VERSION4 = 4

#: v4 section-table entry: ``(file offset, byte length)`` per section.
_SECTION_ENTRY = struct.Struct("<QQ")

#: Fixed tail of the v4 footer: section count (u32), total file length
#: (u64), then the end marker.  The CRC block (one u32 per section plus
#: the header CRC) sits immediately before it, so the footer's size is
#: recoverable from the tail alone.
_FOOTER4_TAIL = struct.Struct("<IQ")
_FOOTER4_TAIL_LEN = _FOOTER4_TAIL.size + len(_END_MAGIC4)

#: Sanity bound on the v4 section count — far above any real layout,
#: low enough that a corrupt footer cannot demand a gigabyte CRC block.
_MAX_SECTIONS = 64

#: v4 sections start on this boundary so their buffers can be mapped
#: page-aligned (numpy and ``memoryview.cast`` only need 8, the page
#: size keeps each section's pages private to itself).
_ALIGN = max(4096, _mmaplib.ALLOCATIONGRANULARITY)

#: Serialisable formats accepted by :func:`save_index`.
FORMATS = ("json", "binary", "binary-v2", "binary-v3")


def _footer4_len(nsections: int) -> int:
    return 4 * (nsections + 1) + _FOOTER4_TAIL_LEN


def _encode_dist(values):
    return [None if d == INF else d for d in values]


def _decode_dist(values):
    return [INF if d is None else d for d in values]


def _tree_payload(tree: CutTree) -> dict:
    return {
        "nodes": [
            {"vertices": list(node.vertices), "parent": node.parent}
            for node in tree.nodes
        ]
    }


def _tree_from_payload(payload: dict) -> CutTree:
    tree = CutTree()
    for entry in payload["nodes"]:
        tree.add_node(entry["vertices"], entry["parent"])
    tree.finalize()
    return tree


def _labels_payload(labels: LabelStore) -> dict:
    return {
        "dist": {str(v): _encode_dist(d) for v, d in labels.dist.items()},
        "count": {str(v): c for v, c in labels.count.items()},
    }


def _labels_from_payload(payload: dict) -> LabelStore:
    vertices = [int(v) for v in payload["dist"]]
    labels = LabelStore(vertices)
    for v in vertices:
        labels.dist[v] = _decode_dist(payload["dist"][str(v)])
        labels.count[v] = list(payload["count"][str(v)])
    return labels


def _tl_metadata_payload(index: TLIndex) -> dict:
    td = index.decomposition
    return {
        "order": list(td.order),
        "parent": {str(v): td.parent[v] for v in td.order},
        "bags": {
            str(v): [[u, w, c] for u, w, c in bag]
            for v, bag in td.bags.items()
        },
        "num_edges": index.stats().num_edges,
    }


def _tl_from_payload(payload: dict, dist, count, arena=None) -> TLIndex:
    """Rebuild a :class:`TLIndex` from its serialised metadata."""
    order = payload["order"]
    order_of = {v: i for i, v in enumerate(order)}
    parent = {int(v): p for v, p in payload["parent"].items()}
    bags = {
        int(v): [(u, w, c) for u, w, c in bag]
        for v, bag in payload["bags"].items()
    }
    depth = {}
    for v in reversed(order):
        p = parent[v]
        depth[v] = 0 if p is None else depth[p] + 1
    td = TreeDecomposition(
        order=order, order_of=order_of, bags=bags, parent=parent, depth=depth
    )
    vertex_ids = {v: i for i, v in enumerate(order)}
    parents = [
        -1 if td.parent[v] is None else vertex_ids[td.parent[v]]
        for v in td.order
    ]
    return TLIndex(
        td, dist, count, LCATable(parents), vertex_ids, BuildStats(),
        payload["num_edges"], arena=arena,
    )


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def _atomic_write(
    path: PathLike, mode: str, write: Callable, encoding=None
) -> None:
    """Write via temp file + fsync + rename, so a crash mid-save never
    leaves a half-written file where an index used to be."""
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, mode, encoding=encoding) as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:  # best-effort: persist the rename itself
        dir_fd = os.open(target.parent or Path("."), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def save_index(
    index, path: PathLike, *, format: str = "json", build_info: dict = None
) -> None:
    """Serialise a built index (CTL, CTLS, or TL) to ``path``.

    ``format="json"`` writes the inspectable v1 document;
    ``format="binary"`` writes the aligned mmap-native v4 container;
    ``format="binary-v3"`` writes the checksummed v3 container and
    ``format="binary-v2"`` the legacy v2 container for older readers.
    :func:`load_index` reads all four.  Every format is written
    atomically (temp file + fsync + rename).  ``build_info`` (optional)
    is embedded verbatim as provenance in the v1, v3, and v4 formats;
    v2 has a frozen layout and silently drops it.
    """
    if format not in FORMATS:
        raise SerializationError(
            f"unknown format {format!r}; expected one of {FORMATS}"
        )
    if format == "binary":
        _atomic_write(
            path, "wb", lambda h: _write_binary_v4(index, h, build_info)
        )
        return
    if format == "binary-v3":
        _atomic_write(
            path, "wb", lambda h: _write_binary_v3(index, h, build_info)
        )
        return
    if format == "binary-v2":
        _atomic_write(path, "wb", lambda h: _write_binary_v2(index, h))
        return
    if isinstance(index, CTLSIndex):
        payload = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        payload = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "labels": _labels_payload(index.labels),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        payload = {"type": "TL", **_tl_metadata_payload(index)}
        payload["dist"] = {
            str(v): _encode_dist(d) for v, d in index.label_dist.items()
        }
        payload["count"] = {str(v): c for v, c in index.label_count.items()}
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    payload["format"] = _FORMAT
    payload["version"] = _VERSION
    if build_info is not None:
        payload["build_info"] = build_info
    _atomic_write(
        path, "w", lambda h: json.dump(payload, h), encoding="utf-8"
    )


def _attach_provenance(
    index,
    path: PathLike,
    *,
    format_version: int,
    build_info: dict = None,
    sections: dict = None,
) -> None:
    """Record where (and from what build) a loaded index came."""
    provenance = {
        "path": str(path),
        "format_version": format_version,
    }
    if sections is not None:
        provenance["sections"] = dict(sections)
    if build_info is not None:
        provenance["build_info"] = build_info
    index.provenance = provenance


def load_index(path: PathLike, *, mmap: bool = True, verify: bool = None):
    """Load an index previously written by :func:`save_index`.

    The format is auto-detected: ``RSPCIDX4`` parses as the aligned
    mmap-native v4 container, ``RSPCIDX3`` as the checksummed v3
    container (fully verified — any truncation or bit corruption raises
    :class:`IndexCorruptError` naming the bad section), ``RSPCIDX2`` as
    the legacy v2 container (length-checked), and a leading ``{`` as
    the v1 JSON document.  An empty or unrecognisable file raises a
    typed error instead of a raw ``struct.error``/``EOFError``.

    ``mmap`` and ``verify`` apply to v4 files only.  With ``mmap=True``
    (default) the arena gets zero-copy views over a read-only mapping;
    the header checksum and the structural layout (alignment, bounds,
    overlaps, recorded length) are always validated, but the data
    sections are only checksummed when ``verify=True`` — a deliberate
    trade: page-fault-time cold start versus full-file CRC sweeps.
    ``mmap=False`` reads everything onto the heap and always verifies,
    as does the automatic heap fallback for cross-endian files.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC3))
    if magic == _MAGIC4:
        return _load_binary_v4(path, size, use_mmap=mmap, verify=verify)
    if magic == _MAGIC3:
        return _load_binary_v3(path, size)
    if magic == _MAGIC:
        return _load_binary_v2(path, size)
    if size == 0:
        raise IndexCorruptError(
            path, "file", "empty index file",
            expected=f">= {len(_MAGIC3)} bytes", actual="0 bytes",
        )
    if not magic.lstrip().startswith(b"{"):
        raise SerializationError(
            f"{path}: not a recognised index file (no {_FORMAT} JSON "
            f"document or RSPCIDX2/RSPCIDX3/RSPCIDX4 magic)"
        )
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexCorruptError(
                path, "file", f"truncated or corrupt JSON document: {exc}"
            ) from exc
    if payload.get("format") != _FORMAT:
        raise SerializationError(f"{path}: not a {_FORMAT} file")
    if payload.get("version") != _VERSION:
        raise SerializationError(
            f"{path}: unsupported version {payload.get('version')}"
        )
    kind = payload.get("type")
    if kind == "CTLS":
        index = CTLSIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
            payload["strategy"],
        )
    elif kind == "CTL":
        index = CTLIndex(
            _tree_from_payload(payload["tree"]),
            _labels_from_payload(payload["labels"]),
            BuildStats(),
            payload["num_vertices"],
            payload["num_edges"],
        )
    elif kind == "TL":
        dist = {int(v): _decode_dist(d) for v, d in payload["dist"].items()}
        count = {int(v): list(c) for v, c in payload["count"].items()}
        index = _tl_from_payload(payload, dist, count)
    else:
        raise SerializationError(f"{path}: unknown index type {kind!r}")
    _attach_provenance(
        index, path, format_version=_VERSION,
        build_info=payload.get("build_info"),
    )
    return index


# ----------------------------------------------------------------------
# binary containers (v2 legacy, v3 checksummed)
# ----------------------------------------------------------------------
def _binary_header(index) -> dict:
    """The JSON header shared by the v2 and v3 containers."""
    if isinstance(index, CTLSIndex):
        header = {
            "type": "CTLS",
            "strategy": index.strategy,
            "tree": _tree_payload(index.tree),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, CTLIndex):
        header = {
            "type": "CTL",
            "tree": _tree_payload(index.tree),
            "num_vertices": index.stats().num_vertices,
            "num_edges": index.stats().num_edges,
        }
    elif isinstance(index, TLIndex):
        header = {"type": "TL", **_tl_metadata_payload(index)}
    else:
        raise SerializationError(
            f"cannot serialise index of type {type(index).__name__}"
        )
    arena = index.arena
    header["format"] = _FORMAT
    header["arena"] = {
        "dist_typecode": arena.dist_typecode,
        "num_vertices": arena.num_vertices,
        "num_entries": arena.total_entries,
        # The overflow lane rides in the header: JSON carries the
        # arbitrary-precision counts the raw int64 buffer cannot.
        "overflow_positions": arena.overflow_positions,
        "overflow_counts": arena.overflow_counts,
        "byteorder": sys.byteorder,
    }
    return header


def _section_arrays(index) -> List[Tuple[str, array]]:
    """The raw data sections of ``index``'s arena, in on-disk order.

    Buffers come back as whatever the arena holds — ``array`` for a
    built/heap-loaded index, ``memoryview`` for an mmap-loaded one —
    so writers must use ``handle.write(buf)``, never ``buf.tofile``.
    """
    arena = index.arena
    return [
        ("vertices", array("q", arena.vertices)),
        ("offsets", arena.offsets),
        ("dist", arena.dist),
        ("count", arena.count),
    ]


def _buf_nbytes(buf) -> int:
    return len(buf) * buf.itemsize


def _write_binary_v2(index, handle) -> None:
    """The legacy v2 layout: JSON header + raw arena buffers, no CRCs."""
    header = _binary_header(index)
    header["version"] = _BINARY_VERSION
    blob = json.dumps(header).encode("utf-8")
    handle.write(_MAGIC)
    handle.write(struct.pack("<Q", len(blob)))
    handle.write(blob)
    for _, section in _section_arrays(index):
        handle.write(section)


def _write_binary_v3(index, handle, build_info: dict = None) -> None:
    """The v3 layout: v2 plus a per-section CRC32 + total-length footer.

    CRCs are computed over the raw on-disk bytes (native byte order),
    so a cross-endian loader verifies *before* byteswapping.  The
    header CRC covers the magic and the length field too — a flipped
    bit anywhere in the fixed prefix is caught, not just in the JSON.
    """
    header = _binary_header(index)
    header["version"] = _BINARY_VERSION3
    if build_info is not None:
        header["build_info"] = build_info
    sections = _section_arrays(index)
    header["sections"] = {
        name: _buf_nbytes(arr) for name, arr in sections
    }
    blob = json.dumps(header).encode("utf-8")
    prefix = _MAGIC3 + struct.pack("<Q", len(blob))
    crcs = [zlib.crc32(blob, zlib.crc32(prefix))]
    handle.write(prefix)
    handle.write(blob)
    total = len(prefix) + len(blob)
    for _, arr in sections:
        handle.write(arr)
        crcs.append(zlib.crc32(arr))
        total += _buf_nbytes(arr)
    total += _FOOTER_LEN
    handle.write(_FOOTER_STRUCT.pack(*crcs, total))
    handle.write(_END_MAGIC3)


# ----------------------------------------------------------------------
# v4: aligned, page-padded, mmap-native container
# ----------------------------------------------------------------------
def _v4_sections(index) -> List[Tuple[str, object]]:
    """All v4 data sections: the arena plus the flattened cut tree.

    TL keeps its bag metadata in the JSON header (it is not scanned at
    query time), so only CTL/CTLS grow the three tree sections.
    """
    sections = list(_section_arrays(index))
    if isinstance(index, (CTLIndex, CTLSIndex)):
        parents, node_offsets, flat_vertices = index.tree.to_flat()
        sections.append(("tree_parents", array("q", parents)))
        sections.append(("tree_blocks", array("q", node_offsets)))
        sections.append(("tree_vertices", array("q", flat_vertices)))
    return sections


def _section_layout_v4(header: dict) -> List[Tuple[str, str, int]]:
    """``(name, typecode, item count)`` per v4 section, in table order."""
    layout = _section_layout(header["arena"])
    tree_flat = header.get("tree_flat")
    if tree_flat is not None:
        nodes = tree_flat["nodes"]
        layout.append(("tree_parents", "q", nodes))
        layout.append(("tree_blocks", "q", nodes + 1))
        layout.append(("tree_vertices", "q", tree_flat["vertices"]))
    return layout


def _write_binary_v4(index, handle, build_info: dict = None) -> None:
    """The v4 layout: header + section table + aligned sections + footer.

    Section offsets are rounded up to :data:`_ALIGN` with zero padding,
    so every buffer can be handed to ``memoryview.cast``/``np.frombuffer``
    straight out of an ``mmap`` with no copy.  The header CRC covers
    the fixed prefix, the JSON blob, *and* the binary section table —
    a flipped offset is caught before any section is trusted.
    """
    header = _binary_header(index)
    header.pop("tree", None)  # the cut tree ships as binary sections
    header["version"] = _BINARY_VERSION4
    header["align"] = _ALIGN
    if build_info is not None:
        header["build_info"] = build_info
    sections = _v4_sections(index)
    if isinstance(index, (CTLIndex, CTLSIndex)):
        header["tree_flat"] = {
            "nodes": index.tree.num_nodes,
            "vertices": len(sections[-1][1]),
        }
    header["section_names"] = [name for name, _ in sections]
    header["sections"] = {name: _buf_nbytes(buf) for name, buf in sections}
    blob = json.dumps(header).encode("utf-8")
    prefix = _MAGIC4 + struct.pack("<Q", len(blob))
    pos = len(prefix) + len(blob) + len(sections) * _SECTION_ENTRY.size
    entries = []
    for _, buf in sections:
        offset = -(-pos // _ALIGN) * _ALIGN
        entries.append((offset, _buf_nbytes(buf)))
        pos = offset + _buf_nbytes(buf)
    table = b"".join(_SECTION_ENTRY.pack(*entry) for entry in entries)
    crcs = [zlib.crc32(table, zlib.crc32(blob, zlib.crc32(prefix)))]
    handle.write(prefix)
    handle.write(blob)
    handle.write(table)
    cursor = len(prefix) + len(blob) + len(table)
    for (_, buf), (offset, nbytes) in zip(sections, entries):
        handle.write(b"\x00" * (offset - cursor))
        handle.write(buf)
        crcs.append(zlib.crc32(buf))
        cursor = offset + nbytes
    total = cursor + _footer4_len(len(sections))
    handle.write(struct.pack(f"<{len(crcs)}I", *crcs))
    handle.write(_FOOTER4_TAIL.pack(len(sections), total))
    handle.write(_END_MAGIC4)


def _read_v4_layout(handle, path: PathLike, size: int):
    """Validate the v4 envelope; returns header, table entries, CRCs.

    Footer-first, like v3: the end marker, recorded length, section
    count, and header CRC (which covers the section table) are all
    checked before the JSON or any offset is trusted.
    """
    min_size = len(_MAGIC4) + 8 + _footer4_len(0)
    if size < min_size:
        raise IndexCorruptError(
            path, "file", "file shorter than the v4 envelope",
            expected=f">= {min_size} bytes", actual=f"{size} bytes",
        )
    handle.seek(size - _FOOTER4_TAIL_LEN)
    tail = handle.read(_FOOTER4_TAIL_LEN)
    if tail[_FOOTER4_TAIL.size:] != _END_MAGIC4:
        raise IndexCorruptError(
            path, "footer", "missing end marker — truncated or overwritten",
            expected=_END_MAGIC4.decode("latin-1"),
            actual=tail[_FOOTER4_TAIL.size:].decode("latin-1", "replace"),
        )
    nsections, total = _FOOTER4_TAIL.unpack(tail[:_FOOTER4_TAIL.size])
    if total != size:
        raise IndexCorruptError(
            path, "file", "recorded length does not match the file",
            expected=f"{total} bytes", actual=f"{size} bytes",
        )
    if not 1 <= nsections <= _MAX_SECTIONS:
        raise IndexCorruptError(
            path, "footer", "implausible section count",
            expected=f"1..{_MAX_SECTIONS}", actual=str(nsections),
        )
    footer_len = _footer4_len(nsections)
    if size < len(_MAGIC4) + 8 + footer_len:
        raise IndexCorruptError(
            path, "footer", "footer overlaps the header prefix",
            expected=f">= {len(_MAGIC4) + 8 + footer_len} bytes",
            actual=f"{size} bytes",
        )
    handle.seek(size - footer_len)
    crcs = list(struct.unpack(
        f"<{nsections + 1}I", handle.read(4 * (nsections + 1))
    ))
    handle.seek(0)
    prefix = handle.read(len(_MAGIC4) + 8)
    (header_len,) = struct.unpack("<Q", prefix[len(_MAGIC4):])
    table_len = nsections * _SECTION_ENTRY.size
    if len(prefix) + header_len + table_len + footer_len > size:
        raise IndexCorruptError(
            path, "header", "header length field exceeds file size",
            expected=(
                f"<= {size - len(prefix) - table_len - footer_len} bytes"
            ),
            actual=f"{header_len} bytes",
        )
    blob = handle.read(header_len)
    table = handle.read(table_len)
    header_crc = zlib.crc32(table, zlib.crc32(blob, zlib.crc32(prefix)))
    if crcs[0] != header_crc:
        raise IndexCorruptError(
            path, "header", "checksum mismatch",
            expected=f"crc32 {crcs[0]:#010x}", actual=f"{header_crc:#010x}",
        )
    try:
        header = json.loads(blob)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"{path}: undecodable v4 header: {exc}"
        ) from exc
    entries = [
        _SECTION_ENTRY.unpack_from(table, i * _SECTION_ENTRY.size)
        for i in range(nsections)
    ]
    data_start = len(prefix) + header_len + table_len
    return header, entries, crcs, data_start, size - footer_len


def _check_v4_entries(path, layout, entries, data_start, data_end):
    """Cross-check the section table against the header's declared
    layout: sizes, 8-byte alignment, file bounds, and no overlaps."""
    if len(entries) != len(layout):
        raise IndexCorruptError(
            path, "footer", "section count does not match the header",
            expected=f"{len(layout)} sections", actual=f"{len(entries)}",
        )
    spans = []
    for (name, typecode, length), (offset, nbytes) in zip(layout, entries):
        want = length * array(typecode).itemsize
        if nbytes != want:
            raise IndexCorruptError(
                path, name, "section size does not match the header",
                expected=f"{want} bytes", actual=f"{nbytes} bytes",
            )
        if offset % 8 != 0:
            raise IndexCorruptError(
                path, name, "unaligned section",
                expected="8-byte aligned offset", actual=f"offset {offset}",
            )
        if offset < data_start or offset + nbytes > data_end:
            raise IndexCorruptError(
                path, name, "section out of bounds",
                expected=f"within [{data_start}, {data_end})",
                actual=f"[{offset}, {offset + nbytes})",
            )
        spans.append((offset, offset + nbytes, name))
    spans.sort()
    for (_, prev_end, prev_name), (start, _, name) in zip(spans, spans[1:]):
        if start < prev_end:
            raise IndexCorruptError(
                path, name, f"section overlaps {prev_name}",
                expected=f"offset >= {prev_end}", actual=f"offset {start}",
            )


def _check_v4_padding(path, handle, entries, data_start, data_end):
    """Require the alignment padding between sections to be zero.

    Padding is the only part of a v4 file no section CRC covers; a
    verifying load refuses non-zero bytes there so that *every* byte
    of the file is under some check.
    """
    spans = sorted((offset, offset + nbytes) for offset, nbytes in entries)
    cursor = data_start
    for start, end in spans + [(data_end, data_end)]:
        if start > cursor:
            handle.seek(cursor)
            remaining = start - cursor
            while remaining:
                chunk = handle.read(min(remaining, 1 << 20))
                if not chunk:
                    break
                if chunk.count(0) != len(chunk):
                    raise IndexCorruptError(
                        path, "padding",
                        "non-zero bytes in alignment padding",
                        expected="zeroes",
                        actual=f"dirty bytes after offset {cursor}",
                    )
                remaining -= len(chunk)
        cursor = max(cursor, end)


def _index_from_binary_v4(path: PathLike, header: dict, arena, views):
    """Construct the index from a v4 container's buffers."""
    kind = header.get("type")
    if kind in ("CTLS", "CTL"):
        tree = CutTree.from_flat(
            views["tree_parents"], views["tree_blocks"],
            views["tree_vertices"],
        )
        if kind == "CTLS":
            return CTLSIndex(
                tree, arena, BuildStats(), header["num_vertices"],
                header["num_edges"], header["strategy"],
            )
        return CTLIndex(
            tree, arena, BuildStats(), header["num_vertices"],
            header["num_edges"],
        )
    if kind == "TL":
        return _tl_from_payload(header, None, None, arena=arena)
    raise SerializationError(f"{path}: unknown index type {kind!r}")


def _load_binary_v4(
    path: PathLike, size: int, *, use_mmap: bool = True, verify: bool = None
):
    """Load a v4 container, zero-copy via mmap when possible.

    The mapping (when used) outlives this function: the arena keeps a
    reference in ``arena.region`` and every section view keeps the
    mapping's pages alive, so nothing here closes it explicitly.
    """
    handle = open(path, "rb")
    try:
        header, entries, crcs, data_start, data_end = _read_v4_layout(
            handle, path, size
        )
        meta = _check_binary_header(path, header, _BINARY_VERSION4)
        layout = _section_layout_v4(header)
        _check_v4_entries(path, layout, entries, data_start, data_end)
        swap = meta["byteorder"] != sys.byteorder
        region = None
        views = {}
        if use_mmap and not swap:
            region = _mmaplib.mmap(
                handle.fileno(), 0, access=_mmaplib.ACCESS_READ
            )
            base = memoryview(region)
            for (name, typecode, _), (offset, nbytes) in zip(
                layout, entries
            ):
                window = base[offset:offset + nbytes]
                if verify:
                    got = zlib.crc32(window)
                    want = crcs[1 + len(views)]
                    if got != want:
                        raise IndexCorruptError(
                            path, name, "checksum mismatch",
                            expected=f"crc32 {want:#010x}",
                            actual=f"{got:#010x}",
                        )
                views[name] = window.cast(typecode)
        else:
            # Heap load: cross-endian files or an explicit mmap opt-out.
            # Always verified — we are reading every byte anyway.
            for index_no, ((name, typecode, _), (offset, nbytes)) in (
                enumerate(zip(layout, entries))
            ):
                handle.seek(offset)
                raw = handle.read(nbytes)
                if len(raw) != nbytes:
                    raise IndexCorruptError(
                        path, name, "truncated section",
                        expected=f"{nbytes} bytes",
                        actual=f"{len(raw)} bytes",
                    )
                got = zlib.crc32(raw)
                if got != crcs[1 + index_no]:
                    raise IndexCorruptError(
                        path, name, "checksum mismatch",
                        expected=f"crc32 {crcs[1 + index_no]:#010x}",
                        actual=f"{got:#010x}",
                    )
                section = array(typecode)
                section.frombytes(raw)
                if swap:
                    section.byteswap()
                views[name] = section
        if verify or not (use_mmap and not swap):
            _check_v4_padding(path, handle, entries, data_start, data_end)
    finally:
        handle.close()
    arena = LabelArena(
        list(views["vertices"]), views["offsets"], views["dist"],
        views["count"], meta["overflow_positions"],
        meta["overflow_counts"], region=region,
    )
    index = _index_from_binary_v4(path, header, arena, views)
    _attach_provenance(
        index, path, format_version=_BINARY_VERSION4,
        build_info=header.get("build_info"),
        sections=header.get("sections"),
    )
    return index


def _check_binary_header(path: PathLike, header: dict, version: int) -> dict:
    """Shared format/version/typecode validation; returns arena meta."""
    if header.get("format") != _FORMAT:
        raise SerializationError(f"{path}: not a {_FORMAT} file")
    if header.get("version") != version:
        raise SerializationError(
            f"{path}: unsupported binary version {header.get('version')}"
        )
    meta = header["arena"]
    typecode = meta["dist_typecode"]
    if typecode not in ("q", "d"):
        raise SerializationError(
            f"{path}: unsupported distance typecode {typecode!r}"
        )
    return meta


def _section_layout(meta: dict) -> List[Tuple[str, str, int]]:
    """``(name, typecode, item count)`` per data section, in file order."""
    n = meta["num_vertices"]
    entries = meta["num_entries"]
    return [
        ("vertices", "q", n),
        ("offsets", "q", n + 1),
        ("dist", meta["dist_typecode"], entries),
        ("count", "q", entries),
    ]


def _index_from_binary(path: PathLike, header: dict, arena: LabelArena):
    """Construct the in-memory index from a parsed binary container."""
    kind = header.get("type")
    if kind == "CTLS":
        return CTLSIndex(
            _tree_from_payload(header["tree"]),
            arena,
            BuildStats(),
            header["num_vertices"],
            header["num_edges"],
            header["strategy"],
        )
    if kind == "CTL":
        return CTLIndex(
            _tree_from_payload(header["tree"]),
            arena,
            BuildStats(),
            header["num_vertices"],
            header["num_edges"],
        )
    if kind == "TL":
        return _tl_from_payload(header, None, None, arena=arena)
    raise SerializationError(f"{path}: unknown index type {kind!r}")


def _load_binary_v2(path: PathLike, size: int):
    """Load a legacy v2 container, with typed truncation errors."""
    with open(path, "rb") as handle:
        prefix = handle.read(len(_MAGIC) + 8)
        if len(prefix) < len(_MAGIC) + 8:
            raise IndexCorruptError(
                path, "header", "file shorter than the fixed prefix",
                expected=f"{len(_MAGIC) + 8} bytes",
                actual=f"{len(prefix)} bytes",
            )
        (header_len,) = struct.unpack("<Q", prefix[len(_MAGIC):])
        if len(prefix) + header_len > size:
            raise IndexCorruptError(
                path, "header", "header length field exceeds file size",
                expected=f"{len(prefix) + header_len} bytes",
                actual=f"{size} bytes",
            )
        try:
            header = json.loads(handle.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexCorruptError(
                path, "header", f"corrupt binary header: {exc}"
            ) from exc
        meta = _check_binary_header(path, header, _BINARY_VERSION)
        layout = _section_layout(meta)
        expected = len(prefix) + header_len + sum(
            length * array(typecode).itemsize
            for _, typecode, length in layout
        )
        if size < expected:
            raise IndexCorruptError(
                path, "file", "truncated index file",
                expected=f"{expected} bytes", actual=f"{size} bytes",
            )
        swap = meta["byteorder"] != sys.byteorder
        arrays = {}
        for name, typecode, length in layout:
            section = array(typecode)
            try:
                section.fromfile(handle, length)
            except EOFError as exc:
                raise IndexCorruptError(
                    path, name, f"truncated section: {exc}",
                    expected=f"{length * section.itemsize} bytes",
                ) from exc
            if swap:
                section.byteswap()
            arrays[name] = section
    arena = LabelArena(
        list(arrays["vertices"]), arrays["offsets"], arrays["dist"],
        arrays["count"], meta["overflow_positions"],
        meta["overflow_counts"],
    )
    index = _index_from_binary(path, header, arena)
    _attach_provenance(index, path, format_version=_BINARY_VERSION)
    return index


def _read_v3_layout(handle, path: PathLike, size: int):
    """Validate the fixed v3 structure; returns header parts + footer.

    Reads the footer *before* trusting the header JSON: the header CRC
    is verified first, so a bit flip inside the header can never steer
    section parsing (or JSON decoding) off a cliff.
    """
    min_size = len(_MAGIC3) + 8 + _FOOTER_LEN
    if size < min_size:
        raise IndexCorruptError(
            path, "file", "file shorter than the v3 envelope",
            expected=f">= {min_size} bytes", actual=f"{size} bytes",
        )
    prefix = handle.read(len(_MAGIC3) + 8)
    (header_len,) = struct.unpack("<Q", prefix[len(_MAGIC3):])
    if len(prefix) + header_len + _FOOTER_LEN > size:
        raise IndexCorruptError(
            path, "header", "header length field exceeds file size",
            expected=f"<= {size - len(prefix) - _FOOTER_LEN} bytes",
            actual=f"{header_len} bytes",
        )
    blob = handle.read(header_len)
    header_crc = zlib.crc32(blob, zlib.crc32(prefix))
    handle.seek(size - _FOOTER_LEN)
    footer = handle.read(_FOOTER_LEN)
    if footer[_FOOTER_STRUCT.size:] != _END_MAGIC3:
        raise IndexCorruptError(
            path, "footer", "missing end marker — truncated or overwritten",
            expected=_END_MAGIC3.decode("latin-1"),
            actual=footer[_FOOTER_STRUCT.size:].decode("latin-1", "replace"),
        )
    *crcs, total = _FOOTER_STRUCT.unpack(footer[:_FOOTER_STRUCT.size])
    if total != size:
        raise IndexCorruptError(
            path, "file", "recorded length does not match the file",
            expected=f"{total} bytes", actual=f"{size} bytes",
        )
    if crcs[0] != header_crc:
        raise IndexCorruptError(
            path, "header", "checksum mismatch",
            expected=f"crc32 {crcs[0]:#010x}", actual=f"{header_crc:#010x}",
        )
    try:
        header = json.loads(blob)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but JSON did not — a writer bug, not bit rot.
        raise SerializationError(
            f"{path}: undecodable v3 header: {exc}"
        ) from exc
    return len(prefix) + header_len, header, crcs


def _load_binary_v3(path: PathLike, size: int):
    """Load a v3 container, verifying every checksum along the way."""
    with open(path, "rb") as handle:
        data_start, header, crcs = _read_v3_layout(handle, path, size)
        meta = _check_binary_header(path, header, _BINARY_VERSION3)
        layout = _section_layout(meta)
        section_bytes = sum(
            length * array(typecode).itemsize
            for _, typecode, length in layout
        )
        if data_start + section_bytes + _FOOTER_LEN != size:
            raise IndexCorruptError(
                path, "file", "section sizes do not add up to the file",
                expected=f"{data_start + section_bytes + _FOOTER_LEN} bytes",
                actual=f"{size} bytes",
            )
        handle.seek(data_start)
        swap = meta["byteorder"] != sys.byteorder
        arrays = {}
        for (name, typecode, length), want_crc in zip(layout, crcs[1:]):
            nbytes = length * array(typecode).itemsize
            raw = handle.read(nbytes)
            if len(raw) != nbytes:
                raise IndexCorruptError(
                    path, name, "truncated section",
                    expected=f"{nbytes} bytes", actual=f"{len(raw)} bytes",
                )
            got_crc = zlib.crc32(raw)
            if got_crc != want_crc:
                raise IndexCorruptError(
                    path, name, "checksum mismatch",
                    expected=f"crc32 {want_crc:#010x}",
                    actual=f"{got_crc:#010x}",
                )
            section = array(typecode)
            section.frombytes(raw)
            if swap:
                section.byteswap()
            arrays[name] = section
    arena = LabelArena(
        list(arrays["vertices"]), arrays["offsets"], arrays["dist"],
        arrays["count"], meta["overflow_positions"],
        meta["overflow_counts"],
    )
    index = _index_from_binary(path, header, arena)
    _attach_provenance(
        index, path, format_version=_BINARY_VERSION3,
        build_info=header.get("build_info"),
        sections=header.get("sections"),
    )
    return index


# ----------------------------------------------------------------------
# integrity verification (repro-spc verify-index)
# ----------------------------------------------------------------------
def verify_index_file(path: PathLike) -> List[Tuple[str, bool, str]]:
    """Validate an index file's integrity; never raises for corruption.

    Returns a per-section report ``[(section, ok, detail), ...]``.  For
    a v3 or v4 container every section is checked (checksum + length —
    and, for v4, alignment and bounds) even after an earlier one fails,
    so one run reports all the damage; v1 and v2 files (no checksums)
    get a single structural ``file`` entry from attempting a full load.

    The envelope is opened lazily — footer and header only — and each
    section is then streamed through CRC32 without ever materialising
    the index, so verification of a multi-gigabyte file needs constant
    memory.
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC3))
    except OSError as exc:
        return [("file", False, str(exc))]
    if magic == _MAGIC4:
        return _verify_v4(path, size)
    if magic != _MAGIC3:
        try:
            load_index(path)
        except SerializationError as exc:
            return [("file", False, str(exc))]
        except Exception as exc:  # pragma: no cover - defensive
            return [("file", False, f"{type(exc).__name__}: {exc}")]
        return [("file", True, "structural load ok (no checksums)")]
    report: List[Tuple[str, bool, str]] = []
    with open(path, "rb") as handle:
        try:
            data_start, header, crcs = _read_v3_layout(handle, path, size)
            meta = _check_binary_header(path, header, _BINARY_VERSION3)
        except SerializationError as exc:
            section = getattr(exc, "section", "header")
            return [(section, False, str(exc))]
        report.append(("header", True, "checksum ok"))
        handle.seek(data_start)
        for (name, typecode, length), want_crc in zip(
            _section_layout(meta), crcs[1:]
        ):
            nbytes = length * array(typecode).itemsize
            raw = handle.read(nbytes)
            if len(raw) != nbytes:
                report.append((
                    name, False,
                    f"truncated: expected {nbytes} bytes, "
                    f"got {len(raw)}",
                ))
                continue
            got_crc = zlib.crc32(raw)
            if got_crc == want_crc:
                report.append((name, True, f"checksum ok ({nbytes} bytes)"))
            else:
                report.append((
                    name, False,
                    f"checksum mismatch: expected crc32 "
                    f"{want_crc:#010x}, got {got_crc:#010x}",
                ))
    return report


def _verify_v4(path: PathLike, size: int) -> List[Tuple[str, bool, str]]:
    """Full-damage report for a v4 container (checksums + layout)."""
    report: List[Tuple[str, bool, str]] = []
    with open(path, "rb") as handle:
        try:
            header, entries, crcs, data_start, data_end = _read_v4_layout(
                handle, path, size
            )
            meta = _check_binary_header(path, header, _BINARY_VERSION4)
            layout = _section_layout_v4(header)
        except SerializationError as exc:
            section = getattr(exc, "section", "header")
            return [(section, False, str(exc))]
        report.append(("header", True, "checksum ok"))
        if len(entries) != len(layout):
            report.append((
                "footer", False,
                f"section count mismatch: header declares {len(layout)} "
                f"sections, footer records {len(entries)}",
            ))
            return report
        spans = sorted(
            (offset, offset + nbytes, name)
            for (name, _, _), (offset, nbytes) in zip(layout, entries)
        )
        overlapping = set()
        for (_, prev_end, prev_name), (start, _, name) in zip(
            spans, spans[1:]
        ):
            if start < prev_end:
                overlapping.add(name)
                report.append((
                    name, False, f"section overlaps {prev_name}",
                ))
        for i, ((name, typecode, length), (offset, nbytes)) in enumerate(
            zip(layout, entries)
        ):
            problems = []
            want_bytes = length * array(typecode).itemsize
            if nbytes != want_bytes:
                problems.append(
                    f"size mismatch: header implies {want_bytes} bytes, "
                    f"table records {nbytes}"
                )
            if offset % 8 != 0:
                problems.append(f"unaligned offset {offset}")
            if offset < data_start or offset + nbytes > data_end:
                problems.append(
                    f"out of bounds: [{offset}, {offset + nbytes}) not "
                    f"within [{data_start}, {data_end})"
                )
            if problems:
                report.append((name, False, "; ".join(problems)))
                continue
            if name in overlapping:
                continue
            handle.seek(offset)
            remaining = nbytes
            crc = 0
            while remaining:
                chunk = handle.read(min(remaining, 1 << 20))
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
                remaining -= len(chunk)
            if remaining:
                report.append((
                    name, False,
                    f"truncated: {remaining} of {nbytes} bytes missing",
                ))
            elif crc != crcs[1 + i]:
                report.append((
                    name, False,
                    f"checksum mismatch: expected crc32 "
                    f"{crcs[1 + i]:#010x}, got {crc:#010x}",
                ))
            else:
                report.append((name, True, f"checksum ok ({nbytes} bytes)"))
        # Alignment padding between sections is outside every section
        # CRC; require it to be zero so no byte of the file can flip
        # silently.
        dirty = 0
        total_pad = 0
        cursor = data_start
        for start, end, _ in spans:
            if start > cursor:
                handle.seek(cursor)
                remaining = start - cursor
                total_pad += remaining
                while remaining:
                    chunk = handle.read(min(remaining, 1 << 20))
                    if not chunk:
                        break
                    dirty += len(chunk) - chunk.count(0)
                    remaining -= len(chunk)
            cursor = max(cursor, end)
        if data_end > cursor:
            handle.seek(cursor)
            tail = handle.read(data_end - cursor)
            total_pad += len(tail)
            dirty += len(tail) - tail.count(0)
        if dirty:
            report.append((
                "padding", False,
                f"{dirty} non-zero bytes in alignment padding",
            ))
        else:
            report.append(
                ("padding", True, f"all zero ({total_pad} bytes)")
            )
    return report


# ----------------------------------------------------------------------
# lazy inspection (repro-spc stats)
# ----------------------------------------------------------------------
def describe_index(path: PathLike) -> dict:
    """Structural summary of an index file without loading its labels.

    For binary containers (v2/v3/v4) only the footer and JSON header
    are read — the dist/count sections, usually >99% of the file, are
    never touched.  A v4 CTL/CTLS file additionally maps its three
    small flat-tree sections on demand to recover tree height/width.
    The v1 JSON document has no lazy path and falls back to a full
    :func:`load_index`.

    Returns a dict with ``type``, ``format_version``, ``num_vertices``,
    ``num_edges``, ``tree_nodes``, ``height``, ``width``,
    ``total_label_entries``, ``size_bytes`` (the paper's 32-bit label
    model, matching ``index.stats()``), ``file_bytes``, plus
    ``sections`` and ``build_info`` when the container records them.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC3))
        if magic == _MAGIC4:
            header, entries, _, _, _ = _read_v4_layout(handle, path, size)
            version = _BINARY_VERSION4
        elif magic == _MAGIC3:
            handle.seek(0)
            _, header, _ = _read_v3_layout(handle, path, size)
            version = _BINARY_VERSION3
        elif magic == _MAGIC:
            prefix = handle.read(8)
            if len(prefix) < 8:
                raise IndexCorruptError(
                    path, "header", "file shorter than the fixed prefix"
                )
            (header_len,) = struct.unpack("<Q", prefix)
            try:
                header = json.loads(handle.read(header_len))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise IndexCorruptError(
                    path, "header", f"corrupt binary header: {exc}"
                ) from exc
            version = _BINARY_VERSION
        else:
            index = load_index(path)
            stats = index.stats()
            provenance = getattr(index, "provenance", {}) or {}
            return {
                "type": type(index).__name__.replace("Index", ""),
                "format_version": provenance.get("format_version", _VERSION),
                "num_vertices": stats.num_vertices,
                "num_edges": stats.num_edges,
                "tree_nodes": stats.tree_nodes,
                "height": stats.height,
                "width": stats.width,
                "total_label_entries": stats.total_label_entries,
                "size_bytes": stats.size_bytes,
                "file_bytes": size,
                "sections": None,
                "build_info": provenance.get("build_info"),
                "lazy": False,
            }
        meta = _check_binary_header(path, header, version)
        kind = header.get("type")
        entries_count = meta["num_entries"]
        summary = {
            "type": kind,
            "format_version": version,
            "num_vertices": header.get("num_vertices", meta["num_vertices"]),
            "num_edges": header["num_edges"],
            "total_label_entries": entries_count,
            "size_bytes": 8 * entries_count,
            "file_bytes": size,
            "sections": header.get("sections"),
            "build_info": header.get("build_info"),
            "lazy": True,
        }
        if kind == "TL":
            parent = {
                int(v): p for v, p in header["parent"].items()
            }
            depth = {}
            for v in reversed(header["order"]):
                p = parent[v]
                depth[v] = 0 if p is None else depth[p] + 1
            summary["tree_nodes"] = meta["num_vertices"]
            summary["height"] = max(depth.values(), default=-1) + 1
            summary["width"] = max(
                (len(bag) + 1 for bag in header["bags"].values()), default=0
            )
        elif "tree" in header:
            # v2/v3: the tree payload is already in the header.
            nodes = header["tree"]["nodes"]
            block_end = []
            height = 0
            width = 0
            for node in nodes:
                own = len(node["vertices"])
                parent = node["parent"]
                end = own + (block_end[parent] if parent >= 0 else 0)
                block_end.append(end)
                height = max(height, end)
                width = max(width, own)
            summary["tree_nodes"] = len(nodes)
            summary["height"] = height
            summary["width"] = width
        else:
            # v4: map just the two small tree-shape sections on demand.
            tree_flat = header["tree_flat"]
            names = header["section_names"]
            by_name = dict(zip(names, entries))
            region = _mmaplib.mmap(
                handle.fileno(), 0, access=_mmaplib.ACCESS_READ
            )
            try:
                base = memoryview(region)
                off, nbytes = by_name["tree_parents"]
                parents = base[off:off + nbytes].cast("q")
                off, nbytes = by_name["tree_blocks"]
                blocks = base[off:off + nbytes].cast("q")
                block_end = []
                height = 0
                width = 0
                for i, parent in enumerate(parents):
                    own = blocks[i + 1] - blocks[i]
                    end = own + (block_end[parent] if parent >= 0 else 0)
                    block_end.append(end)
                    height = max(height, end)
                    width = max(width, own)
                del parents, blocks, base
            finally:
                region.close()
            summary["tree_nodes"] = tree_flat["nodes"]
            summary["height"] = height
            summary["width"] = width
    return summary

"""Dynamic edge-weight updates (paper §IV-D.2).

Road topology rarely changes, but edge weights (travel times) do.  This
module keeps indexes consistent under weight updates.

:class:`DynamicCTL` maintains a CTL-Index *exactly and incrementally*.
The CTL cut tree is built from **local topological cuts** of induced
subgraphs, so no weight change can ever invalidate the tree — only
labels need repair.  A CTL label ``(u -> c)`` is confined to the induced
subgraph of ``c``'s subtree, hence an update of edge ``(a, b)`` can only
affect nodes whose subtree contains *both* endpoints: the common
ancestors of ``X(a)`` and ``X(b)`` — a single root path.  Those nodes'
label blocks are recomputed from scratch (the same SSSPC-and-remove
sweep as construction), everything else is untouched.

:class:`DynamicCTLS` handles the CTLS-Index, whose GSP cuts are
*shortest-path* cuts: a weight change can re-route shortest paths around
a cut and invalidate the tree itself (the situation §IV-D.2 detects via
new-shortcut checks).  Exact incremental maintenance is only sketched in
the paper; this implementation repairs by rebuilding, which is always
correct, and records how often rebuilds happen so applications can batch
updates.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import repro.obs as obs
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.exceptions import EdgeError
from repro.graph.graph import Graph
from repro.search.dijkstra import ssspc
from repro.tree.cut_tree import TreeNode
from repro.types import INF, QueryResult, Vertex, Weight

#: One edge-weight update: ``(a, b, new_weight)``.
WeightUpdate = Tuple[Vertex, Vertex, Weight]


class DynamicCTL:
    """A CTL-Index kept exactly consistent under edge weight updates."""

    def __init__(self, graph: Graph, *, beta: float = 0.2, leaf_size: int = 4,
                 seed: int = 0) -> None:
        #: The live graph; updated in place by :meth:`update_weight`.
        self.graph = graph.copy()
        self.index = CTLIndex.build(
            self.graph, beta=beta, leaf_size=leaf_size, seed=seed
        )
        #: Tree nodes whose labels were recomputed by the last update.
        self.last_repaired_nodes = 0

    def query(self, source: Vertex, target: Vertex) -> QueryResult:
        """Answer ``Q(s, t)`` on the current graph."""
        return self.index.query(source, target)

    def update_weight(self, a: Vertex, b: Vertex, new_weight: Weight) -> None:
        """Set the weight of the existing edge ``(a, b)``; repair labels.

        Handles both increases and decreases.  Raises ``EdgeError`` if
        the edge does not exist or the weight is not positive.
        """
        self.update_weights([(a, b, new_weight)])

    def update_weights(self, updates: Iterable[WeightUpdate]) -> int:
        """Apply a batch of weight updates with one arena reseal.

        Updates are validated up front (``EdgeError`` before any weight
        is written), no-op writes are skipped, and tree nodes affected
        by several edges of the batch are repaired once.  The packed
        arena is re-sealed a single time at the end, so a batch of ``k``
        updates costs one ``refresh_arena()`` instead of ``k``.

        Returns the number of tree nodes repaired (also stored in
        :attr:`last_repaired_nodes`).
        """
        batch = list(updates)
        for a, b, new_weight in batch:
            if not self.graph.has_edge(a, b):
                raise EdgeError(f"edge ({a}, {b}) is not in the graph")
            if new_weight <= 0:
                raise EdgeError(
                    f"new weight must be positive, got {new_weight}"
                )
        affected = {}
        for a, b, new_weight in batch:
            if self.graph.weight(a, b) == new_weight:
                continue
            count = self.graph.count(a, b)
            self.graph.add_edge(a, b, new_weight, count)
            for node in self._affected_nodes(a, b):
                affected[node.index] = node
        self.last_repaired_nodes = len(affected)
        if affected:
            self._repair_nodes(
                [affected[i] for i in sorted(affected)]
            )
        return self.last_repaired_nodes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _affected_nodes(self, a: Vertex, b: Vertex) -> List[TreeNode]:
        """Common ancestors of ``X(a)`` and ``X(b)``, root first."""
        tree = self.index.tree
        lca = tree.lca_node(a, b)
        return list(tree.ancestors(lca.index))

    def _subtree_vertices(self, root: TreeNode) -> Set[Vertex]:
        tree = self.index.tree
        result: Set[Vertex] = set()
        stack = [root.index]
        while stack:
            at = stack.pop()
            node = tree.node(at)
            result.update(node.vertices)
            stack.extend(node.children)
        return result

    def _repair_nodes(self, affected: List[TreeNode]) -> None:
        """Recompute the label blocks of every node in ``affected``."""
        labels = self.index.labels

        for node in affected:
            members = self._subtree_vertices(node)
            subgraph = self.graph.induced_subgraph(members)
            start = node.block_start
            for offset, c in enumerate(node.vertices):
                dist, count = ssspc(subgraph, c)
                position = start + offset
                for u in members:
                    if not subgraph.has_vertex(u):
                        continue  # a higher-ranked cut vertex, already done
                    labels.dist[u][position] = dist.get(u, INF)
                    labels.count[u][position] = count.get(u, 0)
                subgraph.remove_vertex(c)

        # The repairs above edit the mutable store; the packed arena the
        # query engine scans must be re-sealed to match.
        self.index.refresh_arena()


class DynamicCTLS:
    """A CTLS-Index kept consistent by (counted) rebuilds on update."""

    def __init__(self, graph: Graph, *, beta: float = 0.2, leaf_size: int = 4,
                 seed: int = 0, strategy: str = "cutsearch") -> None:
        self.graph = graph.copy()
        self._params = {
            "beta": beta, "leaf_size": leaf_size, "seed": seed,
            "strategy": strategy,
        }
        self.index = CTLSIndex.build(self.graph, **self._params)
        #: Number of rebuilds triggered since creation.
        self.rebuilds = 0
        #: Effective weight updates applied since the last rebuild.
        #: Callers can watch this to schedule :meth:`refresh` instead of
        #: paying the implicit rebuild on a query's critical path.
        self.pending_updates = 0

    @property
    def _dirty(self) -> bool:
        return self.pending_updates > 0

    def query(self, source: Vertex, target: Vertex) -> QueryResult:
        """Answer ``Q(s, t)``, rebuilding first if updates are pending."""
        if self.pending_updates:
            self.refresh()
        return self.index.query(source, target)

    def update_weight(self, a: Vertex, b: Vertex, new_weight: Weight) -> None:
        """Set the weight of edge ``(a, b)``; marks the index dirty.

        Rebuilding is deferred until the next query (or an explicit
        :meth:`refresh`), so bursts of updates cost one rebuild.
        """
        if not self.graph.has_edge(a, b):
            raise EdgeError(f"edge ({a}, {b}) is not in the graph")
        if new_weight <= 0:
            raise EdgeError(f"new weight must be positive, got {new_weight}")
        count = self.graph.count(a, b)
        if self.graph.weight(a, b) == new_weight:
            return
        self.graph.add_edge(a, b, new_weight, count)
        self.pending_updates += 1

    def refresh(self, force: bool = False) -> bool:
        """Rebuild the index now if updates are pending (or ``force``).

        Returns ``True`` when a rebuild actually happened, so schedulers
        can tell a real rebuild from a cheap no-op call.  Each rebuild
        increments the ``dynamic.rebuilds`` metric on the active
        recorder, letting the serve tier surface rebuild pressure.
        """
        if not self.pending_updates and not force:
            return False
        self.index = CTLSIndex.build(self.graph, **self._params)
        self.rebuilds += 1
        self.pending_updates = 0
        obs.recorder().incr("dynamic.rebuilds")
        return True

"""CTLS-Index: hub labels on a GSP-cut tree (paper §IV).

Every tree node of the CTLS-Index is a *global shortest path cut*
(Definition 4.1): all shortest paths of the original graph between the
two subtrees pass through it.  This is achieved by recursing on
count-preserved graphs (SPC-Graphs) instead of induced subgraphs — the
shortcuts inserted by :mod:`repro.core.spc_graph_build` keep distances
and counts of the original network intact, so BalancedCut on the
SPC-Graph yields a GSP cut of the original graph.

Labels are *strong convex* distances/counts (only same-node
higher-ranked vertices are excluded), which lets CTLS-Query
(Algorithm 3) scan a single tree node — the LCA — instead of all common
ancestors: ``O(w)`` label visits, the paper's headline improvement for
short-distance queries.

Construction strategies (Section IV-C, compared in Exp-4):

* ``"basic"``     — CTLS-Construct: Algorithm 4 from every border vertex.
* ``"pruned"``    — CTLS+-Construct: Algorithm 4 plus threshold pruning.
* ``"cutsearch"`` — CTLS*-Construct: Algorithm 5, search from cut
  vertices plus pruning (the paper's final recommendation and this
  class's default).
"""

from __future__ import annotations

import random
import time
from typing import Optional

import repro.obs as obs
from repro.core.base import BuildStats, IndexStats, SPCIndex
from repro.core.labeling import compute_node_labels
from repro.core.spc_graph_build import (
    BlockOutDist,
    build_spc_graph_basic,
    build_spc_graph_cutsearch,
)
from repro.exceptions import IndexBuildError, IndexQueryError
from repro.graph.graph import Graph
from repro.labels.store import LabelStore
from repro.partition.balanced_cut import balanced_cut
from repro.tree.cut_tree import CutTree
from repro.types import INF, QueryResult, Vertex

STRATEGIES = ("basic", "pruned", "cutsearch")

#: Paper names of the construction variants (Fig. 11/13 legends).
STRATEGY_LABELS = {
    "basic": "CTLS-Construct",
    "pruned": "CTLS+-Construct",
    "cutsearch": "CTLS*-Construct",
}


class CTLSIndex(SPCIndex):
    """GSP-cut-tree hub-labeling index for shortest path counting."""

    name = "CTLS"

    def __init__(
        self,
        tree: CutTree,
        labels: LabelStore,
        build_stats: BuildStats,
        num_vertices: int,
        num_edges: int,
        strategy: str,
    ) -> None:
        self.tree = tree
        self.labels = labels
        self.build_stats = build_stats
        self.strategy = strategy
        self._num_vertices = num_vertices
        self._num_edges = num_edges

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        beta: float = 0.2,
        leaf_size: int = 4,
        seed: int = 0,
        strategy: str = "cutsearch",
        engine: str = "csr",
        rng: Optional[random.Random] = None,
    ) -> "CTLSIndex":
        """Run CTLS-Construct on ``graph`` with the chosen strategy.

        Args:
            graph: road network to index (not modified).
            beta: BalancedCut balance factor (paper default 0.2).
            leaf_size: subgraphs of at most this size become leaf nodes.
            seed: determinism seed (ignored when ``rng`` is given).
            strategy: ``"basic"`` | ``"pruned"`` | ``"cutsearch"``.
            engine: label-computation engine, ``"csr"`` (default) or
                ``"dict"`` (reference); identical output.
        """
        if strategy not in STRATEGIES:
            raise IndexBuildError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if engine not in ("csr", "dict"):
            raise IndexBuildError(f"unknown engine {engine!r}")
        started = time.perf_counter()
        rng = rng or random.Random(seed)
        tree = CutTree()
        labels = LabelStore(graph.vertices())
        rec = obs.build_scope()

        with rec.span(
            "ctls.build",
            n=graph.num_vertices,
            m=graph.num_edges,
            strategy=strategy,
        ):
            stack = [(graph.copy(), -1, 0)]
            while stack:
                pg, parent, depth = stack.pop()
                if pg.num_vertices == 0:
                    continue
                rec.gauge_max("build.peak_edges", pg.num_edges)
                with rec.span(
                    "ctls.build.node", depth=depth, n=pg.num_vertices
                ) as node_span:
                    part = balanced_cut(
                        pg, beta, leaf_size=leaf_size, rng=rng, rec=rec
                    )
                    node_id = tree.add_node(part.cut, parent)
                    node_span.set(node=node_id, cut_size=len(part.cut))

                    # Strong convex labels: SSSPC from each cut vertex over
                    # the SPC-Graph, excluding processed (higher-ranked) cut
                    # vertices.  Ancestor vertices are *not* excluded —
                    # shortcuts represent paths through them, which is
                    # exactly the strong convex semantics.
                    with rec.span(
                        "ctls.build.labels", node=node_id, cut=len(part.cut)
                    ):
                        blocks = compute_node_labels(
                            pg, part.cut, labels, rec, engine=engine
                        )

                    if not part.left and not part.right:
                        continue
                    through_cut = BlockOutDist(blocks)
                    with rec.span("ctls.build.shortcuts", node=node_id):
                        for side in (part.left, part.right):
                            if not side:
                                continue
                            if strategy == "cutsearch":
                                child = build_spc_graph_cutsearch(
                                    pg, side, part.cut, through_cut, rec
                                )
                            elif strategy == "pruned":
                                child = build_spc_graph_basic(
                                    pg, side, rec,
                                    through_cut=through_cut, prune=True,
                                )
                            else:
                                child = build_spc_graph_basic(pg, side, rec)
                            stack.append((child, node_id, depth + 1))

            tree.finalize()
        stats = BuildStats.from_recorder(
            rec,
            seconds=time.perf_counter() - started,
            total_label_entries=labels.total_entries,
        )
        stats.extras["strategy"] = strategy
        return cls(
            tree, labels, stats, graph.num_vertices, graph.num_edges, strategy
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca_depth(self, source: Vertex, target: Vertex):
        try:
            return self.tree.lca_node(source, target).depth
        except KeyError:
            return None

    def _query_scan(self, source: Vertex, target: Vertex):
        """CTLS-Query (Algorithm 3): scan only the LCA node's labels."""
        if source == target:
            if source not in self.labels.dist:
                raise IndexQueryError(f"vertex {source} is not indexed")
            return QueryResult(0, 1), 0
        try:
            start, end = self.tree.lca_block_range(source, target)
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        labels = self.labels
        best = INF
        total = 0
        for d_s, d_t, c_s, c_t in zip(
            labels.dist[source][start:end],
            labels.dist[target][start:end],
            labels.count[source][start:end],
            labels.count[target][start:end],
        ):
            d = d_s + d_t
            if d < best:
                best = d
                total = c_s * c_t
            elif d == best:
                total += c_s * c_t
        if total == 0:
            return QueryResult(INF, 0), end - start
        return QueryResult(best, total), end - start

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Static index shape (32-bit label-entry size model)."""
        return IndexStats(
            num_vertices=self._num_vertices,
            num_edges=self._num_edges,
            tree_nodes=self.tree.num_nodes,
            height=self.tree.height,
            width=self.tree.width,
            total_label_entries=self.labels.total_entries,
            size_bytes=self.labels.size_bytes(),
        )

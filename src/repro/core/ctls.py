"""CTLS-Index: hub labels on a GSP-cut tree (paper §IV).

Every tree node of the CTLS-Index is a *global shortest path cut*
(Definition 4.1): all shortest paths of the original graph between the
two subtrees pass through it.  This is achieved by recursing on
count-preserved graphs (SPC-Graphs) instead of induced subgraphs — the
shortcuts inserted by :mod:`repro.core.spc_graph_build` keep distances
and counts of the original network intact, so BalancedCut on the
SPC-Graph yields a GSP cut of the original graph.

Labels are *strong convex* distances/counts (only same-node
higher-ranked vertices are excluded), which lets CTLS-Query
(Algorithm 3) scan a single tree node — the LCA — instead of all common
ancestors: ``O(w)`` label visits, the paper's headline improvement for
short-distance queries.  Like CTL, the default ``"arena"`` query engine
scans the packed :class:`~repro.labels.LabelArena` by dense id; the
``"dict"`` engine is the retained dict-of-lists reference.

Construction strategies (Section IV-C, compared in Exp-4):

* ``"basic"``     — CTLS-Construct: Algorithm 4 from every border vertex.
* ``"pruned"``    — CTLS+-Construct: Algorithm 4 plus threshold pruning.
* ``"cutsearch"`` — CTLS*-Construct: Algorithm 5, search from cut
  vertices plus pruning (the paper's final recommendation and this
  class's default).
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, Union

import numpy as np

import repro.obs as obs
from repro.core.base import (
    SELF_QUERY_RESULT,
    BuildStats,
    IndexStats,
    SPCIndex,
)
from repro.core.labeling import compute_node_labels
from repro.core.spc_graph_build import (
    BlockOutDist,
    build_spc_graph_basic,
    build_spc_graph_cutsearch,
)
from repro.exceptions import IndexBuildError, IndexQueryError
from repro.graph.graph import Graph
from repro.labels.arena import LabelArena, record_layout_gauges
from repro.labels.store import LabelStore
from repro.partition.balanced_cut import balanced_cut
from repro.tree.cut_tree import CutTree
from repro.types import INF, QueryResult, Vertex

STRATEGIES = ("basic", "pruned", "cutsearch")

#: Paper names of the construction variants (Fig. 11/13 legends).
STRATEGY_LABELS = {
    "basic": "CTLS-Construct",
    "pruned": "CTLS+-Construct",
    "cutsearch": "CTLS*-Construct",
}


class CTLSIndex(SPCIndex):
    """GSP-cut-tree hub-labeling index for shortest path counting."""

    name = "CTLS"

    def __init__(
        self,
        tree: CutTree,
        labels: Union[LabelStore, LabelArena],
        build_stats: BuildStats,
        num_vertices: int,
        num_edges: int,
        strategy: str,
    ) -> None:
        self.tree = tree
        if isinstance(labels, LabelArena):
            self._labels: Optional[LabelStore] = None
            self.arena = labels
        else:
            self._labels = labels
            self.arena = labels.seal()
        self.build_stats = build_stats
        self.strategy = strategy
        self._num_vertices = num_vertices
        self._num_edges = num_edges
        #: Query implementation: ``"arena"`` (packed, default) or
        #: ``"dict"`` (reference); identical answers.
        self.query_engine = "arena"
        self._bind_dense()

    def _bind_dense(self) -> None:
        """Precompute dense-id lookup arrays for the arena query engine."""
        tree = self.tree
        node_of_vertex = tree.node_of_vertex
        self._node_of_dense: List[int] = [
            node_of_vertex[v] for v in self.arena.vertices
        ]
        # |A(v)| equals the arena's per-vertex entry count (the sealed
        # arena stores exactly the ancestor labels), and the offset
        # deltas are far cheaper than per-vertex tree lookups on the
        # load path.
        self._label_len_dense: List[int] = np.diff(
            np.asarray(self.arena.offsets, dtype=np.int64)
        ).tolist()
        self._block_starts: List[int] = tree.block_starts
        self._block_ends: List[int] = tree.block_ends

    @property
    def labels(self) -> LabelStore:
        """Dict-of-lists reference store (rebuilt on demand after load)."""
        if self._labels is None:
            self._labels = self.arena.to_store()
        return self._labels

    def refresh_arena(self) -> None:
        """Re-pack the arena after in-place label mutation."""
        self.arena = self.labels.seal()
        self._bind_dense()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        *,
        beta: float = 0.2,
        leaf_size: int = 4,
        seed: int = 0,
        strategy: str = "cutsearch",
        engine: str = "csr",
        rng: Optional[random.Random] = None,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> "CTLSIndex":
        """Run CTLS-Construct on ``graph`` with the chosen strategy.

        Args:
            graph: road network to index (not modified).
            beta: BalancedCut balance factor (paper default 0.2).
            leaf_size: subgraphs of at most this size become leaf nodes.
            seed: determinism seed (ignored when ``rng`` is given).
            strategy: ``"basic"`` | ``"pruned"`` | ``"cutsearch"``.
            engine: label-computation engine, ``"csr"`` (default) or
                ``"dict"`` (reference); identical output.
            progress: optional callback invoked once per finished cut-
                tree node with ``{nodes, depth, cut, labels, elapsed}``
                — the live feed behind ``repro-spc build --progress``.
        """
        if strategy not in STRATEGIES:
            raise IndexBuildError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if engine not in ("csr", "dict"):
            raise IndexBuildError(f"unknown engine {engine!r}")
        started = time.perf_counter()
        rng = rng or random.Random(seed)
        tree = CutTree()
        labels = LabelStore(graph.vertices())
        rec = obs.build_scope()

        with rec.span(
            "ctls.build",
            n=graph.num_vertices,
            m=graph.num_edges,
            strategy=strategy,
        ):
            stack = [(graph.copy(), -1, 0)]
            while stack:
                pg, parent, depth = stack.pop()
                if pg.num_vertices == 0:
                    continue
                rec.gauge_max("build.peak_edges", pg.num_edges)
                with rec.span(
                    "ctls.build.node", depth=depth, n=pg.num_vertices
                ) as node_span:
                    part = balanced_cut(
                        pg, beta, leaf_size=leaf_size, rng=rng, rec=rec
                    )
                    node_id = tree.add_node(part.cut, parent)
                    node_span.set(node=node_id, cut_size=len(part.cut))

                    # Strong convex labels: SSSPC from each cut vertex over
                    # the SPC-Graph, excluding processed (higher-ranked) cut
                    # vertices.  Ancestor vertices are *not* excluded —
                    # shortcuts represent paths through them, which is
                    # exactly the strong convex semantics.
                    with rec.span(
                        "ctls.build.labels", node=node_id, cut=len(part.cut)
                    ):
                        blocks = compute_node_labels(
                            pg, part.cut, labels, rec, engine=engine
                        )

                    if progress is not None:
                        progress({
                            "nodes": node_id + 1,
                            "depth": depth,
                            "cut": len(part.cut),
                            "labels": labels.total_entries,
                            "elapsed": time.perf_counter() - started,
                        })

                    if not part.left and not part.right:
                        continue
                    through_cut = BlockOutDist(blocks)
                    with rec.span("ctls.build.shortcuts", node=node_id):
                        for side in (part.left, part.right):
                            if not side:
                                continue
                            if strategy == "cutsearch":
                                child = build_spc_graph_cutsearch(
                                    pg, side, part.cut, through_cut, rec
                                )
                            elif strategy == "pruned":
                                child = build_spc_graph_basic(
                                    pg, side, rec,
                                    through_cut=through_cut, prune=True,
                                )
                            else:
                                child = build_spc_graph_basic(pg, side, rec)
                            stack.append((child, node_id, depth + 1))

            tree.finalize()
        # Arena packing (LabelStore.seal inside the constructor) is a
        # real pipeline phase on large graphs — give it its own span so
        # build-phase breakdowns see it.
        with rec.span("ctls.build.pack"):
            index = cls(
                tree, labels, BuildStats(), graph.num_vertices,
                graph.num_edges, strategy,
            )
        record_layout_gauges(rec, index.arena)
        stats = BuildStats.from_recorder(
            rec, seconds=time.perf_counter() - started, arena=index.arena
        )
        stats.extras["strategy"] = strategy
        index.build_stats = stats
        return index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _lca_depth(self, source: Vertex, target: Vertex):
        try:
            return self.tree.lca_node(source, target).depth
        except KeyError:
            return None

    def _dense_block_range(self, source_dense: int, target_dense: int):
        """The LCA node's label positions ``[start, end)`` by dense id."""
        node_of = self._node_of_dense
        nu = node_of[source_dense]
        nv = node_of[target_dense]
        lens = self._label_len_dense
        if nu == nv:
            lu = lens[source_dense]
            lv = lens[target_dense]
            return self._block_starts[nu], lu if lu < lv else lv
        lca = self.tree.lca_index(nu, nv)
        if lca == nu:
            return self._block_starts[lca], lens[source_dense]
        if lca == nv:
            return self._block_starts[lca], lens[target_dense]
        return self._block_starts[lca], self._block_ends[lca]

    def _query_scan(self, source: Vertex, target: Vertex):
        """CTLS-Query (Algorithm 3): scan only the LCA node's labels."""
        if self.query_engine == "dict":
            return self._query_scan_dict(source, target)
        ids = self.arena.vertex_ids
        try:
            source_dense = ids[source]
            target_dense = ids[target]
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        if source == target:
            return SELF_QUERY_RESULT, 0
        start, end = self._dense_block_range(source_dense, target_dense)
        distance, count = self.arena.scan(source_dense, target_dense, start, end)
        return QueryResult(distance, count), end - start

    def _query_scan_dict(self, source: Vertex, target: Vertex):
        """Reference scan over the dict-of-lists :class:`LabelStore`."""
        if source == target:
            if source not in self.labels.dist:
                raise IndexQueryError(f"vertex {source} is not indexed")
            return QueryResult(0, 1), 0
        try:
            start, end = self.tree.lca_block_range(source, target)
        except KeyError as exc:
            raise IndexQueryError(f"vertex {exc.args[0]} is not indexed") from exc
        labels = self.labels
        best = INF
        total = 0
        for d_s, d_t, c_s, c_t in zip(
            labels.dist[source][start:end],
            labels.dist[target][start:end],
            labels.count[source][start:end],
            labels.count[target][start:end],
        ):
            d = d_s + d_t
            if d < best:
                best = d
                total = c_s * c_t
            elif d == best:
                total += c_s * c_t
        if total == 0:
            return QueryResult(INF, 0), end - start
        return QueryResult(best, total), end - start

    def query_batch(self, pairs):
        """CTLS-Query over many pairs via one batched arena scan.

        Phase 1 resolves ids and LCA block ranges for every pair in a
        single tight loop; phase 2 hands all scan windows to
        :meth:`LabelArena.scan_batch`, which merges them in one
        vectorised pass when numpy is available.
        """
        if self.query_engine == "dict":
            return super().query_batch(pairs)
        enabled = obs.ENABLED
        started = time.perf_counter() if enabled else 0.0
        ids = self.arena.vertex_ids
        offsets = self.arena.offsets
        node_of = self._node_of_dense
        lens = self._label_len_dense
        block_starts = self._block_starts
        block_ends = self._block_ends
        lca = self.tree.lca_table.lca
        results: List[Optional[QueryResult]] = []
        append = results.append
        starts_a: List[int] = []
        starts_b: List[int] = []
        lengths: List[int] = []
        slots: List[int] = []
        visited = 0
        for s, t in pairs:
            try:
                a = ids[s]
                b = ids[t]
            except KeyError as exc:
                raise IndexQueryError(
                    f"vertex {exc.args[0]} is not indexed"
                ) from exc
            if s == t:
                append(SELF_QUERY_RESULT)
                continue
            nu = node_of[a]
            nv = node_of[b]
            if nu == nv:
                lu = lens[a]
                lv = lens[b]
                start = block_starts[nu]
                end = lu if lu < lv else lv
            else:
                at = lca(nu, nv)
                start = block_starts[at]
                if at == nu:
                    end = lens[a]
                elif at == nv:
                    end = lens[b]
                else:
                    end = block_ends[at]
            starts_a.append(offsets[a] + start)
            starts_b.append(offsets[b] + start)
            lengths.append(end - start)
            slots.append(len(results))
            visited += end - start
            append(None)
        for slot, scanned in zip(
            slots, self.arena.scan_batch(starts_a, starts_b, lengths)
        ):
            results[slot] = QueryResult(*scanned)
        if enabled:
            self._record_batch(
                time.perf_counter() - started, len(results), visited
            )
        return results

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Static index shape (32-bit label-entry size model)."""
        return IndexStats(
            num_vertices=self._num_vertices,
            num_edges=self._num_edges,
            tree_nodes=self.tree.num_nodes,
            height=self.tree.height,
            width=self.tree.width,
            total_label_entries=self.arena.total_entries,
            size_bytes=self.arena.size_bytes(),
        )

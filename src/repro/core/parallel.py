"""Parallel CTLS-Index construction (paper §IV-D.1).

The paper parallelises construction two ways: concurrent SSSPC runs per
cut vertex, and building the two sides' SPC-Graphs in separate threads.
CPython's GIL makes thread-level parallelism useless for CPU-bound
searches, so this module parallelises at the natural coarser grain with
*processes*: independent subtrees.

Phase 1 runs the ordinary construction loop breadth-first until at
least ``workers`` pending subgraphs exist (each already count-preserving
for its subtree).  Phase 2 ships every pending SPC-Graph to a worker
process that builds a complete sub-index, and the results are grafted
back: worker tree nodes are re-parented under their anchors and worker
label arrays are appended to the (already written) ancestor prefixes —
alignment is preserved because a subtree's labels are exactly the
suffix of its vertices' label arrays.

The parallel build is deterministic for a fixed ``(seed, workers)`` but
differs from the sequential build (the RNG is consumed in a different
order); both are exact.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Tuple

import repro.obs as obs
from repro.core.base import BuildStats
from repro.core.ctls import STRATEGIES, CTLSIndex
from repro.core.spc_graph_build import (
    BlockOutDist,
    build_spc_graph_basic,
    build_spc_graph_cutsearch,
)
from repro.exceptions import IndexBuildError
from repro.graph.graph import Graph
from repro.labels.arena import record_layout_gauges
from repro.labels.store import LabelStore
from repro.partition.balanced_cut import balanced_cut
from repro.search.dijkstra import ssspc
from repro.tree.cut_tree import CutTree
from repro.types import INF


def _build_subtree(payload: Tuple[Graph, str, float, int, int]):
    """Worker entry point: build a full CTLS sub-index of one subtree."""
    subgraph, strategy, beta, leaf_size, seed = payload
    index = CTLSIndex.build(
        subgraph, beta=beta, leaf_size=leaf_size, seed=seed, strategy=strategy
    )
    tree_payload = [
        (list(node.vertices), node.parent) for node in index.tree.nodes
    ]
    return tree_payload, index.labels.dist, index.labels.count, index.build_stats


def build_ctls_parallel(
    graph: Graph,
    *,
    workers: int = 2,
    beta: float = 0.2,
    leaf_size: int = 4,
    seed: int = 0,
    strategy: str = "cutsearch",
) -> CTLSIndex:
    """Build a CTLS-Index using ``workers`` processes for the subtrees.

    Semantically equivalent to :meth:`CTLSIndex.build`; worthwhile from
    a few thousand vertices up, where subtree construction dominates.
    """
    if strategy not in STRATEGIES:
        raise IndexBuildError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if workers < 1:
        raise IndexBuildError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()
    rng = random.Random(seed)
    tree = CutTree()
    labels = LabelStore(graph.vertices())
    rec = obs.build_scope()

    with rec.span(
        "ctls.parallel.build",
        n=graph.num_vertices,
        m=graph.num_edges,
        workers=workers,
    ):
        # Phase 1: breadth-first sequential construction until the
        # frontier is wide enough to keep every worker busy.
        frontier: deque = deque([(graph.copy(), -1)])
        pending: List[Tuple[Graph, int]] = []
        with rec.span("ctls.parallel.sequential"):
            while frontier:
                if len(frontier) + len(pending) >= workers and workers > 1:
                    pending.extend(frontier)
                    frontier.clear()
                    break
                pg, parent = frontier.popleft()
                if pg.num_vertices == 0:
                    continue
                rec.gauge_max("build.peak_edges", pg.num_edges)
                part = balanced_cut(
                    pg, beta, leaf_size=leaf_size, rng=rng, rec=rec
                )
                node_id = tree.add_node(part.cut, parent)

                blocks: Dict = {v: [] for v in pg.vertices()}
                work = pg.copy()
                order = sorted(pg.vertices())
                for c in part.cut:
                    dist, count = ssspc(work, c)
                    rec.incr("build.ssspc_runs")
                    rec.incr("build.label_entries", work.num_vertices)
                    for u in order:
                        if work.has_vertex(u):
                            d = dist.get(u, INF)
                            labels.append(u, d, count.get(u, 0))
                            blocks[u].append(d)
                    work.remove_vertex(c)

                if not part.left and not part.right:
                    continue
                through_cut = BlockOutDist(blocks)
                for side in (part.left, part.right):
                    if not side:
                        continue
                    if strategy == "cutsearch":
                        child = build_spc_graph_cutsearch(
                            pg, side, part.cut, through_cut, rec
                        )
                    elif strategy == "pruned":
                        child = build_spc_graph_basic(
                            pg, side, rec, through_cut=through_cut, prune=True
                        )
                    else:
                        child = build_spc_graph_basic(pg, side, rec)
                    frontier.append((child, node_id))

        # Phase 2: ship each pending subtree to a worker process.
        if pending:
            jobs = [
                (pg, strategy, beta, leaf_size, seed * 1_000_003 + anchor)
                for pg, anchor in pending
            ]
            with rec.span("ctls.parallel.workers", subtrees=len(jobs)):
                if workers > 1 and len(jobs) > 1:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        results = list(pool.map(_build_subtree, jobs))
                else:
                    results = [_build_subtree(job) for job in jobs]

            for (pg, anchor), (tree_payload, dist, count, sub_stats) in zip(
                pending, results
            ):
                offset_of: Dict[int, int] = {}
                for sub_index, (vertices, sub_parent) in enumerate(
                    tree_payload
                ):
                    parent = (
                        anchor if sub_parent < 0 else offset_of[sub_parent]
                    )
                    offset_of[sub_index] = tree.add_node(vertices, parent)
                for v, entries in dist.items():
                    labels.dist[v].extend(entries)
                    labels.count[v].extend(count[v])
                rec.incr("build.ssspc_runs", sub_stats.ssspc_runs)
                rec.incr("build.shortcuts_added", sub_stats.shortcuts_added)
                rec.incr("build.shortcuts_pruned", sub_stats.shortcuts_pruned)
                rec.gauge_max("build.peak_edges", sub_stats.peak_edges)

        tree.finalize()
    index = CTLSIndex(
        tree, labels, BuildStats(), graph.num_vertices, graph.num_edges,
        strategy,
    )
    record_layout_gauges(rec, index.arena)
    stats = BuildStats.from_recorder(
        rec, seconds=time.perf_counter() - started, arena=index.arena
    )
    stats.extras["strategy"] = strategy
    stats.extras["workers"] = workers
    index.build_stats = stats
    return index

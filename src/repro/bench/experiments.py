"""Experiment runners reproducing every table and figure of §V.

Each ``expN_*`` function returns plain data rows (lists of dataclasses)
that :mod:`repro.bench.report` renders as the paper's tables; the pytest
benchmarks in ``benchmarks/`` wrap the same code paths with
pytest-benchmark timing.

An :class:`IndexCache` shares built indexes across experiments — query
experiments (Exp-1/2/3) never pay construction twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.tl import TLIndex
from repro.bench.measure import (
    average_query_seconds,
    average_visited_labels,
    timed,
)
from repro.bench.workloads import distance_binned_queries, random_pairs
from repro.core.base import SPCIndex
from repro.core.ctl import CTLIndex
from repro.core.ctls import CTLSIndex
from repro.datasets.registry import dataset_names, load_dataset
from repro.graph.graph import Graph

#: Query algorithms compared in Exp-1/2/3 (paper Figs. 7-10).
QUERY_ALGORITHMS = ("TL", "CTL", "CTLS")

#: Construction algorithms compared in Exp-4 (paper Figs. 11-13).
CONSTRUCT_ALGORITHMS = ("TL", "CTL", "CTLS", "CTLS+", "CTLS*")


def _build(algorithm: str, graph: Graph) -> SPCIndex:
    if algorithm == "TL":
        return TLIndex.build(graph)
    if algorithm == "CTL":
        return CTLIndex.build(graph)
    if algorithm == "CTLS":
        return CTLSIndex.build(graph, strategy="basic")
    if algorithm == "CTLS+":
        return CTLSIndex.build(graph, strategy="pruned")
    if algorithm == "CTLS*":
        return CTLSIndex.build(graph, strategy="cutsearch")
    raise ValueError(f"unknown algorithm {algorithm!r}")


class IndexCache:
    """Build-once cache of ``(dataset, algorithm) -> index``.

    For query experiments the ``CTLS`` entry uses the paper's final
    construction (``cutsearch``); Exp-4 builds each variant explicitly
    and records timings.
    """

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[str, str], SPCIndex] = {}
        self._build_seconds: Dict[Tuple[str, str], float] = {}

    def get(self, dataset: str, algorithm: str) -> SPCIndex:
        """The built index, constructing and caching on first request."""
        key = (dataset, algorithm)
        if key not in self._indexes:
            graph = load_dataset(dataset)
            build_alg = "CTLS*" if algorithm == "CTLS" else algorithm
            index, seconds = timed(_build, build_alg, graph)
            self._indexes[key] = index
            self._build_seconds[key] = seconds
        return self._indexes[key]

    def build_seconds(self, dataset: str, algorithm: str) -> float:
        """Wall-clock construction time recorded by :meth:`get`."""
        self.get(dataset, algorithm)
        return self._build_seconds[(dataset, algorithm)]


#: Process-wide cache used by the pytest benchmarks.
shared_cache = IndexCache()


# ----------------------------------------------------------------------
# Exp-1: average query time (Fig. 7) and speedup over TL (Fig. 8)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryTimeRow:
    """One (dataset, algorithm) cell of Fig. 7/8."""

    dataset: str
    algorithm: str
    avg_query_us: float
    speedup_over_tl: float


def exp1_query_time(
    *,
    datasets: Optional[Sequence[str]] = None,
    num_queries: int = 2000,
    seed: int = 42,
    cache: Optional[IndexCache] = None,
) -> List[QueryTimeRow]:
    """Fig. 7/8: mean random-query latency of TL/CTL/CTLS per dataset."""
    cache = cache or shared_cache
    rows: List[QueryTimeRow] = []
    for dataset in datasets or dataset_names():
        graph = load_dataset(dataset)
        pairs = random_pairs(graph, num_queries, seed=seed)
        times = {
            alg: average_query_seconds(cache.get(dataset, alg), pairs)
            for alg in QUERY_ALGORITHMS
        }
        for alg in QUERY_ALGORITHMS:
            rows.append(
                QueryTimeRow(
                    dataset=dataset,
                    algorithm=alg,
                    avg_query_us=times[alg] * 1e6,
                    speedup_over_tl=(
                        times["TL"] / times[alg] if times[alg] > 0 else 0.0
                    ),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Exp-2: visited labels (Fig. 9)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VisitedLabelsRow:
    """One (dataset, algorithm) cell of Fig. 9."""

    dataset: str
    algorithm: str
    avg_visited_labels: float


def exp2_visited_labels(
    *,
    datasets: Optional[Sequence[str]] = None,
    num_queries: int = 2000,
    seed: int = 42,
    cache: Optional[IndexCache] = None,
) -> List[VisitedLabelsRow]:
    """Fig. 9: mean label entries visited per random query."""
    cache = cache or shared_cache
    rows: List[VisitedLabelsRow] = []
    for dataset in datasets or dataset_names():
        graph = load_dataset(dataset)
        pairs = random_pairs(graph, num_queries, seed=seed)
        for alg in QUERY_ALGORITHMS:
            rows.append(
                VisitedLabelsRow(
                    dataset=dataset,
                    algorithm=alg,
                    avg_visited_labels=average_visited_labels(
                        cache.get(dataset, alg), pairs
                    ),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Exp-3: query time vs distance (Fig. 10)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DistanceBinRow:
    """One (dataset, algorithm, Q-group) cell of Fig. 10."""

    dataset: str
    algorithm: str
    bin_index: int  # Q1..Q10
    bin_low: float
    bin_high: float
    num_pairs: int
    avg_query_us: float


def exp3_query_distance(
    *,
    datasets: Optional[Sequence[str]] = None,
    per_bin: int = 200,
    bins: int = 10,
    seed: int = 42,
    max_sources: int = 800,
    cache: Optional[IndexCache] = None,
) -> List[DistanceBinRow]:
    """Fig. 10: mean query latency per distance group Q1..Q10.

    ``max_sources`` bounds workload generation (one Dijkstra per
    source); sparse extreme bins may come back smaller than
    ``per_bin``.
    """
    cache = cache or shared_cache
    rows: List[DistanceBinRow] = []
    for dataset in datasets or dataset_names():
        graph = load_dataset(dataset)
        groups = distance_binned_queries(
            graph, bins=bins, per_bin=per_bin, seed=seed,
            max_sources=max_sources,
        )
        for alg in QUERY_ALGORITHMS:
            index = cache.get(dataset, alg)
            for group in groups:
                if not group.pairs:
                    continue
                rows.append(
                    DistanceBinRow(
                        dataset=dataset,
                        algorithm=alg,
                        bin_index=group.index,
                        bin_low=group.low,
                        bin_high=group.high,
                        num_pairs=len(group.pairs),
                        avg_query_us=average_query_seconds(index, group.pairs)
                        * 1e6,
                    )
                )
    return rows


# ----------------------------------------------------------------------
# Exp-4: construction time (Fig. 11), memory (Fig. 12),
#        speedup over CTLS-Construct (Fig. 13)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstructionRow:
    """One (dataset, algorithm) cell of Figs. 11-13."""

    dataset: str
    algorithm: str
    build_seconds: float
    memory_estimate_bytes: int
    speedup_over_ctls: float  # Fig. 13 (CTLS variants only; 0 otherwise)


def exp4_construction(
    *,
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = CONSTRUCT_ALGORITHMS,
    skip_basic_above: int = 50_000,
) -> List[ConstructionRow]:
    """Figs. 11-13: construction cost of every algorithm per dataset.

    ``skip_basic_above`` mirrors the paper: plain CTLS-Construct ran out
    of memory on the largest dataset, so it is skipped above the given
    vertex count.
    """
    rows: List[ConstructionRow] = []
    for dataset in datasets or dataset_names():
        graph = load_dataset(dataset)
        seconds: Dict[str, float] = {}
        memory: Dict[str, int] = {}
        for alg in algorithms:
            if alg == "CTLS" and graph.num_vertices > skip_basic_above:
                continue
            index, elapsed = timed(_build, alg, graph)
            seconds[alg] = elapsed
            memory[alg] = index.build_stats.peak_memory_estimate
        baseline = seconds.get("CTLS")
        for alg in algorithms:
            if alg not in seconds:
                continue
            speedup = 0.0
            if baseline and alg in ("CTLS", "CTLS+", "CTLS*"):
                speedup = baseline / seconds[alg]
            rows.append(
                ConstructionRow(
                    dataset=dataset,
                    algorithm=alg,
                    build_seconds=seconds[alg],
                    memory_estimate_bytes=memory[alg],
                    speedup_over_ctls=speedup,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Exp-5: index size (Fig. 14)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexSizeRow:
    """One (dataset, algorithm) cell of Fig. 14."""

    dataset: str
    algorithm: str
    size_bytes: int
    tl_ratio: float  # TL size / this size (paper: 3.7x CTL, 2.35x CTLS)


def exp5_index_size(
    *,
    datasets: Optional[Sequence[str]] = None,
    cache: Optional[IndexCache] = None,
) -> List[IndexSizeRow]:
    """Fig. 14: index sizes under the 32-bit entry model."""
    cache = cache or shared_cache
    rows: List[IndexSizeRow] = []
    for dataset in datasets or dataset_names():
        sizes = {
            alg: cache.get(dataset, alg).size_bytes()
            for alg in QUERY_ALGORITHMS
        }
        for alg in QUERY_ALGORITHMS:
            rows.append(
                IndexSizeRow(
                    dataset=dataset,
                    algorithm=alg,
                    size_bytes=sizes[alg],
                    tl_ratio=sizes["TL"] / sizes[alg] if sizes[alg] else 0.0,
                )
            )
    return rows

"""Plain-text and markdown rendering of experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bench.experiments import (
    ConstructionRow,
    DistanceBinRow,
    IndexSizeRow,
    QueryTimeRow,
    VisitedLabelsRow,
)
from repro.bench.measure import ProfileResult
from repro.datasets.stats import DatasetRow


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, markdown: bool = False
) -> str:
    """Align ``rows`` under ``headers`` as text or a markdown table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if markdown:
        lines = [
            "| " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        for row in str_rows:
            lines.append(
                "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(row)) + " |"
            )
    else:
        lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
        lines.append("  ".join("-" * w for w in widths))
        for row in str_rows:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _pivot(rows, datasets, algorithms, value_fn, fmt):
    table = []
    for dataset in datasets:
        line = [dataset]
        for alg in algorithms:
            match = [r for r in rows if r.dataset == dataset and r.algorithm == alg]
            line.append(fmt(value_fn(match[0])) if match else "-")
        table.append(line)
    return table


def _datasets_of(rows) -> List[str]:
    seen: List[str] = []
    for row in rows:
        if row.dataset not in seen:
            seen.append(row.dataset)
    return seen


def render_table1(rows: Sequence[DatasetRow], *, markdown: bool = False) -> str:
    """Table I: dataset statistics (synthetic vs paper sizes)."""
    body = [
        (
            r.name,
            r.description,
            r.num_vertices,
            r.num_edges,
            f"{r.avg_degree:.2f}",
            f"{r.paper_vertices:,}",
            f"{r.paper_edges:,}",
        )
        for r in rows
    ]
    return format_table(
        ["Name", "Description", "|V|", "|E|", "avg deg", "paper |V|", "paper |E|"],
        body,
        markdown=markdown,
    )


def render_exp1(rows: Sequence[QueryTimeRow], *, markdown: bool = False) -> str:
    """Fig. 7 + Fig. 8 as one table: latency and speedup over TL."""
    datasets = _datasets_of(rows)
    algorithms = ["TL", "CTL", "CTLS"]
    time_part = _pivot(
        rows, datasets, algorithms, lambda r: r.avg_query_us, lambda v: f"{v:.2f}"
    )
    speedup_part = _pivot(
        rows, datasets, ["CTL", "CTLS"], lambda r: r.speedup_over_tl,
        lambda v: f"{v:.2f}x",
    )
    merged = [
        time_row + speedup_row[1:]
        for time_row, speedup_row in zip(time_part, speedup_part)
    ]
    return format_table(
        ["Dataset", "TL (us)", "CTL (us)", "CTLS (us)",
         "CTL speedup", "CTLS speedup"],
        merged,
        markdown=markdown,
    )


def render_exp2(rows: Sequence[VisitedLabelsRow], *, markdown: bool = False) -> str:
    """Fig. 9: average visited labels."""
    datasets = _datasets_of(rows)
    body = _pivot(
        rows, datasets, ["TL", "CTL", "CTLS"],
        lambda r: r.avg_visited_labels, lambda v: f"{v:.1f}",
    )
    return format_table(
        ["Dataset", "TL labels", "CTL labels", "CTLS labels"], body,
        markdown=markdown,
    )


def render_exp3(rows: Sequence[DistanceBinRow], *, markdown: bool = False) -> str:
    """Fig. 10: per-bin latency, one block of rows per dataset."""
    body = []
    for row in rows:
        body.append(
            (
                row.dataset,
                f"Q{row.bin_index}",
                row.algorithm,
                row.num_pairs,
                f"{row.avg_query_us:.2f}",
            )
        )
    return format_table(
        ["Dataset", "Group", "Algorithm", "#queries", "avg us"], body,
        markdown=markdown,
    )


def render_exp4(rows: Sequence[ConstructionRow], *, markdown: bool = False) -> str:
    """Figs. 11-13: construction seconds, memory, CTLS speedups."""
    body = [
        (
            r.dataset,
            r.algorithm,
            f"{r.build_seconds:.2f}",
            f"{r.memory_estimate_bytes / 1e6:.1f}",
            f"{r.speedup_over_ctls:.2f}x" if r.speedup_over_ctls else "-",
        )
        for r in rows
    ]
    return format_table(
        ["Dataset", "Algorithm", "build (s)", "memory (MB)",
         "speedup over CTLS"],
        body,
        markdown=markdown,
    )


def _latency_lines(hist, bar_width: int) -> List[str]:
    """Bucket bars + a percentile summary for one latency histogram."""
    lines: List[str] = []
    buckets = hist.nonzero_buckets()
    if buckets:
        peak = max(buckets.values())
        label_width = max(len(f"{label}s") for label in buckets)
        for label, count in buckets.items():
            bar = "#" * max(1, round(bar_width * count / peak))
            lines.append(f"  {f'{label}s':>{label_width}}  {count:>8}  {bar}")
    lines.append(
        "latency: "
        f"p50={hist.percentile(0.50) * 1e6:.2f}us "
        f"p95={hist.percentile(0.95) * 1e6:.2f}us "
        f"p99={hist.percentile(0.99) * 1e6:.2f}us "
        f"mean={hist.mean * 1e6:.2f}us "
        f"max={hist.max * 1e6:.2f}us"
    )
    return lines


def render_profile(result: ProfileResult, *, bar_width: int = 40) -> str:
    """Latency histogram + percentile lines for one workload replay.

    The output of ``repro-spc profile``: per-bucket counts with a text
    bar, then p50/p95/p99/mean estimated from the same histogram the
    benchmarks record.
    """
    lines = [
        f"replayed {result.num_queries} queries x{result.repeats} "
        f"repeats in {result.total_seconds:.3f}s",
    ]
    lines.extend(_latency_lines(result.latency, bar_width))
    return "\n".join(lines)


def render_load_report(report, *, bar_width: int = 40) -> str:
    """QPS, outcome counts, and latency for one load-generator run.

    ``report`` is a :class:`repro.serve.client.LoadReport`; the latency
    section reuses the same histogram rendering as ``repro-spc
    profile``, so offline and served percentiles read side by side.
    """
    lines = [
        f"replayed {report.num_requests} requests over "
        f"{report.concurrency} connections in {report.wall_seconds:.3f}s",
        f"throughput: {report.qps:,.0f} req/s "
        f"(goodput {report.goodput:,.0f} ok/s)",
        f"outcomes: ok={report.ok} shed={report.shed} "
        f"timeout={report.timeouts} error={report.errors}"
        + (
            f" id_errors={report.id_errors}"
            if getattr(report, "id_errors", 0)
            else ""
        ),
    ]
    lines.extend(_latency_lines(report.latency, bar_width))
    return "\n".join(lines)


def render_exp5(rows: Sequence[IndexSizeRow], *, markdown: bool = False) -> str:
    """Fig. 14: index sizes and TL-size ratios."""
    datasets = _datasets_of(rows)
    size_part = _pivot(
        rows, datasets, ["TL", "CTL", "CTLS"],
        lambda r: r.size_bytes, lambda v: f"{v / 1e6:.2f}",
    )
    ratio_part = _pivot(
        rows, datasets, ["CTL", "CTLS"],
        lambda r: r.tl_ratio, lambda v: f"{v:.2f}x",
    )
    merged = [s + r[1:] for s, r in zip(size_part, ratio_part)]
    return format_table(
        ["Dataset", "TL (MB)", "CTL (MB)", "CTLS (MB)",
         "TL/CTL", "TL/CTLS"],
        merged,
        markdown=markdown,
    )

"""Noise-aware comparison of BENCH payloads against a committed baseline.

``repro-spc bench-report`` drives this module: load the current
``BENCH_*.json`` files (repo root by default), load the snapshot under
``benchmarks/baselines/``, and compare medians metric-by-metric.

Thresholds are multiplicative and direction-aware.  A ``lower``-is-
better metric regresses when ``current > baseline * tolerance``; a
``higher``-is-better one when ``current < baseline / tolerance``.  The
tolerance for each metric comes from, in priority order: the record's
own ``tolerance`` field, a per-unit default, then the global default.
Portable metrics (ratios, label counts, byte sizes — see
:data:`~repro.obs.perf.PORTABLE_UNITS`) are deterministic or nearly so
and get tight defaults; absolute wall-clock metrics are host-dependent
and get looser ones, still well under the 2x bar a real kernel
regression would blow through.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.perf import PORTABLE_UNITS, load_bench_payloads

__all__ = [
    "DEFAULT_TOLERANCE",
    "UNIT_TOLERANCES",
    "MetricDelta",
    "RegressionReport",
    "compare_payloads",
    "compare_directories",
    "render_report",
]

#: Fallback multiplicative tolerance for host-dependent metrics.  Best-
#: of-rounds medians on one machine jitter well under this; a genuine
#: 2x regression always trips it.
DEFAULT_TOLERANCE = 1.75

#: Per-unit defaults.  Deterministic counts and sizes barely move;
#: dimensionless ratios wobble a little with scheduling.
UNIT_TOLERANCES: Dict[str, float] = {
    "labels": 1.05,
    "entries": 1.05,
    "bytes": 1.10,
    "count": 1.10,
    "x": 1.35,
    "ratio": 1.35,
}

_STATUS_ORDER = ("regression", "missing", "new", "improved", "ok")


@dataclass(frozen=True)
class MetricDelta:
    """The comparison outcome for one (suite, metric, dataset) key."""

    suite: str
    metric: str
    dataset: Optional[str]
    unit: str
    direction: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: float
    status: str  # ok | improved | regression | new | missing

    @property
    def key(self) -> str:
        name = f"{self.suite}:{self.metric}"
        if self.dataset:
            name += f"[{self.dataset}]"
        return name

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline, when both sides exist and baseline != 0."""
        if self.baseline in (None, 0) or self.current is None:
            return None
        return self.current / self.baseline


@dataclass(frozen=True)
class RegressionReport:
    """All deltas of one comparison plus the gate verdict."""

    deltas: Tuple[MetricDelta, ...]

    @property
    def regressions(self) -> Tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.status == "regression")

    @property
    def ok(self) -> bool:
        return not self.regressions

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for delta in self.deltas:
            out[delta.status] = out.get(delta.status, 0) + 1
        return out


def _tolerance_for(record: Dict[str, object], default: float) -> float:
    explicit = record.get("tolerance")
    if isinstance(explicit, (int, float)):
        return float(explicit)
    return UNIT_TOLERANCES.get(str(record.get("unit")), default)


def _index_records(
    payloads: Dict[str, Dict[str, object]]
) -> Dict[Tuple[str, str, Optional[str]], Dict[str, object]]:
    indexed: Dict[Tuple[str, str, Optional[str]], Dict[str, object]] = {}
    for suite, payload in payloads.items():
        for rec in payload.get("records", []):
            indexed[(suite, rec["metric"], rec.get("dataset"))] = rec
    return indexed


def compare_payloads(
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    *,
    default_tolerance: float = DEFAULT_TOLERANCE,
    portable_only: bool = False,
) -> RegressionReport:
    """Compare two payload maps (suite name → payload)."""
    cur = _index_records(current)
    base = _index_records(baseline)
    deltas: List[MetricDelta] = []
    for key in sorted(set(cur) | set(base), key=lambda k: (k[0], k[1], k[2] or "")):
        suite, metric, dataset = key
        rec = cur.get(key) or base.get(key)
        unit = str(rec.get("unit", ""))
        if portable_only and unit not in PORTABLE_UNITS:
            continue
        direction = str(rec.get("direction", "lower"))
        tolerance = _tolerance_for(base.get(key, rec), default_tolerance)
        cur_value = cur[key]["value"] if key in cur else None
        base_value = base[key]["value"] if key in base else None
        if cur_value is None:
            status = "missing"
        elif base_value is None:
            status = "new"
        elif direction == "lower":
            if cur_value > base_value * tolerance:
                status = "regression"
            elif cur_value * tolerance < base_value:
                status = "improved"
            else:
                status = "ok"
        else:
            if cur_value * tolerance < base_value:
                status = "regression"
            elif cur_value > base_value * tolerance:
                status = "improved"
            else:
                status = "ok"
        deltas.append(
            MetricDelta(
                suite=suite,
                metric=metric,
                dataset=dataset,
                unit=unit,
                direction=direction,
                baseline=base_value,
                current=cur_value,
                tolerance=tolerance,
                status=status,
            )
        )
    return RegressionReport(deltas=tuple(deltas))


def compare_directories(
    current_dir: Path,
    baseline_dir: Path,
    *,
    default_tolerance: float = DEFAULT_TOLERANCE,
    portable_only: bool = False,
    suites: Optional[Iterable[str]] = None,
) -> RegressionReport:
    """Compare the BENCH files of two directories.

    ``suites`` restricts the comparison to the named suites; by default
    only suites present in the *current* directory are compared, so a
    quick-mode run that produced two files is not failed for the six it
    skipped.
    """
    current = load_bench_payloads(current_dir)
    baseline = load_bench_payloads(baseline_dir)
    if suites is not None:
        wanted = set(suites)
    else:
        wanted = set(current)
    current = {k: v for k, v in current.items() if k in wanted}
    baseline = {k: v for k, v in baseline.items() if k in wanted}
    return compare_payloads(
        current,
        baseline,
        default_tolerance=default_tolerance,
        portable_only=portable_only,
    )


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.3g}"


def render_report(report: RegressionReport, *, verbose: bool = False) -> str:
    """Human-readable diff table; regressions first."""
    lines: List[str] = []
    ordered = sorted(
        report.deltas, key=lambda d: (_STATUS_ORDER.index(d.status), d.key)
    )
    shown = [
        d for d in ordered if verbose or d.status != "ok"
    ]
    if shown:
        width = max(len(d.key) for d in shown)
        header = (
            f"{'metric':<{width}}  {'unit':>8}  {'baseline':>12}  "
            f"{'current':>12}  {'ratio':>7}  {'tol':>5}  status"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for delta in shown:
            ratio = delta.ratio
            lines.append(
                f"{delta.key:<{width}}  {delta.unit:>8}  "
                f"{_fmt(delta.baseline):>12}  {_fmt(delta.current):>12}  "
                f"{_fmt(ratio) if ratio is not None else '-':>7}  "
                f"{delta.tolerance:>5.2f}  {delta.status}"
            )
    counts = report.counts()
    summary = ", ".join(
        f"{counts[s]} {s}" for s in _STATUS_ORDER if s in counts
    ) or "no metrics compared"
    lines.append("")
    lines.append(
        ("FAIL: " if not report.ok else "ok: ") + summary
    )
    return "\n".join(lines)

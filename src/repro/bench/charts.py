"""Plain-text charts for experiment reports.

EXPERIMENTS.md lives in a repository, not a paper PDF; these helpers
render the *shapes* of the figures (bar groups for Figs. 7/9/11/14,
line series for Fig. 10) as monospace text so the trends are visible
without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_BAR = "#"


def bar_chart(
    rows: Dict[str, float],
    *,
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bars for ``{label: value}``, scaled to ``width``."""
    if not rows:
        return "(no data)"
    peak = max(rows.values())
    label_width = max(len(label) for label in rows)
    lines = []
    for label, value in rows.items():
        length = 0 if peak <= 0 else round(width * value / peak)
        lines.append(
            f"{label.ljust(label_width)} | "
            f"{_BAR * length}{' ' if length else ''}{value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """One bar block per group: ``{group: {series: value}}``."""
    if not groups:
        return "(no data)"
    peak = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    series_width = max(
        (len(name) for series in groups.values() for name in series), default=1
    )
    lines: List[str] = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            length = 0 if peak <= 0 else round(width * value / peak)
            lines.append(
                f"  {name.ljust(series_width)} | "
                f"{_BAR * length}{' ' if length else ''}{value:.2f}{unit}"
            )
    return "\n".join(lines)


def line_chart(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    *,
    height: int = 12,
    markers: str = "*ox+@",
) -> str:
    """Overlayed line series on a character grid (Fig. 10 style).

    Each series is a sequence aligned with ``x_labels``; ``None`` values
    are skipped.  Values are scaled to the common min/max.
    """
    points = [
        v
        for values in series.values()
        for v in values
        if v is not None
    ]
    if not points:
        return "(no data)"
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    columns = len(x_labels)
    grid = [[" "] * columns for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for col, value in enumerate(values):
            if value is None or col >= columns:
                continue
            row = height - 1 - round((value - lo) / span * (height - 1))
            cell = grid[row][col]
            grid[row][col] = "+" if cell not in (" ", marker) else marker

    lines = [f"{hi:>10.2f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:>10.2f} |" + "".join(grid[-1]))
    lines.append(" " * 12 + "".join(label[-1] for label in x_labels))
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"  x: {x_labels[0]}..{x_labels[-1]}; {legend}")
    return "\n".join(lines)

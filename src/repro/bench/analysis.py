"""Structural analysis of built indexes.

The paper explains its performance results through index *shape*: tree
balance (CTL beats TL because BalancedCut yields shallower hierarchies),
node widths (CTLS-Query scans one node), and label volume (Exp-5).
These helpers extract those shapes from any built index so experiment
reports can show the *why* next to the *what*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.tree.cut_tree import CutTree


@dataclass(frozen=True)
class TreeProfile:
    """Shape summary of a cut tree (or any index hierarchy)."""

    num_nodes: int
    num_vertices: int
    height: int  # max ancestor vertices (label length bound)
    width: int  # max node size
    max_depth: int  # in tree nodes
    avg_leaf_depth: float
    avg_node_size: float
    balance: float  # see ``tree_balance``


def tree_balance(tree: CutTree) -> float:
    """Average subtree balance over internal nodes, in ``(0, 1]``.

    For a node with two children the balance is
    ``min(|left|, |right|) / max(|left|, |right|)`` measured in subtree
    vertex counts; single-child nodes contribute 0.  1.0 means a
    perfectly balanced binary hierarchy — the quantity BalancedCut's
    ``beta`` trades off against cut size.
    """
    if not tree.nodes:
        return 1.0
    subtree_size: List[int] = [0] * len(tree.nodes)
    for node in reversed(tree.nodes):  # children have larger indices
        subtree_size[node.index] = node.size + sum(
            subtree_size[c] for c in node.children
        )
    scores = []
    for node in tree.nodes:
        if len(node.children) == 2:
            a, b = (subtree_size[c] for c in node.children)
            scores.append(min(a, b) / max(a, b))
        elif len(node.children) == 1:
            scores.append(0.0)
    if not scores:
        return 1.0
    return sum(scores) / len(scores)


def tree_profile(tree: CutTree) -> TreeProfile:
    """Collect the shape statistics of a finalized cut tree."""
    if not tree.nodes:
        return TreeProfile(0, 0, 0, 0, 0, 0.0, 0.0, 1.0)
    leaves = [node for node in tree.nodes if not node.children]
    return TreeProfile(
        num_nodes=tree.num_nodes,
        num_vertices=tree.num_vertices,
        height=tree.height,
        width=tree.width,
        max_depth=max(node.depth for node in tree.nodes),
        avg_leaf_depth=sum(node.depth for node in leaves) / len(leaves),
        avg_node_size=tree.num_vertices / tree.num_nodes,
        balance=tree_balance(tree),
    )


def label_length_histogram(
    lengths: Dict, bucket: int = 25
) -> Dict[int, int]:
    """Histogram of per-vertex label lengths, bucketed.

    Accepts ``{vertex: length}`` or ``{vertex: list}`` mappings.  Keys
    of the result are bucket lower bounds.
    """
    counter: Counter = Counter()
    for value in lengths.values():
        length = value if isinstance(value, int) else len(value)
        counter[(length // bucket) * bucket] += 1
    return dict(sorted(counter.items()))


def average_label_length(lengths: Dict) -> float:
    """Mean per-vertex label length (same input forms as the histogram)."""
    if not lengths:
        return 0.0
    total = 0
    for value in lengths.values():
        total += value if isinstance(value, int) else len(value)
    return total / len(lengths)

"""Timing and size measurement helpers shared by the experiments."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence, Tuple

from repro.core.base import SPCIndex
from repro.types import Vertex

Pair = Tuple[Vertex, Vertex]


def run_queries(index: SPCIndex, pairs: Sequence[Pair]) -> int:
    """Execute all queries; returns a checksum so work is not elided."""
    checksum = 0
    query = index.query
    for s, t in pairs:
        checksum ^= query(s, t).count & 0xFFFFFFFF
    return checksum


def average_query_seconds(
    index: SPCIndex, pairs: Sequence[Pair], *, repeats: int = 3
) -> float:
    """Mean wall-clock seconds per query over ``pairs``.

    The whole batch is timed ``repeats`` times and the fastest pass is
    reported — the standard defence against scheduler noise, matching
    how per-query microseconds are read off the paper's figures.
    """
    if not pairs:
        return 0.0
    query = index.query
    best = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for s, t in pairs:
            query(s, t)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best / len(pairs)


def average_visited_labels(index: SPCIndex, pairs: Sequence[Pair]) -> float:
    """Mean number of label entries visited per query (Fig. 9)."""
    if not pairs:
        return 0.0
    total = 0
    for s, t in pairs:
        total += index.query_with_stats(s, t).visited_labels
    return total / len(pairs)


def timed(fn: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def index_size_bytes(index: SPCIndex) -> int:
    """Index size under the paper's 32-bit-per-element model (Fig. 14)."""
    return index.size_bytes()


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (0 when empty or any value is non-positive)."""
    values = list(values)
    if not values or any(v <= 0 for v in values):
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))

"""Timing and size measurement helpers shared by the experiments.

:func:`profile_queries` is the shared replay path: the ``repro-spc
profile`` subcommand and the benchmark suite both run it, so live
profiling and experiment tables report from the same metrics objects
(an :class:`repro.obs.Histogram` of per-query latencies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

import repro.obs as obs
from repro.core.base import SPCIndex
from repro.exceptions import WorkloadError
from repro.obs.metrics import Histogram
from repro.types import Vertex

Pair = Tuple[Vertex, Vertex]


def run_queries(index: SPCIndex, pairs: Sequence[Pair]) -> int:
    """Execute all queries; returns a checksum so work is not elided."""
    checksum = 0
    query = index.query
    for s, t in pairs:
        checksum ^= query(s, t).count & 0xFFFFFFFF
    return checksum


def run_queries_batch(index: SPCIndex, pairs: Sequence[Pair]) -> int:
    """Batch counterpart of :func:`run_queries` (same checksum)."""
    checksum = 0
    for result in index.query_batch(pairs):
        checksum ^= result.count & 0xFFFFFFFF
    return checksum


@dataclass(frozen=True)
class BatchSpeedup:
    """Per-pair loop vs. :meth:`SPCIndex.query_batch` comparison."""

    num_queries: int
    loop_seconds: float
    batch_seconds: float

    @property
    def speedup(self) -> float:
        """How many times faster the batch path ran (>1 is faster)."""
        if self.batch_seconds <= 0:
            return float("inf")
        return self.loop_seconds / self.batch_seconds


def batch_speedup(
    index: SPCIndex, pairs: Sequence[Pair], *, repeats: int = 3
) -> BatchSpeedup:
    """Measure ``query_batch`` against an equivalent ``query`` loop.

    Both paths replay the same ``pairs`` ``repeats`` times; the fastest
    pass of each is compared (answers are asserted equal first, so a
    broken batch path can never report a speedup).
    """
    loop_results = [index.query(s, t) for s, t in pairs]
    batch_results = index.query_batch(pairs)
    if loop_results != batch_results:
        raise AssertionError("query_batch disagrees with query loop")
    loop_best = None
    batch_best = None
    for _ in range(max(1, repeats)):
        _, elapsed = timed(run_queries, index, pairs)
        if loop_best is None or elapsed < loop_best:
            loop_best = elapsed
        _, elapsed = timed(run_queries_batch, index, pairs)
        if batch_best is None or elapsed < batch_best:
            batch_best = elapsed
    return BatchSpeedup(
        num_queries=len(pairs),
        loop_seconds=loop_best or 0.0,
        batch_seconds=batch_best or 0.0,
    )


def average_query_seconds(
    index: SPCIndex, pairs: Sequence[Pair], *, repeats: int = 3
) -> float:
    """Mean wall-clock seconds per query over ``pairs``.

    The whole batch is timed ``repeats`` times and the fastest pass is
    reported — the standard defence against scheduler noise, matching
    how per-query microseconds are read off the paper's figures.
    """
    if not pairs:
        return 0.0
    query = index.query
    best = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for s, t in pairs:
            query(s, t)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best / len(pairs)


def average_visited_labels(index: SPCIndex, pairs: Sequence[Pair]) -> float:
    """Mean number of label entries visited per query (Fig. 9)."""
    if not pairs:
        return 0.0
    total = 0
    for s, t in pairs:
        total += index.query_with_stats(s, t).visited_labels
    return total / len(pairs)


def timed(fn: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def index_size_bytes(index: SPCIndex) -> int:
    """Index size under the paper's 32-bit-per-element model (Fig. 14)."""
    return index.size_bytes()


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean over the positive values.

    Non-positive values (a zeroed timing cell, a missing measurement)
    are skipped rather than zeroing the whole mean; the result is 0 only
    when no positive value remains.
    """
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for v in positives:
        product *= v
    return product ** (1.0 / len(positives))


@dataclass
class ProfileResult:
    """Outcome of one workload replay (:func:`profile_queries`).

    ``latency`` is the fixed-bucket histogram of per-query wall-clock
    seconds; percentiles are estimated from its buckets, exactly what
    ``repro-spc profile`` prints.
    """

    num_queries: int
    repeats: int
    total_seconds: float
    latency: Histogram
    checksum: int

    @property
    def p50(self) -> float:
        """Median per-query latency in seconds."""
        return self.latency.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile per-query latency in seconds."""
        return self.latency.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile per-query latency in seconds."""
        return self.latency.percentile(0.99)


def profile_queries(
    index: SPCIndex,
    pairs: Sequence[Pair],
    *,
    repeats: int = 1,
    batch_size: int = 0,
    recorder: Optional["obs.Recorder"] = None,
) -> ProfileResult:
    """Replay ``pairs`` against ``index``, timing every single query.

    Each query's latency is observed into the ``profile.latency_seconds``
    histogram of ``recorder`` (a fresh one by default; pass the active
    :func:`repro.obs.recorder` to fold the replay into a live trace —
    the name is distinct from the index's own ``query.latency_seconds``
    so the two never double count).

    With ``batch_size > 0`` the workload is replayed in chunks through
    :meth:`SPCIndex.query_batch`; each chunk's wall-clock is spread
    evenly over its queries before entering the histogram, so the
    percentiles stay comparable with the per-pair replay (they report
    amortised per-query cost, which is what batching changes).

    An empty workload raises :class:`repro.exceptions.WorkloadError`
    rather than reporting percentiles of nothing.
    """
    if not pairs:
        raise WorkloadError(
            "profile_queries needs at least one query pair"
        )
    rec = recorder if recorder is not None else obs.Recorder()
    checksum = 0
    query = index.query
    perf_counter = time.perf_counter
    started = perf_counter()
    with rec.span(
        "profile.replay",
        queries=len(pairs),
        repeats=max(1, repeats),
        batch_size=batch_size,
    ):
        for _ in range(max(1, repeats)):
            if batch_size > 0:
                for at in range(0, len(pairs), batch_size):
                    chunk = pairs[at : at + batch_size]
                    begin = perf_counter()
                    results = index.query_batch(chunk)
                    amortised = (perf_counter() - begin) / len(chunk)
                    for result in results:
                        rec.observe("profile.latency_seconds", amortised)
                        checksum ^= result.count & 0xFFFFFFFF
            else:
                for s, t in pairs:
                    begin = perf_counter()
                    result = query(s, t)
                    rec.observe(
                        "profile.latency_seconds", perf_counter() - begin
                    )
                    checksum ^= result.count & 0xFFFFFFFF
    total = perf_counter() - started
    latency = rec.histogram("profile.latency_seconds") or Histogram(
        obs.LATENCY_BUCKETS_SECONDS
    )
    return ProfileResult(
        num_queries=len(pairs),
        repeats=max(1, repeats),
        total_seconds=total,
        latency=latency,
        checksum=checksum,
    )

"""Benchmark harness: workloads, measurement, experiment runners."""

from repro.bench.analysis import (
    average_label_length,
    label_length_histogram,
    tree_balance,
    tree_profile,
)
from repro.bench.charts import bar_chart, grouped_bar_chart, line_chart
from repro.bench.experiments import (
    CONSTRUCT_ALGORITHMS,
    QUERY_ALGORITHMS,
    IndexCache,
    exp1_query_time,
    exp2_visited_labels,
    exp3_query_distance,
    exp4_construction,
    exp5_index_size,
    shared_cache,
)
from repro.bench.measure import (
    average_query_seconds,
    average_visited_labels,
    index_size_bytes,
    run_queries,
    timed,
)
from repro.bench.workloads import (
    DistanceBin,
    distance_binned_queries,
    geometric_bin_edges,
    random_pairs,
)

__all__ = [
    "CONSTRUCT_ALGORITHMS",
    "DistanceBin",
    "average_label_length",
    "bar_chart",
    "grouped_bar_chart",
    "label_length_histogram",
    "line_chart",
    "tree_balance",
    "tree_profile",
    "IndexCache",
    "QUERY_ALGORITHMS",
    "average_query_seconds",
    "average_visited_labels",
    "distance_binned_queries",
    "exp1_query_time",
    "exp2_visited_labels",
    "exp3_query_distance",
    "exp4_construction",
    "exp5_index_size",
    "geometric_bin_edges",
    "index_size_bytes",
    "random_pairs",
    "run_queries",
    "shared_cache",
    "timed",
]

"""Query workload generators for the experiments.

* :func:`random_pairs` — uniform random vertex pairs (Exp-1, Exp-2).
* :func:`distance_binned_queries` — Exp-3's ten query groups
  ``Q1..Q10``: with ``x = (l_max / l_min)^(1/10)``, group ``Q_i`` holds
  pairs whose shortest distance falls in ``(l_min * x^(i-1),
  l_min * x^i]``.  ``l_max`` is a double-sweep diameter estimate and
  ``l_min`` defaults to a "1 km"-like scale — a small multiple of the
  average edge weight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import WorkloadError
from repro.graph.graph import Graph
from repro.search.dijkstra import dijkstra
from repro.search.sweep import approximate_diameter
from repro.types import Vertex, Weight

Pair = Tuple[Vertex, Vertex]


def random_pairs(graph: Graph, count: int, *, seed: int = 0,
                 distinct: bool = True) -> List[Pair]:
    """``count`` uniform random vertex pairs (``s != t`` by default)."""
    vertices = sorted(graph.vertices())
    if not vertices:
        raise WorkloadError("cannot sample pairs from an empty graph")
    if distinct and len(vertices) < 2:
        raise WorkloadError("need at least two vertices for distinct pairs")
    rng = random.Random(seed)
    pairs: List[Pair] = []
    while len(pairs) < count:
        s = vertices[rng.randrange(len(vertices))]
        t = vertices[rng.randrange(len(vertices))]
        if distinct and s == t:
            continue
        pairs.append((s, t))
    return pairs


@dataclass(frozen=True)
class DistanceBin:
    """One query group ``Q_i`` of Exp-3."""

    index: int  # 1-based, matching the paper's Q1..Q10
    low: Weight  # exclusive
    high: Weight  # inclusive
    pairs: Tuple[Pair, ...]


def geometric_bin_edges(
    l_min: Weight, l_max: Weight, bins: int = 10
) -> List[float]:
    """``bins + 1`` geometric edges from ``l_min`` to ``l_max``."""
    if l_min <= 0 or l_max <= l_min:
        raise WorkloadError(
            f"need 0 < l_min < l_max, got l_min={l_min}, l_max={l_max}"
        )
    x = (l_max / l_min) ** (1.0 / bins)
    return [l_min * x**i for i in range(bins + 1)]


def distance_binned_queries(
    graph: Graph,
    *,
    bins: int = 10,
    per_bin: int = 100,
    seed: int = 0,
    l_min: Optional[Weight] = None,
    l_max: Optional[Weight] = None,
    max_sources: int = 2000,
) -> List[DistanceBin]:
    """Exp-3 workload: ``bins`` groups of pairs binned by distance.

    Pairs are produced by full Dijkstra runs from random sources
    (each run yields candidates for every bin at once), until every bin
    has ``per_bin`` pairs or ``max_sources`` sources were exhausted —
    sparse extreme bins may come back smaller, which the experiment
    tolerates.
    """
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise WorkloadError("need at least two vertices")
    rng = random.Random(seed)
    if l_max is None:
        l_max = approximate_diameter(graph)
    if l_min is None:
        # A "1 km"-like short scale: a few hops on the road fabric.
        total = sum(w for _u, _v, w, _c in graph.edges())
        avg_edge = total / max(1, graph.num_edges)
        l_min = max(1, int(avg_edge * 3))
    if l_max <= l_min:
        l_max = l_min * 2 ** bins
    edges = geometric_bin_edges(l_min, l_max, bins)

    buckets: List[List[Pair]] = [[] for _ in range(bins)]

    def bin_of(distance: Weight) -> Optional[int]:
        if distance <= edges[0] or distance > edges[-1]:
            return None
        lo, hi = 0, bins - 1
        while lo < hi:  # first edge >= distance
            mid = (lo + hi) // 2
            if edges[mid + 1] >= distance:
                hi = mid
            else:
                lo = mid + 1
        return lo

    for _ in range(max_sources):
        if all(len(b) >= per_bin for b in buckets):
            break
        s = vertices[rng.randrange(len(vertices))]
        dist = dijkstra(graph, s)
        targets = list(dist.items())
        rng.shuffle(targets)
        for t, d in targets:
            if t == s:
                continue
            b = bin_of(d)
            if b is not None and len(buckets[b]) < per_bin:
                buckets[b].append((s, t))

    return [
        DistanceBin(
            index=i + 1,
            low=edges[i],
            high=edges[i + 1],
            pairs=tuple(bucket),
        )
        for i, bucket in enumerate(buckets)
    ]

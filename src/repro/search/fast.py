"""Packed-adjacency SSSPC: the hot loop of index construction.

Semantically identical to :func:`repro.search.dijkstra.ssspc` (exact
Python-int counts, count-weight folding, terminal/excluded semantics)
but iterating :class:`~repro.graph.csr.CSRGraph` triples with flat-list
search state.  Used by the ``engine="csr"`` construction fast path; the
dict implementation remains the reference and both are cross-tested.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.graph.csr import CSRGraph
from repro.types import Vertex, Weight


def ssspc_csr(
    csr: CSRGraph,
    source: Vertex,
    *,
    excluded: Optional[Set[Vertex]] = None,
    terminal: Optional[Set[Vertex]] = None,
) -> Tuple[Dict[Vertex, Weight], Dict[Vertex, int]]:
    """Single-source shortest distances and exact path counts on CSR.

    ``excluded``/``terminal`` take *original* vertex ids, like the
    dict-based version.  Returns maps keyed by original ids; vertices
    reached but not traversed (``terminal``) are included.
    """
    n = csr.num_vertices
    banned = [False] * n
    if excluded:
        for v in excluded:
            idx = csr.vertex_ids.get(v)
            if idx is not None:
                banned[idx] = True
    frozen = [False] * n
    if terminal:
        for v in terminal:
            idx = csr.vertex_ids.get(v)
            if idx is not None:
                frozen[idx] = True

    src = csr.dense_id(source)
    dist, count, settled = _run(csr, src, banned, frozen)

    vertex_of = csr.vertices
    dist_map: Dict[Vertex, Weight] = {}
    count_map: Dict[Vertex, int] = {}
    for idx in range(n):
        if settled[idx]:
            dist_map[vertex_of[idx]] = dist[idx]
            count_map[vertex_of[idx]] = count[idx]
    return dist_map, count_map


def ssspc_csr_arrays(
    csr: CSRGraph,
    source_dense: int,
    *,
    banned: Optional[Sequence[bool]] = None,
):
    """Lower-level variant keyed by dense ids, returning flat lists.

    ``banned`` is a dense boolean mask.  Returns ``(dist, count)``
    lists indexed by dense id, with ``None`` distance for unreached
    vertices — the zero-copy interface index construction uses to fill
    label blocks without dict churn.
    """
    n = csr.num_vertices
    dist, count, settled = _run(
        csr, source_dense, banned or ([False] * n), None
    )
    for idx in range(n):
        if not settled[idx]:
            dist[idx] = None
    return dist, count


def _run(csr, src, banned, frozen):
    n = csr.num_vertices
    neighbors = csr.neighbors
    dist: list = [None] * n
    count: list = [0] * n
    settled = [False] * n
    dist[src] = 0
    count[src] = 1
    heap: list = [(0, src)]
    while heap:
        d, v = heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        if frozen is not None and frozen[v] and v != src:
            continue
        pc_v = count[v]
        for w, weight, sigma in neighbors[v]:
            if settled[w] or banned[w]:
                continue
            nd = d + weight
            old = dist[w]
            if old is None or nd < old:
                dist[w] = nd
                count[w] = pc_v * sigma
                heappush(heap, (nd, w))
            elif nd == old:
                count[w] += pc_v * sigma
    return dist, count, settled

"""Pairwise shortest-path queries and exact test oracles.

:func:`spc_query` is the reference (index-free) way to answer a single
``Q(s, t)``; :func:`count_paths_bruteforce` enumerates simple paths and
is the exponential-time oracle used by the test suite on small graphs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph
from repro.search.dijkstra import dijkstra, ssspc
from repro.types import INF, QueryResult, Vertex


def spc_query(graph: Graph, source: Vertex, target: Vertex) -> QueryResult:
    """Answer ``Q(s, t)`` with a single target-stopping SSSPC run."""
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        if not graph.has_vertex(source):
            raise VertexNotFoundError(source)
        return QueryResult(0, 1)
    dist, count = ssspc(graph, source, target=target)
    if target not in dist:
        return QueryResult(INF, 0)
    return QueryResult(dist[target], count[target])


def distance_query(graph: Graph, source: Vertex, target: Vertex):
    """Shortest distance only (``INF`` when disconnected)."""
    if source == target:
        if not graph.has_vertex(source):
            raise VertexNotFoundError(source)
        return 0
    dist = dijkstra(graph, source, target=target)
    return dist.get(target, INF)


def all_pairs_spc(graph: Graph) -> Dict[Vertex, Tuple[dict, dict]]:
    """``{v: (dist_map, count_map)}`` for every vertex — small graphs only."""
    return {v: ssspc(graph, v) for v in graph.vertices()}


def count_paths_bruteforce(
    graph: Graph, source: Vertex, target: Vertex
) -> QueryResult:
    """Exact ``Q(s, t)`` by enumerating all simple paths (oracle).

    Exponential time; intended for graphs of at most a few dozen
    vertices in tests.  Honours count weights (a path's contribution is
    the product of its edges' ``sigma`` values).
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return QueryResult(0, 1)

    best: List = [INF, 0]  # distance, count
    on_path = {source}

    def extend(v: Vertex, dist_so_far, count_so_far: int) -> None:
        if dist_so_far > best[0]:
            return
        if v == target:
            if dist_so_far < best[0]:
                best[0] = dist_so_far
                best[1] = count_so_far
            elif dist_so_far == best[0]:
                best[1] += count_so_far
            return
        for u, (weight, sigma) in graph.adj(v).items():
            if u in on_path:
                continue
            on_path.add(u)
            extend(u, dist_so_far + weight, count_so_far * sigma)
            on_path.discard(u)

    extend(source, 0, 1)
    if best[1] == 0:
        return QueryResult(INF, 0)
    return QueryResult(best[0], best[1])


def enumerate_shortest_paths(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    limit: Optional[int] = None,
) -> Iterator[List[Vertex]]:
    """Yield the vertex sequences of shortest ``s -> t`` paths.

    Walks the shortest-path DAG backwards from ``target``.  Note that a
    path traversing an edge with ``sigma > 1`` is yielded once even
    though it represents several original-graph paths.
    """
    dist = dijkstra(graph, source)
    if target not in dist:
        return
    yielded = 0

    def backtrack(v: Vertex, suffix: List[Vertex]) -> Iterator[List[Vertex]]:
        if v == source:
            yield [source, *reversed(suffix)]
            return
        for u, (weight, _sigma) in graph.adj(v).items():
            if u in dist and dist[u] + weight == dist[v]:
                suffix.append(v)
                yield from backtrack(u, suffix)
                suffix.pop()

    for path in backtrack(target, []):
        yield path
        yielded += 1
        if limit is not None and yielded >= limit:
            return

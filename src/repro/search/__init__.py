"""Shortest-path searches: Dijkstra, SSSPC, oracles, diameter sweeps."""

from repro.search.dijkstra import (
    dijkstra,
    shortest_path_tree_edges,
    ssspc,
    ssspc_multi_target,
)
from repro.search.fast import ssspc_csr, ssspc_csr_arrays
from repro.search.pairwise import (
    all_pairs_spc,
    count_paths_bruteforce,
    distance_query,
    enumerate_shortest_paths,
    spc_query,
)
from repro.search.sweep import approximate_diameter, distant_endpoints, farthest_vertex

__all__ = [
    "all_pairs_spc",
    "approximate_diameter",
    "count_paths_bruteforce",
    "dijkstra",
    "distance_query",
    "distant_endpoints",
    "enumerate_shortest_paths",
    "farthest_vertex",
    "shortest_path_tree_edges",
    "spc_query",
    "ssspc",
    "ssspc_csr",
    "ssspc_csr_arrays",
    "ssspc_multi_target",
]

"""Dijkstra-style searches, including the paper's SSSPC procedure.

``SSSPC`` (Algorithm 2, lines 12-27, with the Section IV-B count-weight
update) is a single-source shortest path *and count* search:

* when a strictly shorter path to ``w`` via ``v`` is found, the count is
  reset to ``PC[v] * sigma(v, w)``;
* when an equally short path is found, ``PC[v] * sigma(v, w)`` is added.

Counts are exact Python integers.  All searches accept an ``excluded``
vertex set, which the index constructions use to realise convex-path
semantics (higher-ranked vertices are excluded) without copying graphs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.graph import Graph
from repro.types import Vertex, Weight

DistMap = Dict[Vertex, Weight]
CountMap = Dict[Vertex, int]


def dijkstra(
    graph: Graph,
    source: Vertex,
    *,
    excluded: Optional[Set[Vertex]] = None,
    target: Optional[Vertex] = None,
) -> DistMap:
    """Shortest distances from ``source`` to every reachable vertex.

    ``excluded`` vertices are treated as deleted (the source itself may
    not be excluded).  With ``target`` set, the search stops as soon as
    the target is settled.  Unreachable vertices are absent from the
    result.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    banned = excluded or ()
    dist: DistMap = {source: 0}
    settled: Set[Vertex] = set()
    heap: list = [(0, source)]
    while heap:
        d, v = heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == target:
            break
        for w, (weight, _count) in graph.adj(v).items():
            if w in settled or w in banned:
                continue
            nd = d + weight
            old = dist.get(w)
            if old is None or nd < old:
                dist[w] = nd
                heappush(heap, (nd, w))
    return dist


def ssspc(
    graph: Graph,
    source: Vertex,
    *,
    excluded: Optional[Set[Vertex]] = None,
    target: Optional[Vertex] = None,
    terminal: Optional[Set[Vertex]] = None,
) -> Tuple[DistMap, CountMap]:
    """Single-source shortest path distances *and counts* (SSSPC).

    Returns ``(dist, count)`` maps over reachable vertices; counts fold
    in the count weights ``sigma`` of traversed edges, so running this on
    an SPC-Graph yields the counts of the original graph.

    ``terminal`` vertices may be *reached* but never *traversed*: their
    outgoing edges are not relaxed.  This restricts the search to paths
    whose interior avoids the terminal set — exactly the Outer-Only
    path semantics of SPC-Graph construction (Definition 4.4ff), where
    border vertices are admissible endpoints but not intermediates.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    banned = excluded or ()
    frozen = terminal or ()
    dist: DistMap = {source: 0}
    count: CountMap = {source: 1}
    settled: Set[Vertex] = set()
    heap: list = [(0, source)]
    while heap:
        d, v = heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == target:
            break
        if v != source and v in frozen:
            continue
        pc_v = count[v]
        for w, (weight, sigma) in graph.adj(v).items():
            if w in settled or w in banned:
                continue
            nd = d + weight
            old = dist.get(w)
            if old is None or nd < old:
                dist[w] = nd
                count[w] = pc_v * sigma
                heappush(heap, (nd, w))
            elif nd == old:
                count[w] += pc_v * sigma
    return dist, count


def ssspc_multi_target(
    graph: Graph,
    source: Vertex,
    targets: Iterable[Vertex],
    *,
    excluded: Optional[Set[Vertex]] = None,
) -> Tuple[DistMap, CountMap]:
    """SSSPC that stops once every target is settled.

    Useful when only a few labels are needed (dynamic maintenance,
    shortcut computation on large boundary graphs).
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    banned = excluded or ()
    pending = set(targets)
    pending.discard(source)
    dist: DistMap = {source: 0}
    count: CountMap = {source: 1}
    settled: Set[Vertex] = set()
    heap: list = [(0, source)]
    while heap and (pending or not settled):
        d, v = heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        pending.discard(v)
        if not pending and v != source:
            # All targets settled; their counts are final.
            break
        pc_v = count[v]
        for w, (weight, sigma) in graph.adj(v).items():
            if w in settled or w in banned:
                continue
            nd = d + weight
            old = dist.get(w)
            if old is None or nd < old:
                dist[w] = nd
                count[w] = pc_v * sigma
                heappush(heap, (nd, w))
            elif nd == old:
                count[w] += pc_v * sigma
    return dist, count


def shortest_path_tree_edges(
    graph: Graph, source: Vertex
) -> Dict[Vertex, list]:
    """Predecessors on shortest paths: ``{v: [parents on some SP]}``.

    The shortest-path DAG of ``source``; used by path enumeration and
    the betweenness application.
    """
    dist = dijkstra(graph, source)
    parents: Dict[Vertex, list] = {v: [] for v in dist}
    for v, d in dist.items():
        for u, (weight, _count) in graph.adj(v).items():
            if u in dist and dist[u] + weight == d:
                parents[v].append(u)
    return parents

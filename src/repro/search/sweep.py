"""Double-sweep heuristics: distant endpoint pairs and diameter bounds.

BalancedCut's first phase (and the distance-binned workload generator)
need a pair of far-apart vertices and an estimate of the graph diameter.
The classic double sweep — repeatedly jump to the farthest vertex found —
gives a lower bound that is near-exact on road networks.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.graph.graph import Graph
from repro.search.dijkstra import dijkstra
from repro.types import Vertex, Weight


def farthest_vertex(graph: Graph, source: Vertex) -> Tuple[Vertex, Weight]:
    """The reachable vertex farthest from ``source`` and its distance."""
    dist = dijkstra(graph, source)
    far = max(dist, key=dist.get)
    return far, dist[far]


def distant_endpoints(
    graph: Graph,
    *,
    rounds: int = 3,
    rng: Optional[random.Random] = None,
) -> Tuple[Vertex, Vertex, Weight]:
    """A far-apart vertex pair ``(a, b)`` and their distance.

    Runs ``rounds`` double-sweep iterations from a (seeded) random start.
    The returned distance is a lower bound on the diameter of the
    component containing the start vertex.
    """
    rng = rng or random.Random(0)
    vertices = sorted(graph.vertices())
    if not vertices:
        raise ValueError("cannot pick endpoints of an empty graph")
    if len(vertices) == 1:
        return vertices[0], vertices[0], 0

    a = vertices[rng.randrange(len(vertices))]
    b, best = farthest_vertex(graph, a)
    for _ in range(max(0, rounds - 1)):
        c, d = farthest_vertex(graph, b)
        if d <= best:
            break
        a, b, best = b, c, d
    return a, b, best


def approximate_diameter(graph: Graph, *, rounds: int = 4) -> Weight:
    """Double-sweep lower bound on the (largest component's) diameter."""
    _a, _b, dist = distant_endpoints(graph, rounds=rounds)
    return dist

"""The asyncio SPC query server: routing, shedding, deadlines, drain.

:class:`SPCServer` owns one read-only index and answers ``Q(s, t)``
over a small JSON/HTTP surface:

* ``GET /query?source=S&target=T`` — one query.
* ``POST /query`` with ``{"source": S, "target": T}`` or
  ``{"pairs": [[S, T], ...]}`` — one query or an explicit batch.
* ``GET /health`` — liveness; 503 once draining.
* ``GET /metrics`` — the server recorder's metrics snapshot
  (:mod:`repro.obs` instruments: cache hits, batch sizes, shed counts).

Answers are ``{"source", "target", "distance", "count"}`` with
``distance: null`` for a disconnected pair — exactly the values
:meth:`SPCIndex.query` returns, just JSON-framed.

Three protections keep the server honest under load:

* **Admission control** — once ``queue_high_water`` admitted requests
  are waiting, new ones are shed with 503 + ``Retry-After`` instead of
  growing the queue without bound.
* **Deadlines** — every admitted request races
  ``request_timeout_ms``; losers get 504 and their slot back.
* **Graceful drain** — SIGTERM (or :meth:`SPCServer.shutdown`) stops
  accepting, lets in-flight requests finish within ``drain_grace_s``,
  flushes the coalescer, and only then lets the process exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from collections import deque

from repro.exceptions import ReproError
from repro.obs import Recorder
from repro.serve.cache import ResultCache
from repro.serve.coalescer import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HTTPProtocolError,
    Request,
    parse_request,
    read_head,
    response_bytes,
)
from repro.types import INF, QueryResult, Vertex

#: ``(status, payload, extra headers)`` produced by the route handlers.
Response = Tuple[int, object, Sequence[Tuple[str, str]]]

_RETRY_AFTER = (("Retry-After", "1"),)

#: Write-loop sentinel: no more responses on this connection.
_CLOSE = object()


def encode_result(
    source: Vertex, target: Vertex, result: QueryResult
) -> dict:
    """The wire form of one answer (``distance: null`` = disconnected)."""
    return {
        "source": source,
        "target": target,
        "distance": None if result.distance == INF else result.distance,
        "count": result.count,
    }


def encode_result_bytes(
    source: Vertex, target: Vertex, result: QueryResult
) -> bytes:
    """:func:`encode_result` pre-serialized — the hot path skips
    ``json.dumps`` (the bytes are byte-identical to dumping the dict
    with ``separators=(",", ":")``)."""
    distance = result.distance
    return b'{"source":%d,"target":%d,"distance":%s,"count":%d}' % (
        source,
        target,
        b"null" if distance == INF else repr(distance).encode(),
        result.count,
    )


class SPCServer:
    """Serves one built SPC index over HTTP with micro-batching.

    The server records into its own :class:`repro.obs.Recorder` (not
    the process-global one), so the indexes' zero-overhead-when-off
    query instrumentation stays off while ``/metrics`` still exposes
    full serving metrics.
    """

    def __init__(
        self,
        index,
        config: Optional[ServeConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.index = index
        self.config = config or ServeConfig()
        self.recorder = recorder if recorder is not None else Recorder()
        self.cache = ResultCache(
            self.config.cache_size, recorder=self.recorder
        )
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="spc-scan"
        )
        self.batcher: Optional[MicroBatcher] = None
        if self.config.coalesce:
            self.batcher = MicroBatcher(
                index,
                max_batch=self.config.max_batch,
                max_wait_us=self.config.max_wait_us,
                recorder=self.recorder,
                executor=self._executor,
            )
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._connections: set = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SPCServer":
        """Bind and start accepting; resolves the actual port for port 0."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.perf_counter()
        return self

    def install_signal_handlers(
        self, signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Trigger a graceful drain when the process is asked to stop."""
        loop = asyncio.get_running_loop()
        for signum in signals:
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: loop.create_task(self.shutdown()),
                )
            except NotImplementedError:  # non-unix event loops
                return

    async def wait_stopped(self) -> None:
        """Block until a drain has fully completed."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress (or finished)."""
        return self._draining

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, flush, stop."""
        if self._draining:
            return
        self._draining = True
        self.recorder.incr("serve.drain.count")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            _, still_open = await asyncio.wait(
                list(self._connections), timeout=self.config.drain_grace_s
            )
            for task in still_open:
                task.cancel()
            if still_open:
                await asyncio.gather(*still_open, return_exceptions=True)
        if self.batcher is not None:
            await self.batcher.drain()
        self._executor.shutdown(wait=True)
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        """One connection: a read loop feeding an in-order write loop.

        The read loop never awaits an answer — it parses, dispatches
        (which enqueues the query into the coalescer), and immediately
        reads the next request.  A pipelining client therefore lands
        its whole window in one batch, while the write loop sends the
        responses back in request order.
        """
        task = asyncio.current_task()
        self._connections.add(task)
        self.recorder.incr("serve.connections")
        out: deque = deque()
        wake = asyncio.Event()
        write_loop = asyncio.get_running_loop().create_task(
            self._write_loop(writer, out, wake)
        )
        try:
            while True:
                head = await read_head(reader)
                if head is None:
                    break
                item = self._fast_query(head)
                if item is None:
                    request = await parse_request(head, reader)
                    keep_alive = request.keep_alive and not self._draining
                    item = (self._dispatch(request), keep_alive)
                out.append(item)
                wake.set()
                if not item[1]:
                    break
        except HTTPProtocolError as exc:
            self.recorder.incr("serve.errors.protocol")
            out.append(((400, {"error": str(exc)}, ()), False))
            wake.set()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self.recorder.incr("serve.errors.connection")
        finally:
            out.append(_CLOSE)
            wake.set()
            try:
                await write_loop
            finally:
                self._connections.discard(task)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _write_loop(self, writer, out: deque, wake) -> None:
        """Send queued responses in order; drain once per burst."""
        broken = False
        while True:
            while not out:
                wake.clear()
                await wake.wait()
            item = out.popleft()
            if item is _CLOSE:
                return
            entry, keep_alive = item
            # ``entry`` is either a ready Response tuple or an
            # awaitable still being computed (a coalesced query).
            try:
                status, payload, extra = (
                    entry if type(entry) is tuple else await entry
                )
            except Exception as exc:  # keep later answers alive
                self.recorder.incr("serve.errors.internal")
                status, payload, extra = (
                    500, {"error": f"internal error: {exc}"}, ()
                )
            if broken:
                continue  # keep consuming so computations are awaited
            try:
                writer.write(
                    response_bytes(
                        status,
                        payload,
                        keep_alive=keep_alive,
                        extra_headers=extra,
                    )
                )
                if not out:  # one drain per burst of pipelined answers
                    await writer.drain()
            except (ConnectionError, OSError):
                self.recorder.incr("serve.errors.connection")
                broken = True

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _fast_query(self, head: bytes):
        """Byte-level fast path for ``GET /query?source=S&target=T``.

        The hot request shape is parsed straight off the head bytes —
        no header dict, no :class:`Request` — which roughly halves the
        framing cost per query.  Anything unusual (other param order,
        percent-encoding, a body) returns ``None`` and takes the full
        parser; behaviour is identical either way.
        """
        if not head.startswith(b"GET /query?source="):
            return None
        end = head.find(b" HTTP/", 18)
        if end < 0 or b"ontent-" in head:
            return None
        src, sep, tgt = head[18:end].partition(b"&")
        if not sep or not tgt.startswith(b"target="):
            return None
        try:
            source, target = int(src), int(tgt[7:])
        except ValueError:
            return None
        self.recorder.incr("serve.requests")
        keep_alive = (b"close" not in head) and not self._draining
        return self._query_entry(source, target), keep_alive

    def _dispatch(self, request: Request):
        """Route one request: a ready Response or an awaitable of one.

        Runs synchronously inside the read loop, so a query's
        submission reaches the coalescer *before* the next pipelined
        request is parsed — only the waiting (deadline, cache fill,
        encoding) is deferred to the awaitable the write loop resolves.
        """
        self.recorder.incr("serve.requests")
        if request.path == "/query":
            return self._dispatch_query(request)
        if request.path == "/health":
            return self._handle_health()
        if request.path == "/metrics":
            return self._handle_metrics()
        self.recorder.incr("serve.errors.route")
        return 404, {"error": f"unknown path {request.path!r}"}, ()

    def _handle_health(self) -> Response:
        payload = {
            "status": "draining" if self._draining else "ok",
            "index": type(self.index).__name__,
            "inflight": self._inflight,
            "uptime_seconds": time.perf_counter() - self._started_at,
        }
        return (503 if self._draining else 200), payload, ()

    def _handle_metrics(self) -> Response:
        rec = self.recorder
        rec.gauge("serve.queue.depth", self.queue_depth)
        rec.gauge("serve.connections.active", len(self._connections))
        rec.gauge("serve.cache.size", len(self.cache))
        rec.gauge("serve.cache.hit_rate", self.cache.hit_rate)
        return 200, rec.metrics_snapshot(), ()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted-but-unanswered requests (the shedding signal)."""
        return self._inflight

    def _parse_query(
        self, request: Request
    ) -> Tuple[Optional[List[Tuple[int, int]]], Optional[Tuple[int, int]]]:
        """Returns ``(pairs, single)``; exactly one of the two is set."""
        if request.method == "POST":
            payload = request.json()
            if not isinstance(payload, dict):
                raise HTTPProtocolError("query body must be a JSON object")
            if "pairs" in payload:
                raw = payload["pairs"]
                if not isinstance(raw, list):
                    raise HTTPProtocolError("'pairs' must be a list")
                pairs = []
                for item in raw:
                    if (
                        not isinstance(item, (list, tuple))
                        or len(item) != 2
                    ):
                        raise HTTPProtocolError(
                            "each pair must be [source, target]"
                        )
                    pairs.append((int(item[0]), int(item[1])))
                return pairs, None
            try:
                return None, (int(payload["source"]), int(payload["target"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise HTTPProtocolError(
                    "query body needs integer 'source' and 'target'"
                ) from exc
        try:
            return None, (
                int(request.params["source"]),
                int(request.params["target"]),
            )
        except (KeyError, ValueError) as exc:
            raise HTTPProtocolError(
                "query needs integer 'source' and 'target' parameters"
            ) from exc

    def _dispatch_query(self, request: Request):
        """Admit (or reject) one ``/query`` synchronously.

        Cache hits, malformed requests, and shed responses come back as
        ready tuples; an admitted miss submits its scan *now* and
        returns the :meth:`_finish` coroutine that waits for it.
        """
        try:
            pairs, single = self._parse_query(request)
        except HTTPProtocolError as exc:
            self.recorder.incr("serve.errors.request")
            return 400, {"error": str(exc)}, ()
        if single is not None:
            return self._query_entry(*single)
        if self._draining:
            self.recorder.incr("serve.shed.draining")
            return 503, {"error": "draining"}, _RETRY_AFTER
        if self.queue_depth + len(pairs) > self.config.queue_high_water:
            self.recorder.incr("serve.shed", len(pairs))
            return self._overloaded()
        return self._answer_pairs(pairs)

    def _overloaded(self) -> Response:
        return (
            503,
            {
                "error": "overloaded",
                "queue_depth": self.queue_depth,
                "high_water": self.config.queue_high_water,
            },
            _RETRY_AFTER,
        )

    def _query_entry(self, source: int, target: int):
        """Drain/shed/cache-check one pair; ready tuple or waiter.

        200 payloads come back as pre-serialized bytes (see
        :func:`encode_result_bytes`)."""
        if self._draining:
            self.recorder.incr("serve.shed.draining")
            return 503, {"error": "draining"}, _RETRY_AFTER
        if self.queue_depth >= self.config.queue_high_water:
            self.recorder.incr("serve.shed")
            return self._overloaded()
        cached = self.cache.get(source, target)
        if cached is not None:
            return 200, encode_result_bytes(source, target, cached), ()
        return self._admit(source, target)

    def _admit(self, source: int, target: int):
        """Take a queue slot and start the scan; returns the waiter."""
        self._inflight += 1
        self.recorder.gauge_max("serve.queue.depth.max", self._inflight)
        started = time.perf_counter()
        return self._finish(
            source, target, self._compute(source, target), started
        )

    async def _answer_pairs(self, pairs: List[Tuple[int, int]]) -> Response:
        results = await asyncio.gather(
            *(self._answer_single(s, t) for s, t in pairs)
        )
        worst = max(status for status, _, _ in results)
        return (
            worst,
            {"results": [payload for _, payload, _ in results]},
            _RETRY_AFTER if worst == 503 else (),
        )

    async def _answer_single(self, source: int, target: int) -> Response:
        """One pair of a POST batch, payload as a JSON-able dict."""
        entry = self._query_entry(source, target)
        status, payload, extra = (
            entry if type(entry) is tuple else await entry
        )
        if type(payload) is bytes:
            payload = json.loads(payload)
        return status, payload, extra

    async def _finish(
        self,
        source: int,
        target: int,
        future: "asyncio.Future",
        started: float,
    ) -> Response:
        # wait_for on the bare future: a deadline cancels only this
        # request's future — the batcher skips done futures when its
        # scan resolves, so batch-mates are unaffected.
        try:
            result = await asyncio.wait_for(
                future,
                timeout=self.config.request_timeout_ms / 1000.0,
            )
        except asyncio.TimeoutError:
            self.recorder.incr("serve.timeouts")
            return (
                504,
                {
                    "error": "deadline exceeded",
                    "timeout_ms": self.config.request_timeout_ms,
                    "source": source,
                    "target": target,
                },
                (),
            )
        except ReproError as exc:
            self.recorder.incr("serve.errors.query")
            return 400, {"error": str(exc)}, ()
        finally:
            self._inflight -= 1
            self.recorder.observe(
                "serve.latency_seconds", time.perf_counter() - started
            )
        self.cache.put(source, target, result)
        self.recorder.incr("serve.responses.ok")
        return 200, encode_result_bytes(source, target, result), ()

    def _compute(self, source: int, target: int) -> "asyncio.Future":
        """One answer through the batcher (or the uncoalesced path)."""
        if self.batcher is not None:
            return self.batcher.submit(source, target)
        return asyncio.get_running_loop().run_in_executor(
            self._executor, self.index.query, source, target
        )
